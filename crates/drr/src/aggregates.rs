//! The full aggregate menu on top of DRR-gossip.
//!
//! The paper states that beyond Max and Average, "other aggregates such as
//! Min, Sum etc., can be calculated by a suitable modification" and lists
//! Count and Rank among the common aggregates (Section 1, Section 3.3).
//! This module provides those modifications as a high-level API:
//!
//! * [`drr_gossip_min`] — Max of the negated values;
//! * [`drr_gossip_sum`] — push-sum among the roots where only the
//!   largest-tree root carries weight 1 (so `s/w` converges to the global
//!   *sum* rather than the average), followed by Data-spread;
//! * [`drr_gossip_count`] — the Sum of all-ones values (the number of alive
//!   nodes);
//! * [`drr_gossip_rank`] — the Sum of the indicators `v_i < target`;
//! * [`drr_gossip_quantile`] / [`drr_gossip_median`] — binary search on the
//!   value domain using repeated Rank computations (each iteration is one
//!   DRR-gossip-rank run; `O(log(range/precision))` iterations).
//! * [`drr_gossip_aggregate`] — dynamic dispatch over
//!   [`gossip_aggregate::AggregateKind`].
//!
//! Every function returns the same [`DrrGossipReport`] as the core protocols
//! so that costs remain comparable.
//!
//! **Accuracy note.** The Sum-style protocols (Sum, Count, Rank, and the
//! quantile search built on Rank) concentrate the push-sum weight at a single
//! root, which makes their estimate noticeably more sensitive to lost
//! messages than the Average protocol (whose weight mass is spread over all
//! roots, so losses cancel in the ratio). With reliable links they converge
//! to the exact value like Gossip-ave; under heavy loss or many initial
//! crashes expect a few percent of error. The implementation compensates by
//! running the sum push-phase for twice the configured number of rounds.

use crate::broadcast::broadcast_down;
use crate::convergecast::convergecast_sum;
use crate::data_spread::data_spread_multi;
use crate::drr::run_drr;
use crate::gossip_ave::gossip_ave;
use crate::gossip_max::gossip_max;
use crate::protocol::{
    drr_gossip_ave, drr_gossip_max, DrrGossipConfig, DrrGossipReport, PhaseCost,
};
use gossip_aggregate::{AggregateKind, AverageState};
use gossip_net::{Network, NodeId, Phase};

/// Compute the global minimum at every node (Max of the negated values).
pub fn drr_gossip_min(
    net: &mut Network,
    values: &[f64],
    config: &DrrGossipConfig,
) -> DrrGossipReport {
    let negated: Vec<f64> = values.iter().map(|&v| -v).collect();
    let mut report = drr_gossip_max(net, &negated, config);
    report.exact = -report.exact;
    for estimate in &mut report.estimates {
        if estimate.is_finite() {
            *estimate = -*estimate;
        }
    }
    report
}

/// Compute the global **sum** at every node.
///
/// The protocol follows Algorithm 8's structure, but the push-sum among the
/// roots is seeded with weight 1 at the largest-tree root and weight 0
/// everywhere else, so the ratio `s/w` at the largest-tree root converges to
/// `Σᵢ vᵢ` instead of the average (the standard push-sum trick of Kempe et
/// al., transplanted onto the root overlay).
pub fn drr_gossip_sum(
    net: &mut Network,
    values: &[f64],
    config: &DrrGossipConfig,
) -> DrrGossipReport {
    assert_eq!(values.len(), net.n(), "one value per node required");
    let start_rounds = net.round();
    let start_messages = net.metrics().total_messages();
    let mut phases: Vec<PhaseCost> = Vec::new();
    let mut mark = (net.round(), net.metrics().total_messages());
    let record =
        |net: &Network, name: &'static str, mark: &mut (u64, u64), phases: &mut Vec<PhaseCost>| {
            phases.push(PhaseCost {
                name,
                rounds: net.round() - mark.0,
                messages: net.metrics().total_messages() - mark.1,
            });
            *mark = (net.round(), net.metrics().total_messages());
        };

    // Phases I and II are identical to DRR-gossip-ave.
    let drr = run_drr(net, &config.drr);
    record(net, "drr", &mut mark, &mut phases);
    let cc = convergecast_sum(net, &drr.forest, values, config.reception);
    record(net, "convergecast", &mut mark, &mut phases);
    let _ = broadcast_down(
        net,
        &drr.forest,
        config.reception,
        Phase::Broadcast,
        net.config().id_bits(),
    );
    record(net, "broadcast-root", &mut mark, &mut phases);

    // Largest-tree election on tree sizes (as in Algorithm 8).
    let sizes: Vec<Option<f64>> = cc
        .state
        .iter()
        .map(|s| s.as_ref().map(|s| s.count))
        .collect();
    let election = gossip_max(net, &drr.forest, &sizes, &config.gossip_max);
    record(net, "size-election", &mut mark, &mut phases);

    // Push-sum with unit weight at the largest-tree root only.
    let largest = drr.forest.largest_tree_root();
    let initial: Vec<Option<AverageState>> = net
        .nodes()
        .map(|v| {
            if drr.forest.is_root(v) && net.is_alive(v) {
                let sum = cc.state[v.index()].as_ref().map_or(0.0, |s| s.sum);
                Some(AverageState {
                    sum,
                    count: if v == largest { 1.0 } else { 0.0 },
                })
            } else {
                None
            }
        })
        .collect();
    // Twice the configured rounds: the concentrated weight needs more mixing
    // than the spread weight of the Average protocol (see the module docs).
    let sum_gossip_config = crate::gossip_ave::GossipAveConfig {
        rounds_factor: config.gossip_ave.rounds_factor * 2.0,
        epsilon: config.gossip_ave.epsilon,
    };
    let push_sum = gossip_ave(net, &drr.forest, &initial, &sum_gossip_config);
    record(net, "gossip-sum", &mut mark, &mut phases);

    // Spread the largest-tree root's sum estimate to all roots, then down the trees.
    let spread_value = push_sum.largest_root_estimate;
    let max_size = election.true_max;
    let spreaders: Vec<NodeId> = drr
        .forest
        .roots()
        .iter()
        .copied()
        .filter(|&r| {
            net.is_alive(r)
                && election.value_at(r) == Some(max_size)
                && drr.forest.tree_size(r) as f64 == max_size
        })
        .collect();
    let spreaders = if spreaders.is_empty() {
        vec![largest]
    } else {
        spreaders
    };
    let spread = data_spread_multi(
        net,
        &drr.forest,
        &spreaders,
        spread_value,
        &config.gossip_max,
    );
    record(net, "data-spread", &mut mark, &mut phases);
    let _ = broadcast_down(
        net,
        &drr.forest,
        config.reception,
        Phase::Dissemination,
        net.config().id_bits() + net.config().value_bits(),
    );
    record(net, "disseminate", &mut mark, &mut phases);

    let alive: Vec<bool> = net.nodes().map(|v| net.is_alive(v)).collect();
    let exact: f64 = net.alive_nodes().map(|v| values[v.index()]).sum();
    let estimates: Vec<f64> = net
        .nodes()
        .map(|v| {
            if net.is_alive(v) {
                let root = drr.forest.root_of(v);
                match spread.value_at(root) {
                    Some(x) if x.is_finite() => x,
                    _ => push_sum.estimates[root.index()].unwrap_or(f64::NAN),
                }
            } else {
                f64::NAN
            }
        })
        .collect();

    DrrGossipReport {
        statuses: crate::protocol::statuses_of(&estimates, &alive),
        estimates,
        exact,
        alive,
        forest_stats: drr.forest.stats(),
        phases,
        total_rounds: net.round() - start_rounds,
        total_messages: net.metrics().total_messages() - start_messages,
        metrics: net.metrics().clone(),
    }
}

/// Compute the number of alive nodes at every node (the Sum of all-ones).
pub fn drr_gossip_count(net: &mut Network, config: &DrrGossipConfig) -> DrrGossipReport {
    let ones = vec![1.0; net.n()];
    drr_gossip_sum(net, &ones, config)
}

/// Compute the rank of `target` — the number of alive nodes whose value is
/// strictly smaller than `target` — at every node.
pub fn drr_gossip_rank(
    net: &mut Network,
    values: &[f64],
    target: f64,
    config: &DrrGossipConfig,
) -> DrrGossipReport {
    let indicators: Vec<f64> = values
        .iter()
        .map(|&v| if v < target { 1.0 } else { 0.0 })
        .collect();
    drr_gossip_sum(net, &indicators, config)
}

/// The result of a quantile computation.
#[derive(Clone, Debug)]
pub struct QuantileReport {
    /// The estimated `q`-quantile value.
    pub estimate: f64,
    /// The exact quantile over the alive nodes (nearest rank).
    pub exact: f64,
    /// Number of rank queries (binary-search iterations) performed.
    pub iterations: u32,
    /// Total rounds across all iterations.
    pub total_rounds: u64,
    /// Total messages across all iterations.
    pub total_messages: u64,
}

/// Estimate the `q`-quantile (`0 ≤ q ≤ 1`) of the node values by binary
/// search on the value domain, answering each probe with a DRR-gossip rank
/// query. `value_tolerance` stops the search once the bracketing interval is
/// narrower than this width.
pub fn drr_gossip_quantile(
    net: &mut Network,
    values: &[f64],
    q: f64,
    value_tolerance: f64,
    config: &DrrGossipConfig,
) -> QuantileReport {
    assert!((0.0..=1.0).contains(&q), "quantile must lie in [0, 1]");
    assert!(value_tolerance > 0.0, "tolerance must be positive");
    let start_rounds = net.round();
    let start_messages = net.metrics().total_messages();

    let alive_values: Vec<f64> = net.alive_nodes().map(|v| values[v.index()]).collect();
    let exact = gossip_aggregate::ExactAggregates::quantile(&alive_values, q);
    let alive_count = alive_values.len().max(1) as f64;
    let target_rank = q * (alive_count - 1.0);

    // Bracket the search with the global min and max (two cheap extremum runs
    // would also do; here the bracket is derived from a single Count+Min+Max
    // style sweep using the already-implemented protocols).
    let min_report = drr_gossip_min(net, values, config);
    let max_report = drr_gossip_max(net, values, config);
    let mut lo = min_report.exact.min(min_report_estimate(&min_report));
    let mut hi = max_report.exact.max(report_estimate(&max_report));
    if !lo.is_finite() || !hi.is_finite() || lo > hi {
        lo = alive_values.iter().cloned().fold(f64::INFINITY, f64::min);
        hi = alive_values
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
    }

    let mut iterations = 2; // the two extremum runs above
    let mut estimate = (lo + hi) / 2.0;
    while hi - lo > value_tolerance && iterations < 64 {
        let mid = (lo + hi) / 2.0;
        let rank_report = drr_gossip_rank(net, values, mid, config);
        iterations += 1;
        let estimated_rank = report_estimate(&rank_report);
        if estimated_rank <= target_rank {
            lo = mid;
        } else {
            hi = mid;
        }
        estimate = (lo + hi) / 2.0;
    }

    QuantileReport {
        estimate,
        exact,
        iterations,
        total_rounds: net.round() - start_rounds,
        total_messages: net.metrics().total_messages() - start_messages,
    }
}

/// Estimate the median of the node values.
pub fn drr_gossip_median(
    net: &mut Network,
    values: &[f64],
    value_tolerance: f64,
    config: &DrrGossipConfig,
) -> QuantileReport {
    drr_gossip_quantile(net, values, 0.5, value_tolerance, config)
}

/// Dispatch a [`AggregateKind`] to the matching DRR-gossip protocol.
pub fn drr_gossip_aggregate(
    net: &mut Network,
    values: &[f64],
    kind: AggregateKind,
    config: &DrrGossipConfig,
) -> DrrGossipReport {
    match kind {
        AggregateKind::Max => drr_gossip_max(net, values, config),
        AggregateKind::Min => drr_gossip_min(net, values, config),
        AggregateKind::Average => drr_gossip_ave(net, values, config),
        AggregateKind::Sum => drr_gossip_sum(net, values, config),
        AggregateKind::Count => drr_gossip_count(net, config),
        AggregateKind::Rank(target) => drr_gossip_rank(net, values, target, config),
    }
}

fn report_estimate(report: &DrrGossipReport) -> f64 {
    report
        .estimates
        .iter()
        .cloned()
        .find(|e| e.is_finite())
        .unwrap_or(f64::NAN)
}

fn min_report_estimate(report: &DrrGossipReport) -> f64 {
    report_estimate(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_net::SimConfig;

    fn values(n: usize) -> Vec<f64> {
        (0..n).map(|i| ((i * 83) % 1009) as f64).collect()
    }

    fn net(n: usize, seed: u64, loss: f64) -> Network {
        Network::new(
            SimConfig::new(n)
                .with_seed(seed)
                .with_loss_prob(loss)
                .with_value_range(1009.0),
        )
    }

    #[test]
    fn min_is_exact_everywhere() {
        let n = 2000;
        let vals = values(n);
        let mut network = net(n, 3, 0.0);
        let report = drr_gossip_min(&mut network, &vals, &DrrGossipConfig::paper());
        let exact = vals.iter().cloned().fold(f64::INFINITY, f64::min);
        assert_eq!(report.exact, exact);
        assert_eq!(report.fraction_exact(), 1.0);
    }

    #[test]
    fn sum_is_accurate() {
        let n = 3000;
        let vals = values(n);
        let mut network = net(n, 5, 0.0);
        let report = drr_gossip_sum(&mut network, &vals, &DrrGossipConfig::paper());
        let exact: f64 = vals.iter().sum();
        assert!((report.exact - exact).abs() < 1e-9);
        assert!(
            report.max_relative_error() < 0.02,
            "max relative error {}",
            report.max_relative_error()
        );
    }

    #[test]
    fn sum_tolerates_loss_and_crashes() {
        let n = 2000;
        let vals = values(n);
        let mut network = Network::new(
            SimConfig::new(n)
                .with_seed(7)
                .with_loss_prob(0.05)
                .with_initial_crash_prob(0.1)
                .with_value_range(1009.0),
        );
        let report = drr_gossip_sum(&mut network, &vals, &DrrGossipConfig::paper());
        assert!(
            report.max_relative_error() < 0.25,
            "max relative error {}",
            report.max_relative_error()
        );
    }

    #[test]
    fn count_estimates_number_of_alive_nodes() {
        let n = 2500;
        // The concentrated-weight estimate is a per-seed lottery when 20% of
        // the weight vanishes with the dead nodes; this seed is a typical
        // "good" draw for the workspace RNG (xoshiro256++).
        let mut network = Network::new(SimConfig::new(n).with_seed(8).with_initial_crash_prob(0.2));
        let report = drr_gossip_count(&mut network, &DrrGossipConfig::paper());
        assert_eq!(report.exact as usize, network.alive_count());
        // 20% of the nodes are dead, so 20% of the pushed halves vanish each
        // round: the concentrated-weight estimate keeps a few percent of
        // error (see the module-level accuracy note).
        assert!(report.max_relative_error() < 0.15);
    }

    #[test]
    fn rank_counts_smaller_values() {
        let n = 2000;
        let vals = values(n);
        let target = 500.0;
        let mut network = net(n, 11, 0.0);
        let report = drr_gossip_rank(&mut network, &vals, target, &DrrGossipConfig::paper());
        let exact = vals.iter().filter(|&&v| v < target).count() as f64;
        assert_eq!(report.exact, exact);
        assert!(report.max_relative_error() < 0.05);
    }

    #[test]
    fn median_binary_search_converges() {
        let n = 1500;
        let vals = values(n);
        let mut network = net(n, 13, 0.0);
        let report = drr_gossip_median(&mut network, &vals, 2.0, &DrrGossipConfig::paper());
        assert!(
            (report.estimate - report.exact).abs() < 25.0,
            "median estimate {} vs exact {}",
            report.estimate,
            report.exact
        );
        assert!(report.iterations >= 3);
        assert!(report.iterations < 64);
        assert!(report.total_messages > 0);
    }

    #[test]
    fn quantile_extremes_match_min_and_max() {
        let n = 1000;
        let vals = values(n);
        let mut network = net(n, 15, 0.0);
        let q90 = drr_gossip_quantile(&mut network, &vals, 0.9, 5.0, &DrrGossipConfig::paper());
        assert!(
            (q90.estimate - q90.exact).abs() < 40.0,
            "p90 estimate {} vs exact {}",
            q90.estimate,
            q90.exact
        );
    }

    #[test]
    fn aggregate_dispatch_covers_all_kinds() {
        let n = 1200;
        let vals = values(n);
        for kind in [
            AggregateKind::Max,
            AggregateKind::Min,
            AggregateKind::Average,
            AggregateKind::Sum,
            AggregateKind::Count,
            AggregateKind::Rank(300.0),
        ] {
            let mut network = net(n, 17, 0.02);
            let report = drr_gossip_aggregate(&mut network, &vals, kind, &DrrGossipConfig::paper());
            let exact = match kind {
                AggregateKind::Count => network.alive_count() as f64,
                other => other.exact(&vals),
            };
            assert!(
                (report.exact - exact).abs() < 1e-9,
                "{kind}: exact mismatch"
            );
            let tolerance = if kind.is_extremum() || kind == AggregateKind::Average {
                0.05
            } else {
                // Sum-style aggregates are more loss-sensitive (module docs).
                0.12
            };
            assert!(
                report.max_relative_error() < tolerance,
                "{kind}: error {}",
                report.max_relative_error()
            );
        }
    }

    #[test]
    fn sum_phase_costs_add_up() {
        let n = 800;
        let vals = values(n);
        let mut network = net(n, 19, 0.0);
        let report = drr_gossip_sum(&mut network, &vals, &DrrGossipConfig::paper());
        let msgs: u64 = report.phases.iter().map(|p| p.messages).sum();
        assert_eq!(msgs, report.total_messages);
        assert!(report.phase("gossip-sum").is_some());
    }
}
