//! Phase III: Gossip-max (Algorithm 4).
//!
//! All tree roots compute the global maximum of their local aggregates by a
//! push gossip over the whole node set: in every round each root sends its
//! current value to a uniformly random node of `V`; a non-root receiver
//! forwards the message to its own root (it learned the root's address in
//! the Phase-II broadcast — the non-address-oblivious step), so each gossip
//! edge costs at most two hops. Because a root is hit with probability
//! proportional to its tree size, the selection among roots is *not*
//! uniform; the gossip procedure therefore only guarantees that a constant
//! fraction of the roots (including the largest-tree root) learn the maximum
//! (Theorem 5), after which a short **sampling procedure** — each root
//! queries `O(log n)` random nodes and pulls their roots' values — brings
//! every root to consensus whp (Theorem 6).
//!
//! Cost: `O(log n)` rounds and `O(n)` messages (there are only
//! `m = O(n/log n)` roots).

use crate::forest::Forest;
use gossip_net::{NodeId, Phase, Transport};
use serde::{Deserialize, Serialize};

/// Configuration of Gossip-max.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct GossipMaxConfig {
    /// Gossip-procedure rounds = `⌈gossip_rounds_factor · log₂ n⌉`.
    pub gossip_rounds_factor: f64,
    /// Sampling-procedure rounds = `⌈sampling_rounds_factor · log₂ n⌉`.
    pub sampling_rounds_factor: f64,
    /// Whether to run the sampling procedure at all (disabled by the E14
    /// ablation to show that the gossip procedure alone does not reach
    /// consensus).
    pub run_sampling: bool,
}

impl Default for GossipMaxConfig {
    fn default() -> Self {
        // The analysis of Theorems 5–6 uses generous constants
        // (8 log n/(1−ρ) + log_β n gossip rounds); empirically consensus is
        // reached well before that, so the defaults use 2·log n gossip rounds
        // and 1.5·log n sampling rounds — still Θ(log n), and every
        // correctness test (all roots agree on Max whp, under loss and
        // crashes) passes with margin.
        GossipMaxConfig {
            gossip_rounds_factor: 2.0,
            sampling_rounds_factor: 1.5,
            run_sampling: true,
        }
    }
}

impl GossipMaxConfig {
    /// The number of gossip-procedure rounds for an `n`-node network.
    pub fn gossip_rounds(&self, n: usize) -> u64 {
        ((f64::from(gossip_net::id_bits(n)) * self.gossip_rounds_factor).ceil() as u64).max(1)
    }

    /// The number of sampling-procedure rounds for an `n`-node network.
    pub fn sampling_rounds(&self, n: usize) -> u64 {
        if !self.run_sampling {
            return 0;
        }
        ((f64::from(gossip_net::id_bits(n)) * self.sampling_rounds_factor).ceil() as u64).max(1)
    }
}

/// Outcome of Gossip-max.
#[derive(Clone, Debug)]
pub struct GossipMaxOutcome {
    /// Current value per node; `Some` at alive roots, `None` elsewhere.
    pub root_values: Vec<Option<f64>>,
    /// The true maximum over the alive roots' initial values.
    pub true_max: f64,
    /// Fraction of alive roots holding the true maximum after the gossip
    /// procedure (Theorem 5 predicts a constant fraction).
    pub fraction_after_gossip: f64,
    /// Fraction after the sampling procedure (Theorem 6 predicts 1 whp).
    pub fraction_after_sampling: f64,
    /// Rounds used by the gossip procedure.
    pub gossip_rounds: u64,
    /// Rounds used by the sampling procedure.
    pub sampling_rounds: u64,
    /// Total messages sent by this phase.
    pub messages: u64,
}

impl GossipMaxOutcome {
    /// The value held by a given root.
    pub fn value_at(&self, root: NodeId) -> Option<f64> {
        self.root_values[root.index()]
    }
}

fn fraction_with_value<T: Transport>(
    net: &T,
    forest: &Forest,
    values: &[Option<f64>],
    target: f64,
) -> f64 {
    let mut roots = 0usize;
    let mut have = 0usize;
    for &r in forest.roots() {
        if !net.is_alive(r) {
            continue;
        }
        roots += 1;
        if values[r.index()] == Some(target) {
            have += 1;
        }
    }
    if roots == 0 {
        0.0
    } else {
        have as f64 / roots as f64
    }
}

/// Run Algorithm 4 on the roots of `forest`.
///
/// `initial` holds each root's starting value (`None` entries and non-root
/// entries are ignored); for the ordinary DRR-gossip-max this is the
/// convergecast-max output, for the largest-tree election it is the tree
/// size, and for Data-spread it is `−∞` everywhere except the spreading
/// root.
pub fn gossip_max<T: Transport>(
    net: &mut T,
    forest: &Forest,
    initial: &[Option<f64>],
    config: &GossipMaxConfig,
) -> GossipMaxOutcome {
    let n = net.n();
    assert_eq!(forest.n(), n);
    assert_eq!(initial.len(), n);
    let messages_before = net.metrics().total_messages();
    let value_bits = net.config().value_bits() + net.config().id_bits();
    let inquiry_bits = net.config().id_bits();

    // Working values: defined exactly at alive roots.
    let mut values: Vec<Option<f64>> = (0..n)
        .map(|i| {
            let v = NodeId::new(i);
            if forest.is_root(v) && net.is_alive(v) {
                Some(initial[i].unwrap_or(f64::NEG_INFINITY))
            } else {
                None
            }
        })
        .collect();
    let true_max = values
        .iter()
        .flatten()
        .fold(f64::NEG_INFINITY, |a, &b| a.max(b));

    // ---- Gossip procedure ----
    let gossip_rounds = config.gossip_rounds(n);
    for _ in 0..gossip_rounds {
        // Snapshot sender values so all pushes in a round use round-start state.
        let snapshot = values.clone();
        let mut incoming: Vec<(usize, f64)> = Vec::new();
        for &root in forest.roots() {
            if !net.is_alive(root) {
                continue;
            }
            let value = match snapshot[root.index()] {
                Some(v) => v,
                None => continue,
            };
            let target = net.sample_uniform();
            if !net.send(root, target, Phase::RootGossip, value_bits) {
                continue;
            }
            let receiver_root = if forest.is_root(target) {
                target
            } else {
                let owner = forest.root_of(target);
                if !net.send(target, owner, Phase::RootForward, value_bits) {
                    continue;
                }
                owner
            };
            if net.is_alive(receiver_root) {
                incoming.push((receiver_root.index(), value));
            }
        }
        for (idx, value) in incoming {
            if let Some(current) = values[idx] {
                values[idx] = Some(current.max(value));
            }
        }
        net.advance_round();
    }
    let fraction_after_gossip = fraction_with_value(net, forest, &values, true_max);

    // ---- Sampling procedure ----
    let sampling_rounds = config.sampling_rounds(n);
    for _ in 0..sampling_rounds {
        let snapshot = values.clone();
        let mut incoming: Vec<(usize, f64)> = Vec::new();
        for &root in forest.roots() {
            if !net.is_alive(root) {
                continue;
            }
            let target = net.sample_uniform();
            if !net.send(root, target, Phase::RootSampling, inquiry_bits) {
                continue;
            }
            let queried_root = if forest.is_root(target) {
                target
            } else {
                let owner = forest.root_of(target);
                if !net.send(target, owner, Phase::RootForward, inquiry_bits) {
                    continue;
                }
                owner
            };
            if !net.is_alive(queried_root) {
                continue;
            }
            let reply_value = match snapshot[queried_root.index()] {
                Some(v) => v,
                None => continue,
            };
            // The queried root replies directly to the inquiring root.
            if net.send(queried_root, root, Phase::RootSampling, value_bits) {
                incoming.push((root.index(), reply_value));
            }
        }
        for (idx, value) in incoming {
            if let Some(current) = values[idx] {
                values[idx] = Some(current.max(value));
            }
        }
        net.advance_round();
    }
    let fraction_after_sampling = if config.run_sampling {
        fraction_with_value(net, forest, &values, true_max)
    } else {
        fraction_after_gossip
    };

    GossipMaxOutcome {
        root_values: values,
        true_max,
        fraction_after_gossip,
        fraction_after_sampling,
        gossip_rounds,
        sampling_rounds,
        messages: net.metrics().total_messages() - messages_before,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convergecast::{convergecast_max, ReceptionModel};
    use crate::drr::{run_drr, DrrConfig};
    use gossip_net::{Network, SimConfig};

    fn setup(n: usize, seed: u64, loss: f64) -> (Forest, Network, Vec<Option<f64>>, f64) {
        let mut net = Network::new(SimConfig::new(n).with_seed(seed).with_loss_prob(loss));
        let drr = run_drr(&mut net, &DrrConfig::paper());
        let values: Vec<f64> = (0..n).map(|i| ((i * 193) % 7919) as f64).collect();
        let cc = convergecast_max(
            &mut net,
            &drr.forest,
            &values,
            ReceptionModel::OneCallPerRound,
        );
        let true_max = net
            .alive_nodes()
            .map(|v| values[v.index()])
            .fold(f64::NEG_INFINITY, f64::max);
        net.reset_metrics();
        (drr.forest, net, cc.state, true_max)
    }

    #[test]
    fn all_roots_reach_consensus_on_max_without_loss() {
        let (forest, mut net, initial, true_max) = setup(4000, 3, 0.0);
        let out = gossip_max(&mut net, &forest, &initial, &GossipMaxConfig::default());
        assert_eq!(out.true_max, true_max);
        assert_eq!(out.fraction_after_sampling, 1.0);
    }

    #[test]
    fn constant_fraction_after_gossip_procedure(/* Theorem 5 */) {
        let (forest, mut net, initial, _) = setup(4000, 5, 0.05);
        let out = gossip_max(&mut net, &forest, &initial, &GossipMaxConfig::default());
        assert!(
            out.fraction_after_gossip > 0.3,
            "only {} of roots had the max after gossip",
            out.fraction_after_gossip
        );
        assert!(out.fraction_after_sampling >= out.fraction_after_gossip);
    }

    #[test]
    fn consensus_under_message_loss(/* Theorem 6 with lossy links */) {
        let (forest, mut net, initial, _) = setup(3000, 7, 0.1);
        let out = gossip_max(&mut net, &forest, &initial, &GossipMaxConfig::default());
        assert!(
            out.fraction_after_sampling > 0.995,
            "fraction after sampling = {}",
            out.fraction_after_sampling
        );
    }

    #[test]
    fn rounds_are_logarithmic() {
        let (forest, mut net, initial, _) = setup(1 << 13, 9, 0.0);
        let cfg = GossipMaxConfig::default();
        let out = gossip_max(&mut net, &forest, &initial, &cfg);
        let log_n = (1u64 << 13) as f64;
        let log_n = log_n.log2();
        assert!(out.gossip_rounds as f64 <= (cfg.gossip_rounds_factor + 1.0) * log_n);
        assert!(out.sampling_rounds as f64 <= (cfg.sampling_rounds_factor + 1.0) * log_n);
    }

    #[test]
    fn message_complexity_is_linear_in_n() {
        // O(m log n) = O(n) messages: each root sends one message (plus a
        // possible forward) per round.
        let n = 1 << 13;
        let (forest, mut net, initial, _) = setup(n, 11, 0.0);
        let out = gossip_max(&mut net, &forest, &initial, &GossipMaxConfig::default());
        let bound = 16.0 * n as f64;
        assert!(
            (out.messages as f64) < bound,
            "messages = {} exceeds {bound}",
            out.messages
        );
    }

    #[test]
    fn disabling_sampling_keeps_gossip_only_fraction() {
        let (forest, mut net, initial, _) = setup(2000, 13, 0.0);
        let cfg = GossipMaxConfig {
            run_sampling: false,
            ..GossipMaxConfig::default()
        };
        let out = gossip_max(&mut net, &forest, &initial, &cfg);
        assert_eq!(out.sampling_rounds, 0);
        assert_eq!(out.fraction_after_sampling, out.fraction_after_gossip);
    }

    #[test]
    fn largest_tree_root_learns_the_max() {
        for seed in 0..5 {
            let (forest, mut net, initial, _) = setup(2000, seed, 0.0);
            let out = gossip_max(&mut net, &forest, &initial, &GossipMaxConfig::default());
            let z = forest.largest_tree_root();
            assert_eq!(out.value_at(z), Some(out.true_max));
        }
    }

    #[test]
    fn non_roots_hold_no_value() {
        let (forest, mut net, initial, _) = setup(1000, 17, 0.0);
        let out = gossip_max(&mut net, &forest, &initial, &GossipMaxConfig::default());
        for v in net.nodes() {
            if !forest.is_root(v) {
                assert_eq!(out.value_at(v), None);
            }
        }
    }

    #[test]
    fn works_with_initial_crashes() {
        let mut net = Network::new(
            SimConfig::new(2000)
                .with_seed(19)
                .with_initial_crash_prob(0.2)
                .with_loss_prob(0.05),
        );
        let drr = run_drr(&mut net, &DrrConfig::paper());
        let values: Vec<f64> = (0..2000).map(|i| (i % 997) as f64).collect();
        let cc = convergecast_max(
            &mut net,
            &drr.forest,
            &values,
            ReceptionModel::OneCallPerRound,
        );
        net.reset_metrics();
        let out = gossip_max(
            &mut net,
            &drr.forest,
            &cc.state,
            &GossipMaxConfig::default(),
        );
        // The maximum over alive nodes is found by nearly all alive roots.
        assert!(out.fraction_after_sampling > 0.99);
    }
}
