//! Phase II (downward half): broadcast along tree links.
//!
//! After convergecast, each root broadcasts its address down its tree so
//! that every member knows its root (the non-address-oblivious ingredient of
//! Phase III: a non-root that receives a gossip message forwards it to its
//! root by address). The very same mechanism is reused at the end of the
//! protocol to disseminate the final global aggregate to all tree members.
//!
//! Cost: `O(n)` messages overall and `O(log n)` rounds, because tree sizes
//! (phone-call model) and heights (message-passing model) are `O(log n)`.

use crate::convergecast::ReceptionModel;
use crate::forest::Forest;
use gossip_net::{NodeId, Phase, Transport};

/// Outcome of a tree broadcast.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BroadcastOutcome {
    /// Which nodes ended up holding the broadcast payload.
    pub reached: Vec<bool>,
    /// Rounds consumed.
    pub rounds: u64,
    /// Messages sent.
    pub messages: u64,
}

impl BroadcastOutcome {
    /// Number of nodes that received the payload (roots count themselves).
    pub fn coverage(&self) -> usize {
        self.reached.iter().filter(|&&r| r).count()
    }
}

/// Broadcast a payload from every root down its tree.
///
/// `payload_bits` is the logical size of the payload (a root address for the
/// Phase-II broadcast; an address plus an aggregate value for the final
/// dissemination). Lost messages are retransmitted in subsequent rounds.
pub fn broadcast_down<T: Transport>(
    net: &mut T,
    forest: &Forest,
    reception: ReceptionModel,
    phase: Phase,
    payload_bits: u32,
) -> BroadcastOutcome {
    let n = net.n();
    assert_eq!(forest.n(), n, "forest must cover the network");
    let rounds_before = net.round();
    let messages_before = net.metrics().total_messages();

    // A node "has" the payload once its root's broadcast reaches it.
    let mut has: Vec<bool> = (0..n)
        .map(|i| {
            let v = NodeId::new(i);
            forest.is_root(v) && net.is_alive(v)
        })
        .collect();
    // Liveness is re-read every round (on churny backends nodes crash and
    // rejoin mid-phase); the phase ends when every alive node holds the
    // payload, or when it stops progressing (a crashed inner node cuts its
    // whole subtree off).
    let round_cap = 16 * (n as u64) + 64;
    let stall_cap = 64u32;
    let mut stalled_rounds = 0u32;
    let mut rounds_used = 0u64;
    while rounds_used < round_cap && stalled_rounds < stall_cap {
        let pending = (0..n)
            .filter(|&i| {
                let v = NodeId::new(i);
                net.is_alive(v) && !has[i]
            })
            .count();
        if pending == 0 {
            break;
        }
        // Snapshot the holders at the start of the round: a node that first
        // receives the payload this round may only forward it from the next
        // round on.
        let holders: Vec<usize> = (0..n)
            .filter(|&i| has[i] && net.is_alive(NodeId::new(i)))
            .collect();
        let mut progressed = false;
        for i in holders {
            let me = NodeId::new(i);
            match reception {
                ReceptionModel::OneCallPerRound => {
                    // Send to the first child that does not have it yet.
                    if let Some(&child) = forest
                        .children(me)
                        .iter()
                        .find(|c| net.is_alive(**c) && !has[c.index()])
                    {
                        if net.send(me, child, phase, payload_bits) {
                            has[child.index()] = true;
                            progressed = true;
                        }
                    }
                }
                ReceptionModel::AllNeighborsPerRound => {
                    let targets: Vec<NodeId> = forest
                        .children(me)
                        .iter()
                        .copied()
                        .filter(|c| net.is_alive(*c) && !has[c.index()])
                        .collect();
                    for child in targets {
                        if net.send(me, child, phase, payload_bits) {
                            has[child.index()] = true;
                            progressed = true;
                        }
                    }
                }
            }
        }
        net.advance_round();
        rounds_used += 1;
        if progressed {
            stalled_rounds = 0;
        } else {
            stalled_rounds += 1;
        }
    }

    BroadcastOutcome {
        reached: has,
        rounds: net.round() - rounds_before,
        messages: net.metrics().total_messages() - messages_before,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drr::{run_drr, DrrConfig};
    use gossip_net::{Network, SimConfig};

    fn forest_and_net(n: usize, seed: u64, loss: f64) -> (Forest, Network) {
        let mut net = Network::new(SimConfig::new(n).with_seed(seed).with_loss_prob(loss));
        let outcome = run_drr(&mut net, &DrrConfig::paper());
        net.reset_metrics();
        (outcome.forest, net)
    }

    #[test]
    fn broadcast_reaches_every_alive_node() {
        let (forest, mut net) = forest_and_net(1500, 3, 0.0);
        let out = broadcast_down(
            &mut net,
            &forest,
            ReceptionModel::OneCallPerRound,
            Phase::Broadcast,
            16,
        );
        assert_eq!(out.coverage(), 1500);
    }

    #[test]
    fn message_count_is_one_per_non_root_without_loss() {
        let (forest, mut net) = forest_and_net(900, 5, 0.0);
        let out = broadcast_down(
            &mut net,
            &forest,
            ReceptionModel::OneCallPerRound,
            Phase::Broadcast,
            16,
        );
        assert_eq!(out.messages, 900 - forest.num_trees() as u64);
    }

    #[test]
    fn rounds_bounded_by_tree_size_in_phone_call_model() {
        let (forest, mut net) = forest_and_net(2000, 7, 0.0);
        let out = broadcast_down(
            &mut net,
            &forest,
            ReceptionModel::OneCallPerRound,
            Phase::Broadcast,
            16,
        );
        assert!(out.rounds <= forest.max_tree_size() as u64 + 2);
    }

    #[test]
    fn rounds_bounded_by_height_in_message_passing_model() {
        let (forest, mut net) = forest_and_net(2000, 9, 0.0);
        let out = broadcast_down(
            &mut net,
            &forest,
            ReceptionModel::AllNeighborsPerRound,
            Phase::Broadcast,
            16,
        );
        assert!(out.rounds <= forest.max_height() as u64 + 2);
    }

    #[test]
    fn lossy_broadcast_still_covers_everyone() {
        let (forest, mut net) = forest_and_net(800, 11, 0.2);
        let out = broadcast_down(
            &mut net,
            &forest,
            ReceptionModel::OneCallPerRound,
            Phase::Broadcast,
            16,
        );
        assert_eq!(out.coverage(), 800);
        assert!(out.messages >= 800 - forest.num_trees() as u64);
    }

    #[test]
    fn crashed_nodes_are_not_reached() {
        let mut net = Network::new(
            SimConfig::new(600)
                .with_seed(13)
                .with_initial_crash_prob(0.2),
        );
        let drr = run_drr(&mut net, &DrrConfig::paper());
        net.reset_metrics();
        let out = broadcast_down(
            &mut net,
            &drr.forest,
            ReceptionModel::OneCallPerRound,
            Phase::Broadcast,
            16,
        );
        assert_eq!(out.coverage(), net.alive_count());
        for v in net.nodes() {
            if !net.is_alive(v) {
                assert!(!out.reached[v.index()]);
            }
        }
    }

    #[test]
    fn all_roots_forest_needs_no_messages() {
        let mut net = Network::new(SimConfig::new(50).with_seed(1));
        let forest = Forest::from_parents(vec![None; 50]).unwrap();
        let out = broadcast_down(
            &mut net,
            &forest,
            ReceptionModel::OneCallPerRound,
            Phase::Broadcast,
            16,
        );
        assert_eq!(out.messages, 0);
        assert_eq!(out.coverage(), 50);
    }
}
