//! Random rank assignment (the "R" of DRR).
//!
//! Every node chooses a rank independently and uniformly at random from
//! `[0, 1]` (Algorithm 1). The paper notes that drawing from `[1, n³]` gives
//! the same asymptotics; drawing real-valued ranks makes ties a
//! probability-zero event, and we additionally break any residual tie (from
//! finite floating-point precision) by node id so that ranks are always a
//! strict total order — the property every DRR proof relies on.

use gossip_net::{NodeId, Transport};
use rand::Rng;

/// Per-node ranks forming a strict total order.
#[derive(Clone, Debug, PartialEq)]
pub struct Ranks {
    ranks: Vec<f64>,
}

impl Ranks {
    /// Draw a rank for every node of the network from the simulation RNG.
    pub fn assign<T: Transport>(net: &mut T) -> Self {
        let n = net.n();
        let rng = net.rng_mut();
        let ranks = (0..n).map(|_| rng.gen_range(0.0..1.0)).collect();
        Ranks { ranks }
    }

    /// Build ranks from explicit values (for tests and deterministic
    /// constructions). Values need not be distinct — ties are broken by id.
    pub fn from_values(ranks: Vec<f64>) -> Self {
        Ranks { ranks }
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.ranks.len()
    }

    /// The rank of a node.
    #[inline]
    pub fn rank(&self, v: NodeId) -> f64 {
        self.ranks[v.index()]
    }

    /// Raw rank slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.ranks
    }

    /// Strict "is ranked higher than" comparison with id tie-breaking.
    #[inline]
    pub fn higher(&self, a: NodeId, b: NodeId) -> bool {
        let (ra, rb) = (self.ranks[a.index()], self.ranks[b.index()]);
        ra > rb || (ra == rb && a.index() > b.index())
    }

    /// The node with the globally highest rank.
    pub fn highest(&self) -> NodeId {
        let mut best = NodeId::new(0);
        for i in 1..self.ranks.len() {
            let v = NodeId::new(i);
            if self.higher(v, best) {
                best = v;
            }
        }
        best
    }

    /// Nodes sorted by increasing rank (the "order statistic" numbering used
    /// in the proofs of Theorems 2 and 4).
    pub fn order_statistic(&self) -> Vec<NodeId> {
        let mut order: Vec<NodeId> = (0..self.ranks.len()).map(NodeId::new).collect();
        order.sort_by(|&a, &b| {
            if self.higher(b, a) {
                std::cmp::Ordering::Less
            } else {
                std::cmp::Ordering::Greater
            }
        });
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_net::{Network, SimConfig};

    #[test]
    fn assign_produces_ranks_in_unit_interval() {
        let mut net = Network::new(SimConfig::new(500).with_seed(1));
        let ranks = Ranks::assign(&mut net);
        assert_eq!(ranks.n(), 500);
        assert!(ranks.as_slice().iter().all(|&r| (0.0..1.0).contains(&r)));
    }

    #[test]
    fn assign_is_deterministic_in_seed() {
        let ranks = |seed| {
            let mut net = Network::new(SimConfig::new(64).with_seed(seed));
            Ranks::assign(&mut net).as_slice().to_vec()
        };
        assert_eq!(ranks(5), ranks(5));
        assert_ne!(ranks(5), ranks(6));
    }

    #[test]
    fn higher_is_a_strict_total_order_even_with_ties() {
        let ranks = Ranks::from_values(vec![0.5, 0.5, 0.2]);
        let (a, b, c) = (NodeId::new(0), NodeId::new(1), NodeId::new(2));
        // tie broken by id
        assert!(ranks.higher(b, a));
        assert!(!ranks.higher(a, b));
        assert!(ranks.higher(a, c));
        // irreflexive
        assert!(!ranks.higher(a, a));
    }

    #[test]
    fn highest_finds_maximum() {
        let ranks = Ranks::from_values(vec![0.1, 0.9, 0.3, 0.9]);
        // tie between 1 and 3 broken towards the larger id
        assert_eq!(ranks.highest(), NodeId::new(3));
    }

    #[test]
    fn order_statistic_sorts_by_rank() {
        let ranks = Ranks::from_values(vec![0.3, 0.1, 0.9, 0.5]);
        let order: Vec<usize> = ranks.order_statistic().iter().map(|v| v.index()).collect();
        assert_eq!(order, vec![1, 0, 3, 2]);
    }

    #[test]
    fn order_statistic_is_consistent_with_higher() {
        let ranks = Ranks::from_values(vec![0.4, 0.4, 0.2, 0.8]);
        let order = ranks.order_statistic();
        for w in order.windows(2) {
            assert!(ranks.higher(w[1], w[0]));
        }
    }
}
