//! Local-DRR: the DRR variant for sparse networks (Section 4).
//!
//! On an arbitrary undirected graph, each node draws a uniform random rank
//! and connects to its **highest-ranked neighbour** — but only if that
//! neighbour outranks the node itself; a node that has the highest rank in
//! its closed neighbourhood becomes a root. This takes a single round
//! (each node sends its rank to all neighbours simultaneously, the standard
//! message-passing assumption) and `2|E|` messages.
//!
//! Key properties proved in the paper and checked by the experiments:
//! * Theorem 11 — every tree has height `O(log n)` whp on *any* graph;
//! * Theorem 13 — the number of trees is `Θ(Σᵢ 1/(dᵢ+1))` whp.

use crate::forest::Forest;
use crate::rank::Ranks;
use gossip_net::{Network, NodeId, Phase};
use gossip_topology::Graph;

/// Outcome of the Local-DRR phase.
#[derive(Clone, Debug)]
pub struct LocalDrrOutcome {
    /// The ranking forest (trees are subgraphs of the communication graph).
    pub forest: Forest,
    /// The ranks drawn by the nodes.
    pub ranks: Ranks,
    /// Rounds consumed (always 1 plus one connection round).
    pub rounds: u64,
    /// Messages sent (rank exchange over every edge + connection messages).
    pub messages: u64,
}

/// Run Local-DRR on `graph` over the given network (used for accounting; the
/// graph must have the same number of nodes as the network).
pub fn run_local_drr(net: &mut Network, graph: &Graph) -> LocalDrrOutcome {
    assert_eq!(
        net.n(),
        graph.n(),
        "network and graph must have the same node count"
    );
    let n = net.n();
    let rounds_before = net.round();
    let messages_before = net.metrics().total_messages();
    let ranks = Ranks::assign(net);
    let rank_bits = 3 * net.config().id_bits();
    let connect_bits = net.config().id_bits();

    // Round 1: every alive node sends its rank to all neighbours
    // simultaneously (message-passing model). Receivers record the ranks
    // they successfully hear.
    let mut heard: Vec<Vec<(NodeId, bool)>> = vec![Vec::new(); n];
    for v in 0..n {
        let me = NodeId::new(v);
        if !net.is_alive(me) {
            continue;
        }
        for u in graph.neighbors(me) {
            let delivered = net.send(me, u, Phase::DrrProbe, rank_bits);
            heard[u.index()].push((me, delivered));
        }
    }
    net.advance_round();

    // Each node picks the highest-ranked neighbour it actually heard from;
    // it connects iff that neighbour outranks it.
    let mut parent: Vec<Option<NodeId>> = vec![None; n];
    for v in 0..n {
        let me = NodeId::new(v);
        if !net.is_alive(me) {
            continue;
        }
        let best = heard[v]
            .iter()
            .filter(|&&(_, delivered)| delivered)
            .map(|&(u, _)| u)
            .max_by(|&a, &b| {
                if ranks.higher(a, b) {
                    std::cmp::Ordering::Greater
                } else {
                    std::cmp::Ordering::Less
                }
            });
        if let Some(best) = best {
            if ranks.higher(best, me) {
                parent[v] = Some(best);
            }
        }
    }

    // Round 2: connection messages to the chosen parents (retried a few
    // times; an unreachable parent demotes the child back to a root).
    #[allow(clippy::needless_range_loop)] // v is a node id indexing several arrays
    for v in 0..n {
        let me = NodeId::new(v);
        if let Some(p) = parent[v] {
            let (_, ok) = net.send_with_retries(me, p, Phase::DrrConnect, connect_bits, 8);
            if !ok {
                parent[v] = None;
            }
        }
    }
    net.advance_round();

    let forest = Forest::from_parents(parent)
        .expect("Local-DRR parents strictly outrank their children, so no cycles are possible");

    LocalDrrOutcome {
        forest,
        ranks,
        rounds: net.round() - rounds_before,
        messages: net.metrics().total_messages() - messages_before,
    }
}

/// Pure (network-free) Local-DRR used by analysis experiments that only care
/// about the forest shape: each node connects to its highest-ranked
/// neighbour if that neighbour outranks it.
pub fn local_drr_forest(graph: &Graph, ranks: &Ranks) -> Forest {
    let n = graph.n();
    let mut parent: Vec<Option<NodeId>> = vec![None; n];
    #[allow(clippy::needless_range_loop)] // v is a node id indexing several arrays
    for v in 0..n {
        let me = NodeId::new(v);
        let best = graph.neighbors(me).max_by(|&a, &b| {
            if ranks.higher(a, b) {
                std::cmp::Ordering::Greater
            } else {
                std::cmp::Ordering::Less
            }
        });
        if let Some(best) = best {
            if ranks.higher(best, me) {
                parent[v] = Some(best);
            }
        }
    }
    Forest::from_parents(parent).expect("acyclic by rank monotonicity")
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_net::SimConfig;
    use gossip_topology::{complete, d_regular, grid2d, ring, ChordOverlay};

    fn net(n: usize, seed: u64) -> Network {
        Network::new(SimConfig::new(n).with_seed(seed))
    }

    #[test]
    fn forest_edges_are_graph_edges() {
        let graph = d_regular(400, 6, 3);
        let mut network = net(400, 3);
        let outcome = run_local_drr(&mut network, &graph);
        for v in graph.nodes() {
            if let Some(p) = outcome.forest.parent(v) {
                assert!(graph.has_edge(v, p), "tree edge must be a graph edge");
                assert!(outcome.ranks.higher(p, v));
            }
        }
    }

    #[test]
    fn roots_are_local_rank_maxima() {
        let graph = grid2d(20, 20, true);
        let mut network = net(400, 5);
        let outcome = run_local_drr(&mut network, &graph);
        for v in graph.nodes() {
            if outcome.forest.is_root(v) {
                // With no message loss, a root must outrank all neighbours.
                for u in graph.neighbors(v) {
                    assert!(outcome.ranks.higher(v, u));
                }
            }
        }
    }

    #[test]
    fn takes_two_rounds_and_two_messages_per_edge_plus_connections() {
        let graph = ring(100);
        let mut network = net(100, 1);
        let outcome = run_local_drr(&mut network, &graph);
        assert_eq!(outcome.rounds, 2);
        // rank exchange: 2 per edge = 200; connection messages: ≤ n
        assert!(outcome.messages >= 200);
        assert!(outcome.messages <= 200 + 100);
    }

    #[test]
    fn number_of_trees_tracks_degree_formula(/* Theorem 13 sanity */) {
        let d = 8;
        let n = 4000;
        let graph = d_regular(n, d, 7);
        let mut network = net(n, 7);
        let outcome = run_local_drr(&mut network, &graph);
        let expected = graph.expected_local_drr_trees();
        let actual = outcome.forest.num_trees() as f64;
        assert!(
            (actual - expected).abs() < 0.35 * expected,
            "expected ~{expected}, got {actual}"
        );
    }

    #[test]
    fn tree_height_is_logarithmic_on_chord(/* Theorem 11 sanity */) {
        let n = 1 << 12;
        let graph = ChordOverlay::new(n).graph();
        let mut network = net(n, 11);
        let outcome = run_local_drr(&mut network, &graph);
        let log_n = (n as f64).log2();
        assert!(
            (outcome.forest.max_height() as f64) < 6.0 * log_n,
            "max height = {}",
            outcome.forest.max_height()
        );
    }

    #[test]
    fn complete_graph_gives_single_tree() {
        // On a complete graph every node sees the global maximum, so there is
        // exactly one root: the top-ranked node.
        let graph = complete(200);
        let mut network = net(200, 13);
        let outcome = run_local_drr(&mut network, &graph);
        assert_eq!(outcome.forest.num_trees(), 1);
        assert_eq!(outcome.forest.max_height(), 1);
        assert!(outcome.forest.is_root(outcome.ranks.highest()));
    }

    #[test]
    fn pure_forest_matches_networked_run_without_loss() {
        let graph = d_regular(300, 4, 17);
        let mut network = net(300, 17);
        let outcome = run_local_drr(&mut network, &graph);
        let pure = local_drr_forest(&graph, &outcome.ranks);
        assert_eq!(outcome.forest, pure);
    }

    #[test]
    fn singleton_graph_is_a_root() {
        let graph = Graph::from_edges(1, &[]);
        let mut network = net(1, 0);
        let outcome = run_local_drr(&mut network, &graph);
        assert_eq!(outcome.forest.num_trees(), 1);
    }

    #[test]
    fn works_with_message_loss() {
        let graph = d_regular(500, 6, 19);
        let mut network = Network::new(SimConfig::new(500).with_seed(19).with_loss_prob(0.1));
        let outcome = run_local_drr(&mut network, &graph);
        // Forest is still valid and covers all nodes.
        let total: usize = outcome.forest.tree_sizes().map(|(_, s)| s).sum();
        assert_eq!(total, 500);
        // Tree edges are still graph edges.
        for v in graph.nodes() {
            if let Some(p) = outcome.forest.parent(v) {
                assert!(graph.has_edge(v, p));
            }
        }
    }
}
