//! Data-spread (Algorithm 5): one root spreads a value to all roots.
//!
//! A root that wants to disseminate a value (in DRR-gossip-ave, the
//! largest-tree root spreading its average estimate) sets its initial value
//! to that value while every other root starts at `−∞`, and then the roots
//! simply run Gossip-max. After the gossip + sampling procedures every root
//! holds the spread value whp, at the same `O(log n)` rounds / `O(n)`
//! messages cost as Gossip-max.

use crate::forest::Forest;
use crate::gossip_max::{gossip_max, GossipMaxConfig, GossipMaxOutcome};
use gossip_net::{NodeId, Transport};

/// Spread `value` from `source` (which must be an alive root) to all roots.
pub fn data_spread<T: Transport>(
    net: &mut T,
    forest: &Forest,
    source: NodeId,
    value: f64,
    config: &GossipMaxConfig,
) -> GossipMaxOutcome {
    assert!(forest.is_root(source), "data-spread source must be a root");
    assert!(
        value.is_finite(),
        "data-spread requires a finite value (|x_ru| < ∞)"
    );
    let n = net.n();
    let initial: Vec<Option<f64>> = (0..n)
        .map(|i| {
            let v = NodeId::new(i);
            if v == source {
                Some(value)
            } else if forest.is_root(v) {
                Some(f64::NEG_INFINITY)
            } else {
                None
            }
        })
        .collect();
    gossip_max(net, forest, &initial, config)
}

/// Spread from several sources holding the same value (used when the
/// largest-tree election produces ties).
pub fn data_spread_multi<T: Transport>(
    net: &mut T,
    forest: &Forest,
    sources: &[NodeId],
    value: f64,
    config: &GossipMaxConfig,
) -> GossipMaxOutcome {
    assert!(!sources.is_empty(), "need at least one spreading root");
    let n = net.n();
    let initial: Vec<Option<f64>> = (0..n)
        .map(|i| {
            let v = NodeId::new(i);
            if sources.contains(&v) {
                Some(value)
            } else if forest.is_root(v) {
                Some(f64::NEG_INFINITY)
            } else {
                None
            }
        })
        .collect();
    gossip_max(net, forest, &initial, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drr::{run_drr, DrrConfig};
    use gossip_net::{Network, SimConfig};

    fn setup(n: usize, seed: u64, loss: f64) -> (Forest, Network) {
        let mut net = Network::new(SimConfig::new(n).with_seed(seed).with_loss_prob(loss));
        let drr = run_drr(&mut net, &DrrConfig::paper());
        net.reset_metrics();
        (drr.forest, net)
    }

    #[test]
    fn spreads_value_to_all_roots() {
        let (forest, mut net) = setup(3000, 3, 0.0);
        let source = forest.largest_tree_root();
        let out = data_spread(
            &mut net,
            &forest,
            source,
            123.456,
            &GossipMaxConfig::default(),
        );
        assert_eq!(out.true_max, 123.456);
        assert_eq!(out.fraction_after_sampling, 1.0);
        for &r in forest.roots() {
            assert_eq!(out.value_at(r), Some(123.456));
        }
    }

    #[test]
    fn spreads_under_loss() {
        let (forest, mut net) = setup(3000, 5, 0.1);
        let source = forest.largest_tree_root();
        let out = data_spread(&mut net, &forest, source, -7.5, &GossipMaxConfig::default());
        assert!(
            out.fraction_after_sampling > 0.995,
            "fraction = {}",
            out.fraction_after_sampling
        );
    }

    #[test]
    fn negative_values_spread_correctly() {
        // The −∞ sentinel must not be confused with very negative payloads.
        let (forest, mut net) = setup(1000, 7, 0.0);
        let source = forest.roots()[0];
        let out = data_spread(
            &mut net,
            &forest,
            source,
            -1e12,
            &GossipMaxConfig::default(),
        );
        assert_eq!(out.fraction_after_sampling, 1.0);
        assert_eq!(out.true_max, -1e12);
    }

    #[test]
    fn multi_source_spread_works() {
        let (forest, mut net) = setup(1500, 9, 0.0);
        let sources: Vec<NodeId> = forest.roots().iter().copied().take(3).collect();
        let out = data_spread_multi(
            &mut net,
            &forest,
            &sources,
            42.0,
            &GossipMaxConfig::default(),
        );
        assert_eq!(out.fraction_after_sampling, 1.0);
    }

    #[test]
    #[should_panic(expected = "must be a root")]
    fn non_root_source_rejected() {
        let (forest, mut net) = setup(500, 11, 0.0);
        let non_root = (0..500)
            .map(NodeId::new)
            .find(|&v| !forest.is_root(v))
            .unwrap();
        let _ = data_spread(
            &mut net,
            &forest,
            non_root,
            1.0,
            &GossipMaxConfig::default(),
        );
    }

    #[test]
    #[should_panic(expected = "finite value")]
    fn infinite_value_rejected() {
        let (forest, mut net) = setup(100, 13, 0.0);
        let source = forest.roots()[0];
        let _ = data_spread(
            &mut net,
            &forest,
            source,
            f64::INFINITY,
            &GossipMaxConfig::default(),
        );
    }
}
