//! Phase II (upward half): Convergecast (Algorithms 2 and 3).
//!
//! Each tree aggregates the values of its members bottom-up: leaves send
//! their values to their parents; an intermediate node combines everything
//! received from its children with its own value and forwards the combined
//! state to its parent; the root ends up holding the tree's local aggregate.
//!
//! Under the phone-call model of Sections 2–3 a node can communicate with at
//! most one node per round, so the running time of convergecast is bounded
//! by the **size** of the tree (not just its height) — this is exactly why
//! Theorem 3's `O(log n)` tree-size bound matters. Under the message-passing
//! model of Section 4 a node may receive from all neighbours simultaneously
//! and the running time is bounded by the tree **height** (Theorem 11).
//! [`ReceptionModel`] selects between the two.

use crate::forest::Forest;
use gossip_aggregate::{Aggregate, Average, AverageState, Max, Sum};
use gossip_net::{NodeId, Phase, Transport};
use serde::{Deserialize, Serialize};

/// How many children a parent can hear from in a single round.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReceptionModel {
    /// The phone-call model of Sections 2–3: one child per parent per round.
    #[default]
    OneCallPerRound,
    /// The message-passing model of Section 4: all children in one round.
    AllNeighborsPerRound,
}

/// Outcome of a convergecast.
#[derive(Clone, Debug)]
pub struct ConvergecastOutcome<S> {
    /// Aggregated state per node; meaningful at roots (the "local aggregate
    /// at the root" of the paper), `None` at crashed nodes.
    pub state: Vec<Option<S>>,
    /// Rounds consumed.
    pub rounds: u64,
    /// Messages sent.
    pub messages: u64,
}

impl<S: Clone> ConvergecastOutcome<S> {
    /// The local aggregate state held at `root`.
    pub fn at_root(&self, root: NodeId) -> Option<S> {
        self.state[root.index()].clone()
    }
}

/// Run a convergecast of the aggregate `agg` over `values` on `forest`.
///
/// Lost messages are retransmitted in later rounds until they get through,
/// matching the paper's "repeated calls" handling of lossy links. The
/// safeguard cap of `16·n + 64` rounds only exists to terminate adversarial
/// configurations (e.g. extreme loss rates) in tests.
pub fn convergecast<T: Transport, A: Aggregate>(
    net: &mut T,
    forest: &Forest,
    agg: &A,
    values: &[f64],
    reception: ReceptionModel,
) -> ConvergecastOutcome<A::State> {
    let n = net.n();
    assert_eq!(values.len(), n, "one value per node required");
    assert_eq!(forest.n(), n, "forest must cover the network");
    let rounds_before = net.round();
    let messages_before = net.metrics().total_messages();
    let payload_bits = net.config().value_bits() + net.config().id_bits();

    // Per-node aggregation state. Crashed nodes contribute nothing.
    let mut state: Vec<Option<A::State>> = (0..n)
        .map(|i| {
            let v = NodeId::new(i);
            if net.is_alive(v) {
                Some(agg.lift(values[i]))
            } else {
                None
            }
        })
        .collect();

    // has_sent[i]: node i delivered its state to its parent.
    let mut has_sent = vec![false; n];

    // Liveness is re-read every round (on churny backends nodes crash and
    // rejoin mid-phase): a parent waits only for children that are still
    // alive and undelivered, and the phase ends when no alive non-root is
    // left to deliver — or when it stops making progress altogether (every
    // remaining sender sits under a crashed ancestor).
    let round_cap = 16 * (n as u64) + 64;
    let stall_cap = 64u32;
    let mut stalled_rounds = 0u32;
    let mut rounds_used = 0u64;
    while rounds_used < round_cap && stalled_rounds < stall_cap {
        let remaining = (0..n)
            .filter(|&i| {
                let v = NodeId::new(i);
                net.is_alive(v) && !forest.is_root(v) && !has_sent[i]
            })
            .count();
        if remaining == 0 {
            break;
        }
        // Snapshot the set of nodes ready to transmit at the *start* of the
        // round, so a node that only becomes ready because of a message it
        // receives this round waits until the next round (a node talks to at
        // most one partner per round). Ready means: every child has either
        // delivered or crashed.
        let ready: Vec<usize> = (0..n)
            .filter(|&i| {
                let me = NodeId::new(i);
                !has_sent[i]
                    && net.is_alive(me)
                    && !forest.is_root(me)
                    && forest
                        .children(me)
                        .iter()
                        .all(|&c| has_sent[c.index()] || !net.is_alive(c))
            })
            .collect();
        let mut parent_served: Vec<bool> = match reception {
            ReceptionModel::OneCallPerRound => vec![false; n],
            ReceptionModel::AllNeighborsPerRound => Vec::new(),
        };
        let mut progressed = false;
        for i in ready {
            let me = NodeId::new(i);
            let parent = forest.parent(me).expect("non-root has a parent");
            if let ReceptionModel::OneCallPerRound = reception {
                if parent_served[parent.index()] {
                    continue; // parent already took its one call this round
                }
                parent_served[parent.index()] = true;
            }
            let delivered = net.send(me, parent, Phase::Convergecast, payload_bits);
            if delivered {
                // A node that rejoined mid-phase starts from its own value.
                let child_state = state[i].clone().unwrap_or_else(|| agg.lift(values[i]));
                let merged = match &state[parent.index()] {
                    Some(parent_state) => agg.combine(parent_state, &child_state),
                    None => child_state,
                };
                state[parent.index()] = Some(merged);
                has_sent[i] = true;
                progressed = true;
            }
        }
        net.advance_round();
        rounds_used += 1;
        if progressed {
            stalled_rounds = 0;
        } else {
            stalled_rounds += 1;
        }
    }

    ConvergecastOutcome {
        state,
        rounds: net.round() - rounds_before,
        messages: net.metrics().total_messages() - messages_before,
    }
}

/// Algorithm 2: Convergecast-max. Returns the local maximum of each tree at
/// its root.
pub fn convergecast_max<T: Transport>(
    net: &mut T,
    forest: &Forest,
    values: &[f64],
    reception: ReceptionModel,
) -> ConvergecastOutcome<f64> {
    convergecast(net, forest, &Max, values, reception)
}

/// Algorithm 3: Convergecast-sum. Returns, at each root, the local sum of
/// the tree's values together with the tree size (the `(v_z, w_z)` row
/// vector of the paper).
pub fn convergecast_sum<T: Transport>(
    net: &mut T,
    forest: &Forest,
    values: &[f64],
    reception: ReceptionModel,
) -> ConvergecastOutcome<AverageState> {
    convergecast(net, forest, &Average, values, reception)
}

/// Convenience: plain sum (without the size count).
pub fn convergecast_plain_sum<T: Transport>(
    net: &mut T,
    forest: &Forest,
    values: &[f64],
    reception: ReceptionModel,
) -> ConvergecastOutcome<f64> {
    convergecast(net, forest, &Sum, values, reception)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drr::{run_drr, DrrConfig};
    use gossip_net::{Network, SimConfig};

    fn forest_and_net(n: usize, seed: u64, loss: f64) -> (Forest, Network) {
        let mut net = Network::new(SimConfig::new(n).with_seed(seed).with_loss_prob(loss));
        let outcome = run_drr(&mut net, &DrrConfig::paper());
        net.reset_metrics();
        (outcome.forest, net)
    }

    #[test]
    fn max_convergecast_gives_exact_tree_maxima() {
        let (forest, mut net) = forest_and_net(1000, 3, 0.0);
        let values: Vec<f64> = (0..1000).map(|i| (i as f64 * 7.3) % 911.0).collect();
        let out = convergecast_max(&mut net, &forest, &values, ReceptionModel::OneCallPerRound);
        for &root in forest.roots() {
            let members = forest.members_of(root);
            let expected = members
                .iter()
                .map(|v| values[v.index()])
                .fold(f64::NEG_INFINITY, f64::max);
            assert_eq!(out.at_root(root), Some(expected));
        }
    }

    #[test]
    fn sum_convergecast_gives_exact_tree_sums_and_sizes() {
        let (forest, mut net) = forest_and_net(800, 5, 0.0);
        let values: Vec<f64> = (0..800).map(|i| i as f64).collect();
        let out = convergecast_sum(&mut net, &forest, &values, ReceptionModel::OneCallPerRound);
        for &root in forest.roots() {
            let members = forest.members_of(root);
            let expected_sum: f64 = members.iter().map(|v| values[v.index()]).sum();
            let state = out.at_root(root).unwrap();
            assert!((state.sum - expected_sum).abs() < 1e-9);
            assert_eq!(state.count as usize, forest.tree_size(root));
        }
    }

    #[test]
    fn message_count_is_one_per_non_root_node_without_loss() {
        let (forest, mut net) = forest_and_net(600, 7, 0.0);
        let values = vec![1.0; 600];
        let out = convergecast_max(&mut net, &forest, &values, ReceptionModel::OneCallPerRound);
        let non_roots = 600 - forest.num_trees() as u64;
        assert_eq!(out.messages, non_roots);
    }

    #[test]
    fn one_call_model_rounds_bounded_by_max_tree_size() {
        let (forest, mut net) = forest_and_net(2000, 9, 0.0);
        let values = vec![1.0; 2000];
        let out = convergecast_max(&mut net, &forest, &values, ReceptionModel::OneCallPerRound);
        // Sequentialising at most one child per parent per round finishes
        // within ~max tree size rounds.
        assert!(out.rounds <= forest.max_tree_size() as u64 + 2);
    }

    #[test]
    fn all_neighbors_model_rounds_bounded_by_height() {
        let (forest, mut net) = forest_and_net(2000, 11, 0.0);
        let values = vec![1.0; 2000];
        let out = convergecast_max(
            &mut net,
            &forest,
            &values,
            ReceptionModel::AllNeighborsPerRound,
        );
        assert!(out.rounds <= forest.max_height() as u64 + 2);
    }

    #[test]
    fn lossy_links_still_converge_to_exact_values() {
        let (forest, mut net) = forest_and_net(500, 13, 0.15);
        let values: Vec<f64> = (0..500).map(|i| ((i * 37) % 101) as f64).collect();
        let out = convergecast_sum(&mut net, &forest, &values, ReceptionModel::OneCallPerRound);
        for &root in forest.roots() {
            if !net.is_alive(root) {
                continue;
            }
            let members = forest.members_of(root);
            let expected_sum: f64 = members.iter().map(|v| values[v.index()]).sum();
            let state = out.at_root(root).unwrap();
            assert!((state.sum - expected_sum).abs() < 1e-9);
        }
        // Retransmissions mean more messages than nodes.
        assert!(out.messages >= 500 - forest.num_trees() as u64);
    }

    #[test]
    fn crashed_nodes_are_excluded() {
        let mut net = Network::new(
            SimConfig::new(400)
                .with_seed(21)
                .with_initial_crash_prob(0.25),
        );
        let drr = run_drr(&mut net, &DrrConfig::paper());
        net.reset_metrics();
        let values = vec![5.0; 400];
        let out = convergecast_sum(
            &mut net,
            &drr.forest,
            &values,
            ReceptionModel::OneCallPerRound,
        );
        let mut counted = 0.0;
        for &root in drr.forest.roots() {
            if let Some(state) = out.at_root(root) {
                counted += state.count;
            }
        }
        assert_eq!(counted as usize, net.alive_count());
    }

    #[test]
    fn singleton_network() {
        let mut net = Network::new(SimConfig::new(1).with_seed(0));
        let forest = Forest::from_parents(vec![None]).unwrap();
        let out = convergecast_max(&mut net, &forest, &[3.5], ReceptionModel::OneCallPerRound);
        assert_eq!(out.at_root(NodeId::new(0)), Some(3.5));
        assert_eq!(out.messages, 0);
    }

    #[test]
    fn message_sizes_within_budget() {
        let (forest, mut net) = forest_and_net(1024, 15, 0.0);
        let values = vec![1.0; 1024];
        let _ = convergecast_sum(&mut net, &forest, &values, ReceptionModel::OneCallPerRound);
        assert!(net.metrics().max_message_bits() <= net.config().message_bit_budget());
    }
}
