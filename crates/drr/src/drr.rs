//! Phase I: Distributed Random Ranking (Algorithm 1).
//!
//! Every node chooses a uniform random rank and then samples up to
//! `log n − 1` random nodes, one per round, until it finds a node of strictly
//! higher rank, which it connects to (sending it a connection message). A
//! node that never finds a higher-ranked node becomes a **root**. Because
//! every non-root connects to a strictly higher-ranked node, the result is a
//! forest of disjoint trees.
//!
//! Cost (Theorem 4): `O(log n)` rounds and `O(n log log n)` messages whp —
//! the expected number of probes per node is `O(log log n)` because a node
//! stops as soon as it samples someone above itself.

use crate::forest::Forest;
use crate::rank::Ranks;
use gossip_net::{NodeId, Phase, Transport};
use serde::{Deserialize, Serialize};

/// How many random nodes each node may probe before giving up and becoming a
/// root.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub enum ProbeBudget {
    /// The paper's choice: `log₂ n − 1` probes.
    #[default]
    LogNMinusOne,
    /// A fixed number of probes (used by the probe-budget ablation, E13).
    Fixed(u32),
    /// `⌈factor · log₂ n⌉` probes.
    ScaledLogN(f64),
}

impl ProbeBudget {
    /// The concrete number of probes allowed in an `n`-node network.
    pub fn probes(&self, n: usize) -> u32 {
        let log_n = gossip_net::id_bits(n);
        match *self {
            ProbeBudget::LogNMinusOne => log_n.saturating_sub(1).max(1),
            ProbeBudget::Fixed(k) => k.max(1),
            ProbeBudget::ScaledLogN(factor) => ((f64::from(log_n) * factor).ceil() as u32).max(1),
        }
    }
}

/// Configuration of the DRR phase.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct DrrConfig {
    /// Probe budget per node.
    pub probe_budget: ProbeBudget,
    /// Maximum retransmissions of the connection message (lost connection
    /// messages would otherwise silently orphan a child).
    pub connect_retries: u32,
}

impl DrrConfig {
    /// The paper's parameters.
    pub fn paper() -> Self {
        DrrConfig {
            probe_budget: ProbeBudget::LogNMinusOne,
            connect_retries: 8,
        }
    }
}

/// The outcome of the DRR phase.
#[derive(Clone, Debug)]
pub struct DrrOutcome {
    /// The ranking forest.
    pub forest: Forest,
    /// The ranks drawn by the nodes.
    pub ranks: Ranks,
    /// Number of probes issued by each node.
    pub probes_per_node: Vec<u32>,
    /// Rounds consumed by this phase.
    pub rounds: u64,
    /// Messages sent during this phase (probes + replies + connections).
    pub messages: u64,
}

/// Run Algorithm 1 on the network.
///
/// Crashed nodes do not participate: they never probe, are never valid
/// parents (probes addressed to them go unanswered) and end up as singleton
/// roots in the returned forest.
pub fn run_drr<T: Transport>(net: &mut T, config: &DrrConfig) -> DrrOutcome {
    let n = net.n();
    let rounds_before = net.round();
    let messages_before = net.metrics().total_messages();
    let ranks = Ranks::assign(net);
    let budget = config.probe_budget.probes(n);
    let probe_bits = net.config().id_bits();
    // A rank reply carries the rank; drawing from [1, n³] needs 3·log n bits.
    let reply_bits = 3 * net.config().id_bits();
    let connect_bits = net.config().id_bits();
    let connect_retries = config.connect_retries.max(1);

    let mut parent: Vec<Option<NodeId>> = vec![None; n];
    let mut found = vec![false; n];
    let mut probes_per_node = vec![0u32; n];

    // Probe rounds: one probe per still-searching node per round.
    for _round in 0..budget {
        let mut progressed = false;
        for i in 0..n {
            let me = NodeId::new(i);
            if !net.is_alive(me) || found[i] || probes_per_node[i] >= budget {
                continue;
            }
            progressed = true;
            probes_per_node[i] += 1;
            let candidate = net.sample_other_than(me);
            // The probe and, if it arrives, the rank reply.
            let probe_delivered = net.send(me, candidate, Phase::DrrProbe, probe_bits);
            if !probe_delivered {
                continue;
            }
            let reply_delivered = net.send(candidate, me, Phase::DrrReply, reply_bits);
            if !reply_delivered {
                continue;
            }
            if ranks.higher(candidate, me) {
                parent[i] = Some(candidate);
                found[i] = true;
            }
        }
        net.advance_round();
        if !progressed {
            break;
        }
    }

    // Connection round(s): every node that found a parent sends it a
    // connection message carrying its identifier. Lost connection messages
    // are retried; if the parent remains unreachable the node falls back to
    // being a root (keeping the forest consistent on both end points).
    for i in 0..n {
        let me = NodeId::new(i);
        if let Some(p) = parent[i] {
            let (_attempts, ok) =
                net.send_with_retries(me, p, Phase::DrrConnect, connect_bits, connect_retries);
            if !ok {
                parent[i] = None;
                found[i] = false;
            }
        }
    }
    net.advance_round();

    let forest = Forest::from_parents(parent)
        .expect("DRR parents point to strictly higher-ranked nodes, so no cycles are possible");

    DrrOutcome {
        forest,
        ranks,
        probes_per_node,
        rounds: net.round() - rounds_before,
        messages: net.metrics().total_messages() - messages_before,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_net::{Network, SimConfig};

    fn run(n: usize, seed: u64, loss: f64) -> (DrrOutcome, Network) {
        let mut net = Network::new(SimConfig::new(n).with_seed(seed).with_loss_prob(loss));
        let outcome = run_drr(&mut net, &DrrConfig::paper());
        (outcome, net)
    }

    #[test]
    fn probe_budget_values() {
        assert_eq!(ProbeBudget::LogNMinusOne.probes(1024), 9);
        assert_eq!(ProbeBudget::LogNMinusOne.probes(2), 1);
        assert_eq!(ProbeBudget::Fixed(5).probes(1024), 5);
        assert_eq!(ProbeBudget::Fixed(0).probes(1024), 1);
        assert_eq!(ProbeBudget::ScaledLogN(2.0).probes(1024), 20);
        assert_eq!(ProbeBudget::ScaledLogN(0.5).probes(1024), 5);
    }

    #[test]
    fn forest_covers_all_nodes_and_parents_have_higher_rank() {
        let (outcome, _net) = run(2000, 11, 0.0);
        let forest = &outcome.forest;
        assert_eq!(forest.n(), 2000);
        let total: usize = forest.tree_sizes().map(|(_, s)| s).sum();
        assert_eq!(total, 2000);
        for i in 0..2000 {
            let v = NodeId::new(i);
            if let Some(p) = forest.parent(v) {
                assert!(outcome.ranks.higher(p, v), "parent must outrank child");
            }
        }
    }

    #[test]
    fn highest_ranked_node_is_always_a_root() {
        for seed in 0..5 {
            let (outcome, _net) = run(500, seed, 0.0);
            let top = outcome.ranks.highest();
            assert!(outcome.forest.is_root(top));
        }
    }

    #[test]
    fn rounds_are_at_most_log_n_plus_one() {
        let n = 1 << 12;
        let (outcome, _net) = run(n, 3, 0.0);
        let budget = ProbeBudget::LogNMinusOne.probes(n) as u64;
        assert!(outcome.rounds <= budget + 1, "rounds = {}", outcome.rounds);
    }

    #[test]
    fn number_of_trees_is_well_below_n(/* Theorem 2 sanity */) {
        let n = 1 << 13;
        let (outcome, _net) = run(n, 5, 0.0);
        let trees = outcome.forest.num_trees();
        // Θ(n / log n) with a small constant; allow a generous band.
        let log_n = (n as f64).log2();
        assert!(
            (trees as f64) < 4.0 * n as f64 / log_n,
            "too many trees: {trees}"
        );
        assert!(
            (trees as f64) > n as f64 / (4.0 * log_n),
            "too few trees: {trees}"
        );
    }

    #[test]
    fn max_tree_size_is_logarithmic(/* Theorem 3 sanity */) {
        let n = 1 << 13;
        let (outcome, _net) = run(n, 7, 0.0);
        let max_size = outcome.forest.max_tree_size();
        let log_n = (n as f64).log2();
        assert!(
            (max_size as f64) < 12.0 * log_n,
            "largest tree too big: {max_size}"
        );
    }

    #[test]
    fn message_complexity_is_n_log_log_n_scale(/* Theorem 4 sanity */) {
        let n = 1 << 13;
        let (outcome, _net) = run(n, 9, 0.0);
        let msgs = outcome.messages as f64;
        let n_f = n as f64;
        let log_log_n = n_f.log2().log2();
        // probes+replies+connections ≈ 2·n·E[probes] + n; E[probes] = Θ(log log n).
        assert!(msgs < 8.0 * n_f * log_log_n, "messages = {msgs}");
        assert!(msgs > n_f, "messages = {msgs}");
    }

    #[test]
    fn average_probes_per_node_is_small() {
        let n = 1 << 12;
        let (outcome, _net) = run(n, 13, 0.0);
        let avg = outcome
            .probes_per_node
            .iter()
            .map(|&p| p as f64)
            .sum::<f64>()
            / n as f64;
        let log_log_n = (n as f64).log2().log2();
        assert!(avg < 3.0 * log_log_n, "average probes = {avg}");
        assert!(avg >= 1.0);
    }

    #[test]
    fn works_under_message_loss() {
        let (outcome, _net) = run(1000, 17, 0.1);
        // Forest still valid, still covers all nodes.
        assert_eq!(outcome.forest.n(), 1000);
        let total: usize = outcome.forest.tree_sizes().map(|(_, s)| s).sum();
        assert_eq!(total, 1000);
    }

    #[test]
    fn crashed_nodes_become_singleton_roots() {
        let mut net = Network::new(
            SimConfig::new(800)
                .with_seed(23)
                .with_initial_crash_prob(0.3),
        );
        let outcome = run_drr(&mut net, &DrrConfig::paper());
        for v in net.nodes() {
            if !net.is_alive(v) {
                assert!(outcome.forest.is_root(v));
                assert_eq!(outcome.forest.tree_size(v), 1);
            }
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let (a, _) = run(300, 99, 0.05);
        let (b, _) = run(300, 99, 0.05);
        assert_eq!(a.forest, b.forest);
        assert_eq!(a.probes_per_node, b.probes_per_node);
    }

    #[test]
    fn messages_respect_size_budget() {
        let mut net = Network::new(SimConfig::new(4096).with_seed(1));
        let _ = run_drr(&mut net, &DrrConfig::paper());
        assert!(net.metrics().max_message_bits() <= net.config().message_bit_budget());
    }

    #[test]
    fn smaller_probe_budget_gives_more_trees() {
        let run_with = |budget| {
            let mut net = Network::new(SimConfig::new(4096).with_seed(31));
            let cfg = DrrConfig {
                probe_budget: budget,
                connect_retries: 4,
            };
            run_drr(&mut net, &cfg).forest.num_trees()
        };
        let few_probes = run_with(ProbeBudget::Fixed(1));
        let many_probes = run_with(ProbeBudget::ScaledLogN(2.0));
        assert!(few_probes > many_probes);
    }
}
