//! DRR-gossip on sparse networks (Section 4, Theorem 14).
//!
//! On an arbitrary connected graph the complete-graph phone-call model does
//! not apply; instead (Assumption 1) a node may talk to all of its immediate
//! neighbours in one round, and (Assumption 2) a routing protocol lets any
//! node reach a uniformly random node in `T` rounds and `M` messages — the
//! [`RandomNodeSampler`] abstraction of `gossip-topology`.
//!
//! The sparse DRR-gossip protocol is then:
//!
//! 1. **Local-DRR** — `O(1)` rounds, `O(|E|)` messages;
//! 2. **Convergecast & broadcast** along tree edges — `O(log n)` rounds whp
//!    (tree heights are `O(log n)` by Theorem 11), `O(n)` messages;
//! 3. **Root gossip** — every gossip exchange between roots costs one routed
//!    sample (`T` rounds, `≤ M` messages) plus a climb up the receiver's
//!    tree, giving `O(log n + T·log(n/d))` rounds and
//!    `O(|E| + (n/d)·M·log(n/d))` messages on a `d`-regular graph.
//!
//! On Chord (`d = Θ(log n)`, `T = M = Θ(log n)`) this is `O(log² n)` time and
//! `O(n log n)` messages, versus `O(log² n)` time and `O(n log² n)` messages
//! for routed uniform gossip.

use crate::broadcast::broadcast_down;
use crate::convergecast::{convergecast_max, convergecast_sum, ReceptionModel};
use crate::forest::Forest;
use crate::local_drr::run_local_drr;
use crate::protocol::{DrrGossipReport, PhaseCost};
use gossip_aggregate::AverageState;
use gossip_net::{Network, NodeId, Phase};
use gossip_topology::{Graph, RandomNodeSampler};
use serde::{Deserialize, Serialize};

/// Configuration of the sparse-network DRR-gossip protocols.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SparseGossipConfig {
    /// Root-gossip rounds = `⌈gossip_rounds_factor · log₂(#roots)⌉`.
    pub gossip_rounds_factor: f64,
    /// Sampling-procedure rounds = `⌈sampling_rounds_factor · log₂(#roots)⌉`.
    pub sampling_rounds_factor: f64,
}

impl Default for SparseGossipConfig {
    fn default() -> Self {
        SparseGossipConfig {
            gossip_rounds_factor: 2.0,
            sampling_rounds_factor: 1.5,
        }
    }
}

impl SparseGossipConfig {
    fn gossip_rounds(&self, roots: usize) -> u64 {
        ((f64::from(gossip_net::id_bits(roots.max(2))) * self.gossip_rounds_factor).ceil() as u64)
            .max(1)
    }

    fn sampling_rounds(&self, roots: usize) -> u64 {
        ((f64::from(gossip_net::id_bits(roots.max(2))) * self.sampling_rounds_factor).ceil() as u64)
            .max(1)
    }
}

/// Deliver a payload hop-by-hop along `path`, starting at `from`. Every hop
/// costs one message; the delivery fails if any hop is lost. Returns whether
/// the payload reached the end of the path.
fn route_along(net: &mut Network, from: NodeId, path: &[NodeId], phase: Phase, bits: u32) -> bool {
    let mut current = from;
    for &hop in path {
        if !net.send(current, hop, phase, bits) {
            return false;
        }
        current = hop;
    }
    true
}

/// Climb from `node` to its tree root along parent pointers, one message per
/// edge. Returns whether the payload reached the root.
fn climb_to_root(
    net: &mut Network,
    forest: &Forest,
    node: NodeId,
    phase: Phase,
    bits: u32,
) -> bool {
    let mut current = node;
    while let Some(parent) = forest.parent(current) {
        if !net.send(current, parent, phase, bits) {
            return false;
        }
        current = parent;
    }
    true
}

/// Charge the time of one routed gossip super-round: `T` rounds for the
/// routed sample plus up to `max_height` rounds for the climb to the root.
fn charge_super_round(net: &mut Network, sampler_rounds: usize, max_height: usize) {
    for _ in 0..(sampler_rounds + max_height).max(1) {
        net.advance_round();
    }
}

/// Gossip-max among the roots of a Local-DRR forest, using `sampler` to
/// reach random nodes. Returns per-node values (at roots) and the fraction
/// of roots holding the true maximum at the end.
pub fn sparse_gossip_max(
    net: &mut Network,
    forest: &Forest,
    sampler: &dyn RandomNodeSampler,
    initial: &[Option<f64>],
    config: &SparseGossipConfig,
) -> Vec<Option<f64>> {
    let n = net.n();
    let value_bits = net.config().value_bits() + net.config().id_bits();
    let mut values: Vec<Option<f64>> = (0..n)
        .map(|i| {
            let v = NodeId::new(i);
            if forest.is_root(v) && net.is_alive(v) {
                Some(initial[i].unwrap_or(f64::NEG_INFINITY))
            } else {
                None
            }
        })
        .collect();
    let roots = forest.num_trees();
    let max_height = forest.max_height();
    let rounds = config.gossip_rounds(roots) + config.sampling_rounds(roots);

    for _ in 0..rounds {
        let snapshot = values.clone();
        let mut incoming: Vec<(usize, f64)> = Vec::new();
        for &root in forest.roots() {
            if !net.is_alive(root) {
                continue;
            }
            let value = match snapshot[root.index()] {
                Some(v) => v,
                None => continue,
            };
            let mut rng = net.derive_rng(root.index() as u64 ^ net.round() << 20);
            let route = sampler.sample(root, &mut rng);
            if !route_along(net, root, &route.path, Phase::Routing, value_bits) {
                continue;
            }
            let landed = route.target;
            let receiver_root = forest.root_of(landed);
            if landed != receiver_root
                && !climb_to_root(net, forest, landed, Phase::RootForward, value_bits)
            {
                continue;
            }
            if net.is_alive(receiver_root) {
                incoming.push((receiver_root.index(), value));
            }
            // Pull half of the exchange: the receiver root's value travels
            // back along the same route (sampling-procedure style), so the
            // sender also learns the receiver's value.
            if let Some(back_value) = snapshot[receiver_root.index()] {
                let back_cost = (route.path.len() + forest.depth(landed)) as u32;
                if back_cost == 0 || net.send(receiver_root, root, Phase::RootSampling, value_bits)
                {
                    incoming.push((root.index(), back_value));
                }
            }
        }
        for (idx, value) in incoming {
            if let Some(current) = values[idx] {
                values[idx] = Some(current.max(value));
            }
        }
        charge_super_round(net, sampler.rounds_per_sample(), max_height);
    }
    values
}

/// Push-sum among the roots of a Local-DRR forest using routed samples.
pub fn sparse_gossip_ave(
    net: &mut Network,
    forest: &Forest,
    sampler: &dyn RandomNodeSampler,
    initial: &[Option<AverageState>],
    config: &SparseGossipConfig,
) -> Vec<Option<f64>> {
    let n = net.n();
    let payload_bits = 2 * net.config().value_bits() + net.config().id_bits();
    let mut sum = vec![0.0; n];
    let mut weight = vec![0.0; n];
    let mut active = vec![false; n];
    for &root in forest.roots() {
        if !net.is_alive(root) {
            continue;
        }
        let st = initial[root.index()].unwrap_or(AverageState {
            sum: 0.0,
            count: 0.0,
        });
        sum[root.index()] = st.sum;
        weight[root.index()] = st.count;
        active[root.index()] = true;
    }
    let roots = forest.num_trees();
    let max_height = forest.max_height();
    let rounds = config.gossip_rounds(roots) + config.sampling_rounds(roots);

    for _ in 0..rounds {
        let mut incoming_sum = vec![0.0; n];
        let mut incoming_weight = vec![0.0; n];
        for &root in forest.roots() {
            let i = root.index();
            if !active[i] {
                continue;
            }
            let half_sum = sum[i] / 2.0;
            let half_weight = weight[i] / 2.0;
            sum[i] = half_sum;
            weight[i] = half_weight;
            let mut rng = net.derive_rng(i as u64 ^ net.round() << 21);
            let route = sampler.sample(root, &mut rng);
            if !route_along(net, root, &route.path, Phase::Routing, payload_bits) {
                continue;
            }
            let landed = route.target;
            let receiver_root = forest.root_of(landed);
            if landed != receiver_root
                && !climb_to_root(net, forest, landed, Phase::RootForward, payload_bits)
            {
                continue;
            }
            if active[receiver_root.index()] {
                incoming_sum[receiver_root.index()] += half_sum;
                incoming_weight[receiver_root.index()] += half_weight;
            }
        }
        for i in 0..n {
            sum[i] += incoming_sum[i];
            weight[i] += incoming_weight[i];
        }
        charge_super_round(net, sampler.rounds_per_sample(), max_height);
    }

    (0..n)
        .map(|i| {
            if active[i] {
                Some(if weight[i] > 0.0 {
                    sum[i] / weight[i]
                } else {
                    0.0
                })
            } else {
                None
            }
        })
        .collect()
}

#[allow(clippy::too_many_arguments)] // internal plumbing shared by the two sparse composites
fn finish_report(
    net: &Network,
    forest: &Forest,
    values: &[f64],
    estimates: Vec<f64>,
    exact: f64,
    phases: Vec<PhaseCost>,
    start_rounds: u64,
    start_messages: u64,
) -> DrrGossipReport {
    let _ = values;
    let alive: Vec<bool> = net.nodes().map(|v| net.is_alive(v)).collect();
    DrrGossipReport {
        statuses: crate::protocol::statuses_of(&estimates, &alive),
        estimates,
        exact,
        alive,
        forest_stats: forest.stats(),
        phases,
        total_rounds: net.round() - start_rounds,
        total_messages: net.metrics().total_messages() - start_messages,
        metrics: net.metrics().clone(),
    }
}

/// Sparse-network DRR-gossip-max (Theorem 14 instantiated for Max).
pub fn sparse_drr_gossip_max(
    net: &mut Network,
    graph: &Graph,
    sampler: &dyn RandomNodeSampler,
    values: &[f64],
    config: &SparseGossipConfig,
) -> DrrGossipReport {
    assert_eq!(values.len(), net.n());
    let start_rounds = net.round();
    let start_messages = net.metrics().total_messages();
    let mut phases = Vec::new();
    let mut mark = (net.round(), net.metrics().total_messages());
    let record =
        |net: &Network, name: &'static str, mark: &mut (u64, u64), phases: &mut Vec<PhaseCost>| {
            phases.push(PhaseCost {
                name,
                rounds: net.round() - mark.0,
                messages: net.metrics().total_messages() - mark.1,
            });
            *mark = (net.round(), net.metrics().total_messages());
        };

    let local = run_local_drr(net, graph);
    record(net, "local-drr", &mut mark, &mut phases);

    let cc = convergecast_max(
        net,
        &local.forest,
        values,
        ReceptionModel::AllNeighborsPerRound,
    );
    record(net, "convergecast", &mut mark, &mut phases);
    let _ = broadcast_down(
        net,
        &local.forest,
        ReceptionModel::AllNeighborsPerRound,
        Phase::Broadcast,
        net.config().id_bits(),
    );
    record(net, "broadcast-root", &mut mark, &mut phases);

    let gossip_values = sparse_gossip_max(net, &local.forest, sampler, &cc.state, config);
    record(net, "root-gossip", &mut mark, &mut phases);

    let _ = broadcast_down(
        net,
        &local.forest,
        ReceptionModel::AllNeighborsPerRound,
        Phase::Dissemination,
        net.config().id_bits() + net.config().value_bits(),
    );
    record(net, "disseminate", &mut mark, &mut phases);

    let exact = net
        .alive_nodes()
        .map(|v| values[v.index()])
        .fold(f64::NEG_INFINITY, f64::max);
    let estimates: Vec<f64> = net
        .nodes()
        .map(|v| {
            if net.is_alive(v) {
                gossip_values[local.forest.root_of(v).index()].unwrap_or(f64::NAN)
            } else {
                f64::NAN
            }
        })
        .collect();
    finish_report(
        net,
        &local.forest,
        values,
        estimates,
        exact,
        phases,
        start_rounds,
        start_messages,
    )
}

/// Sparse-network DRR-gossip-ave (Theorem 14 instantiated for Average).
pub fn sparse_drr_gossip_ave(
    net: &mut Network,
    graph: &Graph,
    sampler: &dyn RandomNodeSampler,
    values: &[f64],
    config: &SparseGossipConfig,
) -> DrrGossipReport {
    assert_eq!(values.len(), net.n());
    let start_rounds = net.round();
    let start_messages = net.metrics().total_messages();
    let mut phases = Vec::new();
    let mut mark = (net.round(), net.metrics().total_messages());
    let record =
        |net: &Network, name: &'static str, mark: &mut (u64, u64), phases: &mut Vec<PhaseCost>| {
            phases.push(PhaseCost {
                name,
                rounds: net.round() - mark.0,
                messages: net.metrics().total_messages() - mark.1,
            });
            *mark = (net.round(), net.metrics().total_messages());
        };

    let local = run_local_drr(net, graph);
    record(net, "local-drr", &mut mark, &mut phases);

    let cc = convergecast_sum(
        net,
        &local.forest,
        values,
        ReceptionModel::AllNeighborsPerRound,
    );
    record(net, "convergecast", &mut mark, &mut phases);
    let _ = broadcast_down(
        net,
        &local.forest,
        ReceptionModel::AllNeighborsPerRound,
        Phase::Broadcast,
        net.config().id_bits(),
    );
    record(net, "broadcast-root", &mut mark, &mut phases);

    let ave_estimates = sparse_gossip_ave(net, &local.forest, sampler, &cc.state, config);
    record(net, "root-gossip-ave", &mut mark, &mut phases);

    // The largest-tree root spreads its estimate to all roots (Data-spread),
    // again over routed samples.
    let largest = local.forest.largest_tree_root();
    let spread_value = ave_estimates[largest.index()].unwrap_or(0.0);
    let spread_initial: Vec<Option<f64>> = net
        .nodes()
        .map(|v| {
            if v == largest {
                Some(spread_value)
            } else if local.forest.is_root(v) {
                Some(f64::NEG_INFINITY)
            } else {
                None
            }
        })
        .collect();
    let spread = sparse_gossip_max(net, &local.forest, sampler, &spread_initial, config);
    record(net, "data-spread", &mut mark, &mut phases);

    let _ = broadcast_down(
        net,
        &local.forest,
        ReceptionModel::AllNeighborsPerRound,
        Phase::Dissemination,
        net.config().id_bits() + net.config().value_bits(),
    );
    record(net, "disseminate", &mut mark, &mut phases);

    let alive_values: Vec<f64> = net.alive_nodes().map(|v| values[v.index()]).collect();
    let exact = if alive_values.is_empty() {
        0.0
    } else {
        alive_values.iter().sum::<f64>() / alive_values.len() as f64
    };
    let estimates: Vec<f64> = net
        .nodes()
        .map(|v| {
            if net.is_alive(v) {
                let root = local.forest.root_of(v).index();
                match spread[root] {
                    Some(x) if x.is_finite() => x,
                    _ => ave_estimates[root].unwrap_or(f64::NAN),
                }
            } else {
                f64::NAN
            }
        })
        .collect();
    finish_report(
        net,
        &local.forest,
        values,
        estimates,
        exact,
        phases,
        start_rounds,
        start_messages,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_net::SimConfig;
    use gossip_topology::{ChordOverlay, ChordSampler, DirectSampler, RandomWalkSampler};

    fn values(n: usize) -> Vec<f64> {
        (0..n).map(|i| ((i * 53) % 601) as f64).collect()
    }

    #[test]
    fn chord_max_is_correct_everywhere() {
        let n = 2048;
        let overlay = ChordOverlay::new(n);
        let graph = overlay.graph();
        let sampler = ChordSampler::new(&overlay);
        let mut net = Network::new(SimConfig::new(n).with_seed(3));
        let vals = values(n);
        let report = sparse_drr_gossip_max(
            &mut net,
            &graph,
            &sampler,
            &vals,
            &SparseGossipConfig::default(),
        );
        assert!(
            report.fraction_exact() > 0.999,
            "fraction exact = {}",
            report.fraction_exact()
        );
    }

    #[test]
    fn chord_ave_is_accurate() {
        let n = 2048;
        let overlay = ChordOverlay::new(n);
        let graph = overlay.graph();
        let sampler = ChordSampler::new(&overlay);
        let mut net = Network::new(SimConfig::new(n).with_seed(5));
        let vals = values(n);
        let report = sparse_drr_gossip_ave(
            &mut net,
            &graph,
            &sampler,
            &vals,
            &SparseGossipConfig::default(),
        );
        assert!(
            report.max_relative_error() < 0.05,
            "max relative error = {}",
            report.max_relative_error()
        );
    }

    #[test]
    fn chord_cost_matches_theorem_14_scale() {
        // O(n log n) messages and O(log^2 n) rounds on Chord.
        let n = 1 << 12;
        let overlay = ChordOverlay::new(n);
        let graph = overlay.graph();
        let sampler = ChordSampler::new(&overlay);
        let mut net = Network::new(SimConfig::new(n).with_seed(7));
        let vals = values(n);
        let report = sparse_drr_gossip_max(
            &mut net,
            &graph,
            &sampler,
            &vals,
            &SparseGossipConfig::default(),
        );
        let n_f = n as f64;
        let log_n = n_f.log2();
        assert!(
            (report.total_messages as f64) < 30.0 * n_f * log_n,
            "messages = {}",
            report.total_messages
        );
        assert!(
            (report.total_rounds as f64) < 60.0 * log_n * log_n,
            "rounds = {}",
            report.total_rounds
        );
    }

    #[test]
    fn works_on_d_regular_graph_with_random_walk_sampler() {
        let n = 1024;
        let graph = gossip_topology::d_regular(n, 8, 9);
        let walk = 2 * gossip_net::id_bits(n) as usize;
        let sampler = RandomWalkSampler::new(&graph, walk);
        let mut net = Network::new(SimConfig::new(n).with_seed(9));
        let vals = values(n);
        let report = sparse_drr_gossip_max(
            &mut net,
            &graph,
            &sampler,
            &vals,
            &SparseGossipConfig::default(),
        );
        assert!(
            report.fraction_exact() > 0.95,
            "fraction exact = {}",
            report.fraction_exact()
        );
    }

    #[test]
    fn complete_graph_with_direct_sampler_degenerates_to_dense_case() {
        let n = 256;
        let graph = gossip_topology::complete(n);
        let sampler = DirectSampler::new(n);
        let mut net = Network::new(SimConfig::new(n).with_seed(11));
        let vals = values(n);
        let report = sparse_drr_gossip_ave(
            &mut net,
            &graph,
            &sampler,
            &vals,
            &SparseGossipConfig::default(),
        );
        assert!(report.max_relative_error() < 0.05);
        // Local-DRR on a complete graph yields a single tree.
        assert_eq!(report.forest_stats.num_trees, 1);
    }

    #[test]
    fn survives_message_loss_on_chord() {
        let n = 1024;
        let overlay = ChordOverlay::new(n);
        let graph = overlay.graph();
        let sampler = ChordSampler::new(&overlay);
        let mut net = Network::new(SimConfig::new(n).with_seed(13).with_loss_prob(0.05));
        let vals = values(n);
        let report = sparse_drr_gossip_max(
            &mut net,
            &graph,
            &sampler,
            &vals,
            &SparseGossipConfig::default(),
        );
        assert!(
            report.fraction_exact() > 0.9,
            "fraction exact = {}",
            report.fraction_exact()
        );
    }

    #[test]
    fn phase_breakdown_adds_up() {
        let n = 512;
        let overlay = ChordOverlay::new(n);
        let graph = overlay.graph();
        let sampler = ChordSampler::new(&overlay);
        let mut net = Network::new(SimConfig::new(n).with_seed(15));
        let vals = values(n);
        let report = sparse_drr_gossip_ave(
            &mut net,
            &graph,
            &sampler,
            &vals,
            &SparseGossipConfig::default(),
        );
        let phase_msgs: u64 = report.phases.iter().map(|p| p.messages).sum();
        assert_eq!(phase_msgs, report.total_messages);
        assert!(report.phases.iter().any(|p| p.name == "local-drr"));
        assert!(report.phases.iter().any(|p| p.name == "root-gossip-ave"));
    }
}
