//! Phase III: Gossip-ave (Algorithm 6) — push-sum among the tree roots.
//!
//! Every root starts with the pair `(s, g)` produced by Convergecast-sum:
//! the sum of its tree's values and its tree size. In every round each root
//! keeps half of its pair and pushes the other half to a uniformly random
//! node of `V` (forwarded to that node's root when it lands on a non-root).
//! The estimate of the global average at a root is `s/g`.
//!
//! Because roots are selected with probability proportional to their tree
//! size, only the **largest-tree root** is guaranteed (Theorem 7) to reach a
//! relative error of `2/n^{α−1}` within `O(log n)` rounds; DRR-gossip-ave
//! therefore follows Gossip-ave with a Data-spread from that root.

use crate::forest::Forest;
use gossip_aggregate::{relative_error, AverageState};
use gossip_net::{NodeId, Phase, Transport};
use serde::{Deserialize, Serialize};

/// Configuration of Gossip-ave.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct GossipAveConfig {
    /// Round multiplier: rounds = `⌈rounds_factor · (log₂ m + log₂(1/ε))⌉`.
    pub rounds_factor: f64,
    /// Target relative error ε.
    pub epsilon: f64,
}

impl Default for GossipAveConfig {
    fn default() -> Self {
        GossipAveConfig {
            rounds_factor: 1.25,
            epsilon: 1e-4,
        }
    }
}

impl GossipAveConfig {
    /// Number of push-sum rounds for `m` participating roots.
    pub fn rounds(&self, m: usize) -> u64 {
        let log_m = f64::from(gossip_net::id_bits(m.max(2)));
        let log_eps = (1.0 / self.epsilon).log2().max(0.0);
        ((self.rounds_factor * (log_m + log_eps)).ceil() as u64).max(1)
    }
}

/// Outcome of Gossip-ave.
#[derive(Clone, Debug)]
pub struct GossipAveOutcome {
    /// Average estimate `s/g` per node; `Some` at alive roots.
    pub estimates: Vec<Option<f64>>,
    /// The largest-tree root `z` (the node Theorem 7 is about).
    pub largest_root: NodeId,
    /// The estimate at the largest-tree root.
    pub largest_root_estimate: f64,
    /// The true average implied by the initial `(s, g)` mass.
    pub true_average: f64,
    /// Relative error at the largest-tree root after each round.
    pub error_trace: Vec<f64>,
    /// Rounds consumed.
    pub rounds: u64,
    /// Messages sent.
    pub messages: u64,
}

impl GossipAveOutcome {
    /// Final relative error at the largest-tree root.
    pub fn largest_root_error(&self) -> f64 {
        relative_error(self.largest_root_estimate, self.true_average)
    }
}

/// Run Algorithm 6 on the roots of `forest`.
///
/// `initial` holds each root's `(local sum, tree size)` pair from
/// Convergecast-sum (`None` entries and non-root entries are ignored).
pub fn gossip_ave<T: Transport>(
    net: &mut T,
    forest: &Forest,
    initial: &[Option<AverageState>],
    config: &GossipAveConfig,
) -> GossipAveOutcome {
    let n = net.n();
    assert_eq!(forest.n(), n);
    assert_eq!(initial.len(), n);
    let messages_before = net.metrics().total_messages();
    let payload_bits = 2 * net.config().value_bits() + net.config().id_bits();

    // Working (s, g) state at alive roots.
    let mut sum: Vec<f64> = vec![0.0; n];
    let mut weight: Vec<f64> = vec![0.0; n];
    let mut active: Vec<bool> = vec![false; n];
    let mut m = 0usize;
    let mut total_sum = 0.0;
    let mut total_weight = 0.0;
    for &root in forest.roots() {
        if !net.is_alive(root) {
            continue;
        }
        let state = initial[root.index()].unwrap_or(AverageState {
            sum: 0.0,
            count: 0.0,
        });
        sum[root.index()] = state.sum;
        weight[root.index()] = state.count;
        active[root.index()] = true;
        total_sum += state.sum;
        total_weight += state.count;
        m += 1;
    }
    let true_average = if total_weight == 0.0 {
        0.0
    } else {
        total_sum / total_weight
    };
    let largest_root = forest.largest_tree_root();

    let rounds = config.rounds(m);
    let mut error_trace = Vec::with_capacity(rounds as usize);
    for _ in 0..rounds {
        let mut incoming_sum = vec![0.0; n];
        let mut incoming_weight = vec![0.0; n];
        // Every root halves its pair and pushes one half.
        for &root in forest.roots() {
            let i = root.index();
            if !active[i] {
                continue;
            }
            let half_sum = sum[i] / 2.0;
            let half_weight = weight[i] / 2.0;
            sum[i] = half_sum;
            weight[i] = half_weight;
            let target = net.sample_uniform();
            if !net.send(root, target, Phase::RootGossip, payload_bits) {
                continue; // the pushed half is lost in transit
            }
            let receiver_root = if forest.is_root(target) {
                target
            } else {
                let owner = forest.root_of(target);
                if !net.send(target, owner, Phase::RootForward, payload_bits) {
                    continue;
                }
                owner
            };
            if active[receiver_root.index()] {
                incoming_sum[receiver_root.index()] += half_sum;
                incoming_weight[receiver_root.index()] += half_weight;
            }
        }
        for i in 0..n {
            sum[i] += incoming_sum[i];
            weight[i] += incoming_weight[i];
        }
        net.advance_round();
        let z = largest_root.index();
        let estimate = if weight[z] > 0.0 {
            sum[z] / weight[z]
        } else {
            0.0
        };
        error_trace.push(relative_error(estimate, true_average));
    }

    let estimates: Vec<Option<f64>> = (0..n)
        .map(|i| {
            if active[i] {
                Some(if weight[i] > 0.0 {
                    sum[i] / weight[i]
                } else {
                    0.0
                })
            } else {
                None
            }
        })
        .collect();
    let largest_root_estimate = estimates[largest_root.index()].unwrap_or(0.0);

    GossipAveOutcome {
        estimates,
        largest_root,
        largest_root_estimate,
        true_average,
        error_trace,
        rounds,
        messages: net.metrics().total_messages() - messages_before,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convergecast::{convergecast_sum, ReceptionModel};
    use crate::drr::{run_drr, DrrConfig};
    use gossip_net::{Network, SimConfig};

    fn setup(
        n: usize,
        seed: u64,
        loss: f64,
        values: &[f64],
    ) -> (Forest, Network, Vec<Option<AverageState>>) {
        let mut net = Network::new(SimConfig::new(n).with_seed(seed).with_loss_prob(loss));
        let drr = run_drr(&mut net, &DrrConfig::paper());
        let cc = convergecast_sum(
            &mut net,
            &drr.forest,
            values,
            ReceptionModel::OneCallPerRound,
        );
        net.reset_metrics();
        (drr.forest, net, cc.state)
    }

    #[test]
    fn largest_root_estimate_converges_to_true_average(/* Theorem 7 */) {
        let n = 4000;
        let values: Vec<f64> = (0..n).map(|i| (i % 100) as f64).collect();
        let (forest, mut net, initial) = setup(n, 3, 0.0, &values);
        let out = gossip_ave(&mut net, &forest, &initial, &GossipAveConfig::default());
        let exact: f64 = values.iter().sum::<f64>() / n as f64;
        assert!((out.true_average - exact).abs() < 1e-9);
        assert!(
            out.largest_root_error() < 1e-3,
            "error = {}",
            out.largest_root_error()
        );
    }

    #[test]
    fn error_trace_decreases_overall() {
        let n = 2000;
        let values: Vec<f64> = (0..n).map(|i| ((i * 31) % 977) as f64).collect();
        let (forest, mut net, initial) = setup(n, 5, 0.0, &values);
        let out = gossip_ave(&mut net, &forest, &initial, &GossipAveConfig::default());
        let first_quarter = out.error_trace[out.error_trace.len() / 4];
        let last = *out.error_trace.last().unwrap();
        assert!(last <= first_quarter, "error did not decrease: {out:?}");
    }

    #[test]
    fn mixed_sign_values_with_near_zero_average_are_handled() {
        // The case the paper treats with the absolute-error criterion.
        let n = 2000;
        let values: Vec<f64> = (0..n)
            .map(|i| if i % 2 == 0 { 10.0 } else { -10.0 })
            .collect();
        let (forest, mut net, initial) = setup(n, 7, 0.0, &values);
        let out = gossip_ave(&mut net, &forest, &initial, &GossipAveConfig::default());
        assert!(out.largest_root_estimate.abs() < 0.5);
    }

    #[test]
    fn message_complexity_is_linear_in_n() {
        let n = 1 << 13;
        let values: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let (forest, mut net, initial) = setup(n, 9, 0.0, &values);
        let out = gossip_ave(&mut net, &forest, &initial, &GossipAveConfig::default());
        // m = O(n / log n) roots, O(log n) rounds, ≤ 2 messages per push.
        assert!(
            (out.messages as f64) < 24.0 * n as f64,
            "messages = {}",
            out.messages
        );
    }

    #[test]
    fn rounds_match_configuration() {
        let n = 1024;
        let values = vec![1.0; n];
        let (forest, mut net, initial) = setup(n, 11, 0.0, &values);
        let cfg = GossipAveConfig {
            rounds_factor: 1.0,
            epsilon: 0.5,
        };
        let out = gossip_ave(&mut net, &forest, &initial, &cfg);
        assert_eq!(out.rounds, cfg.rounds(forest.num_trees()));
        assert_eq!(out.error_trace.len() as u64, out.rounds);
    }

    #[test]
    fn loss_preserves_approximate_correctness() {
        // Losing a pushed half removes the same fraction of s and g in
        // expectation, so the ratio stays close to the truth.
        let n = 4000;
        let values: Vec<f64> = (0..n).map(|i| 50.0 + (i % 100) as f64).collect();
        let (forest, mut net, initial) = setup(n, 13, 0.1, &values);
        let out = gossip_ave(&mut net, &forest, &initial, &GossipAveConfig::default());
        assert!(
            out.largest_root_error() < 0.05,
            "error = {}",
            out.largest_root_error()
        );
    }

    #[test]
    fn constant_values_give_exact_average() {
        let n = 1000;
        let values = vec![7.0; n];
        let (forest, mut net, initial) = setup(n, 15, 0.0, &values);
        let out = gossip_ave(&mut net, &forest, &initial, &GossipAveConfig::default());
        // Every (s, g) pair has s = 7g, so every estimate is exactly 7.
        assert!((out.largest_root_estimate - 7.0).abs() < 1e-9);
        for est in out.estimates.iter().flatten() {
            assert!((est - 7.0).abs() < 1e-9);
        }
    }

    #[test]
    fn non_roots_have_no_estimate() {
        let n = 500;
        let values = vec![1.0; n];
        let (forest, mut net, initial) = setup(n, 17, 0.0, &values);
        let out = gossip_ave(&mut net, &forest, &initial, &GossipAveConfig::default());
        for v in net.nodes() {
            if !forest.is_root(v) {
                assert_eq!(out.estimates[v.index()], None);
            }
        }
    }

    #[test]
    fn config_round_counts_grow_with_m_and_precision() {
        let loose = GossipAveConfig {
            rounds_factor: 1.0,
            epsilon: 0.1,
        };
        let tight = GossipAveConfig {
            rounds_factor: 1.0,
            epsilon: 1e-6,
        };
        assert!(tight.rounds(1000) > loose.rounds(1000));
        assert!(loose.rounds(100_000) > loose.rounds(100));
    }
}
