//! The composite DRR-gossip protocols (Algorithms 7 and 8).
//!
//! * [`drr_gossip_max`] — Algorithm 7: DRR → Convergecast-max → root-address
//!   broadcast → Gossip-max → final broadcast of the maximum to all tree
//!   members.
//! * [`drr_gossip_ave`] — Algorithm 8: DRR → Convergecast-sum → root-address
//!   broadcast → Gossip-max *on tree sizes* (so every root learns whether it
//!   owns the largest tree) → Gossip-ave → Data-spread of the largest-tree
//!   root's estimate → final broadcast to all tree members.
//!
//! Both take `O(log n)` rounds; the message complexity is dominated by the
//! DRR phase, `O(n log log n)` (Section 3.5).

use crate::broadcast::broadcast_down;
use crate::convergecast::{convergecast_max, convergecast_sum, ReceptionModel};
use crate::data_spread::data_spread_multi;
use crate::drr::{run_drr, DrrConfig};
use crate::forest::ForestStats;
use crate::gossip_ave::{gossip_ave, GossipAveConfig};
use crate::gossip_max::{gossip_max, GossipMaxConfig};
use gossip_aggregate::relative_error;
use gossip_net::{Metrics, NodeId, Phase, Transport};
use serde::{Deserialize, Serialize};

/// Configuration of the full DRR-gossip protocols.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct DrrGossipConfig {
    /// Phase I parameters.
    pub drr: DrrConfig,
    /// Phase III (Gossip-max / Data-spread) parameters.
    pub gossip_max: GossipMaxConfig,
    /// Phase III (Gossip-ave) parameters.
    pub gossip_ave: GossipAveConfig,
    /// Reception model for the tree phases (the clique phone-call model uses
    /// one call per round; the sparse message-passing model allows all
    /// neighbours at once).
    pub reception: ReceptionModel,
}

impl DrrGossipConfig {
    /// The paper's parameter choices on the complete-graph model.
    pub fn paper() -> Self {
        DrrGossipConfig {
            drr: DrrConfig::paper(),
            gossip_max: GossipMaxConfig::default(),
            gossip_ave: GossipAveConfig::default(),
            reception: ReceptionModel::OneCallPerRound,
        }
    }
}

/// Rounds and messages consumed by one named phase of a protocol run.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseCost {
    /// Phase name ("drr", "convergecast", ...).
    pub name: &'static str,
    /// Rounds used by the phase.
    pub rounds: u64,
    /// Messages sent during the phase.
    pub messages: u64,
}

/// Why a node does — or does not — hold an estimate at the end of a
/// one-shot run. Distinguishes the two very different kinds of "no data":
/// a crashed node (expected: it is gone) and a **stale** node (alive at the
/// end, typically churned away mid-run and rejoined, so the one-shot
/// protocol never reached it — the gap the anti-entropy layer exists to
/// close). Experiment tables report these explicitly instead of burying
/// both as NaN.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeStatus {
    /// Alive with a finite estimate.
    Informed,
    /// Alive but holding no estimate (rejoiner / unreached node).
    Stale,
    /// Dead at the end of the run.
    Crashed,
}

impl NodeStatus {
    /// Classify one node from its liveness and estimate.
    pub fn of(alive: bool, estimate: f64) -> Self {
        match (alive, estimate.is_finite()) {
            (false, _) => NodeStatus::Crashed,
            (true, true) => NodeStatus::Informed,
            (true, false) => NodeStatus::Stale,
        }
    }
}

/// The result of a full DRR-gossip run.
#[derive(Clone, Debug)]
pub struct DrrGossipReport {
    /// Per-node estimate of the aggregate (NaN at crashed nodes).
    pub estimates: Vec<f64>,
    /// Per-node classification of that estimate (see [`NodeStatus`]).
    pub statuses: Vec<NodeStatus>,
    /// The exact aggregate over the alive nodes' values.
    pub exact: f64,
    /// Which nodes participated (were alive).
    pub alive: Vec<bool>,
    /// Shape statistics of the DRR forest.
    pub forest_stats: ForestStats,
    /// Per-phase cost breakdown.
    pub phases: Vec<PhaseCost>,
    /// Total rounds.
    pub total_rounds: u64,
    /// Total messages.
    pub total_messages: u64,
    /// Full metrics (per-phase message/bit/drop counters, round trace).
    pub metrics: Metrics,
}

impl DrrGossipReport {
    /// Largest relative error of any alive node's estimate.
    pub fn max_relative_error(&self) -> f64 {
        self.estimates
            .iter()
            .zip(&self.alive)
            .filter(|(_, &alive)| alive)
            .map(|(&e, _)| relative_error(e, self.exact))
            .fold(0.0, f64::max)
    }

    /// Fraction of alive nodes whose estimate equals the exact aggregate.
    pub fn fraction_exact(&self) -> f64 {
        let alive: Vec<f64> = self
            .estimates
            .iter()
            .zip(&self.alive)
            .filter(|(_, &a)| a)
            .map(|(&e, _)| e)
            .collect();
        gossip_aggregate::fraction_exact(&alive, self.exact)
    }

    /// The cost recorded for a named phase, if present.
    pub fn phase(&self, name: &str) -> Option<&PhaseCost> {
        self.phases.iter().find(|p| p.name == name)
    }

    /// Fraction of the final **alive** population that is [`NodeStatus::Stale`]
    /// — alive but left without an estimate by the one-shot run (0 when
    /// nobody is alive).
    pub fn fraction_stale(&self) -> f64 {
        let alive = self.statuses.iter().filter(|s| **s != NodeStatus::Crashed);
        let (stale, total) = alive.fold((0usize, 0usize), |(stale, total), s| {
            (stale + usize::from(*s == NodeStatus::Stale), total + 1)
        });
        if total == 0 {
            0.0
        } else {
            stale as f64 / total as f64
        }
    }
}

/// Classify every node of a finished run (see [`NodeStatus`]).
pub(crate) fn statuses_of(estimates: &[f64], alive: &[bool]) -> Vec<NodeStatus> {
    estimates
        .iter()
        .zip(alive)
        .map(|(&e, &a)| NodeStatus::of(a, e))
        .collect()
}

struct PhaseTracker {
    rounds: u64,
    messages: u64,
    phases: Vec<PhaseCost>,
}

impl PhaseTracker {
    fn new<T: Transport>(net: &T) -> Self {
        PhaseTracker {
            rounds: net.round(),
            messages: net.metrics().total_messages(),
            phases: Vec::new(),
        }
    }

    fn record<T: Transport>(&mut self, net: &T, name: &'static str) {
        let rounds = net.round();
        let messages = net.metrics().total_messages();
        self.phases.push(PhaseCost {
            name,
            rounds: rounds - self.rounds,
            messages: messages - self.messages,
        });
        self.rounds = rounds;
        self.messages = messages;
    }
}

fn broadcast_payload_bits<T: Transport>(net: &T) -> u32 {
    net.config().id_bits() + net.config().value_bits()
}

/// Algorithm 7: compute the global maximum at every node.
pub fn drr_gossip_max<T: Transport>(
    net: &mut T,
    values: &[f64],
    config: &DrrGossipConfig,
) -> DrrGossipReport {
    assert_eq!(values.len(), net.n(), "one value per node required");
    let start_rounds = net.round();
    let start_messages = net.metrics().total_messages();
    let mut tracker = PhaseTracker::new(net);

    // Phase I: DRR.
    let drr = run_drr(net, &config.drr);
    tracker.record(net, "drr");

    // Phase II: convergecast of the maximum, then the root-address broadcast.
    let cc = convergecast_max(net, &drr.forest, values, config.reception);
    tracker.record(net, "convergecast");
    let _ = broadcast_down(
        net,
        &drr.forest,
        config.reception,
        Phase::Broadcast,
        net.config().id_bits(),
    );
    tracker.record(net, "broadcast-root");

    // Phase III: Gossip-max among the roots.
    let gossip = gossip_max(net, &drr.forest, &cc.state, &config.gossip_max);
    tracker.record(net, "gossip-max");

    // Final dissemination of the maximum to every tree member.
    let _ = broadcast_down(
        net,
        &drr.forest,
        config.reception,
        Phase::Dissemination,
        broadcast_payload_bits(net),
    );
    tracker.record(net, "disseminate");

    let alive: Vec<bool> = net.nodes().map(|v| net.is_alive(v)).collect();
    let exact = net
        .alive_nodes()
        .map(|v| values[v.index()])
        .fold(f64::NEG_INFINITY, f64::max);
    let estimates: Vec<f64> = net
        .nodes()
        .map(|v| {
            if net.is_alive(v) {
                gossip.value_at(drr.forest.root_of(v)).unwrap_or(f64::NAN)
            } else {
                f64::NAN
            }
        })
        .collect();

    DrrGossipReport {
        statuses: statuses_of(&estimates, &alive),
        estimates,
        exact,
        alive,
        forest_stats: drr.forest.stats(),
        phases: tracker.phases,
        total_rounds: net.round() - start_rounds,
        total_messages: net.metrics().total_messages() - start_messages,
        metrics: net.metrics().clone(),
    }
}

/// Algorithm 8: compute the global average at every node.
pub fn drr_gossip_ave<T: Transport>(
    net: &mut T,
    values: &[f64],
    config: &DrrGossipConfig,
) -> DrrGossipReport {
    assert_eq!(values.len(), net.n(), "one value per node required");
    let start_rounds = net.round();
    let start_messages = net.metrics().total_messages();
    let mut tracker = PhaseTracker::new(net);

    // Phase I: DRR.
    let drr = run_drr(net, &config.drr);
    tracker.record(net, "drr");

    // Phase II: convergecast of (local sum, tree size), then root-address broadcast.
    let cc = convergecast_sum(net, &drr.forest, values, config.reception);
    tracker.record(net, "convergecast");
    let _ = broadcast_down(
        net,
        &drr.forest,
        config.reception,
        Phase::Broadcast,
        net.config().id_bits(),
    );
    tracker.record(net, "broadcast-root");

    // Phase III(a): Gossip-max on tree sizes so each root learns the largest
    // tree size and can tell whether it is the largest-tree root.
    let sizes: Vec<Option<f64>> = cc
        .state
        .iter()
        .map(|s| s.as_ref().map(|s| s.count))
        .collect();
    let size_election = gossip_max(net, &drr.forest, &sizes, &config.gossip_max);
    tracker.record(net, "size-election");

    // Phase III(b): Gossip-ave (push-sum among roots).
    let ave = gossip_ave(net, &drr.forest, &cc.state, &config.gossip_ave);
    tracker.record(net, "gossip-ave");

    // Phase III(c): the root(s) that recognise themselves as largest spread
    // the estimate of the (canonical) largest-tree root.
    let max_size = size_election.true_max;
    let spreaders: Vec<NodeId> = drr
        .forest
        .roots()
        .iter()
        .copied()
        .filter(|&r| {
            net.is_alive(r)
                && size_election.value_at(r) == Some(max_size)
                && drr.forest.tree_size(r) as f64 == max_size
        })
        .collect();
    let spread_value = ave.largest_root_estimate;
    let spreaders = if spreaders.is_empty() {
        vec![ave.largest_root]
    } else {
        spreaders
    };
    let spread = data_spread_multi(
        net,
        &drr.forest,
        &spreaders,
        spread_value,
        &config.gossip_max,
    );
    tracker.record(net, "data-spread");

    // Final dissemination of the average to every tree member.
    let _ = broadcast_down(
        net,
        &drr.forest,
        config.reception,
        Phase::Dissemination,
        broadcast_payload_bits(net),
    );
    tracker.record(net, "disseminate");

    let alive: Vec<bool> = net.nodes().map(|v| net.is_alive(v)).collect();
    let alive_values: Vec<f64> = net.alive_nodes().map(|v| values[v.index()]).collect();
    let exact = if alive_values.is_empty() {
        0.0
    } else {
        alive_values.iter().sum::<f64>() / alive_values.len() as f64
    };
    let estimates: Vec<f64> = net
        .nodes()
        .map(|v| {
            if net.is_alive(v) {
                let root = drr.forest.root_of(v);
                match spread.value_at(root) {
                    Some(x) if x.is_finite() => x,
                    // A root the spread missed falls back to its own estimate.
                    _ => ave.estimates[root.index()].unwrap_or(f64::NAN),
                }
            } else {
                f64::NAN
            }
        })
        .collect();

    DrrGossipReport {
        statuses: statuses_of(&estimates, &alive),
        estimates,
        exact,
        alive,
        forest_stats: drr.forest.stats(),
        phases: tracker.phases,
        total_rounds: net.round() - start_rounds,
        total_messages: net.metrics().total_messages() - start_messages,
        metrics: net.metrics().clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_net::{Network, SimConfig};

    fn uniform_values(n: usize) -> Vec<f64> {
        (0..n).map(|i| ((i * 37) % 1009) as f64).collect()
    }

    #[test]
    fn gossip_max_reaches_every_node_exactly() {
        let n = 4000;
        let mut net = Network::new(SimConfig::new(n).with_seed(3));
        let values = uniform_values(n);
        let report = drr_gossip_max(&mut net, &values, &DrrGossipConfig::paper());
        assert_eq!(report.fraction_exact(), 1.0);
        assert_eq!(report.exact, 1008.0);
    }

    #[test]
    fn gossip_ave_is_accurate_everywhere() {
        let n = 4000;
        let mut net = Network::new(SimConfig::new(n).with_seed(5));
        let values = uniform_values(n);
        let report = drr_gossip_ave(&mut net, &values, &DrrGossipConfig::paper());
        assert!(
            report.max_relative_error() < 1e-2,
            "max relative error = {}",
            report.max_relative_error()
        );
    }

    #[test]
    fn total_rounds_are_logarithmic() {
        let n = 1 << 13;
        let mut net = Network::new(SimConfig::new(n).with_seed(7));
        let values = uniform_values(n);
        let report = drr_gossip_max(&mut net, &values, &DrrGossipConfig::paper());
        let log_n = (n as f64).log2();
        assert!(
            (report.total_rounds as f64) < 40.0 * log_n,
            "rounds = {}",
            report.total_rounds
        );
    }

    #[test]
    fn message_complexity_dominated_by_drr_phase(/* Section 3.5 */) {
        // Asymptotically Phase I is Θ(n log log n) while every other phase is
        // Θ(n); with concrete constants at a single n we check (a) DRR beats
        // each of the O(n) tree phases outright and (b) the whole-protocol
        // total stays within a constant multiple of the DRR cost.
        let n = 1 << 13;
        let mut net = Network::new(SimConfig::new(n).with_seed(9));
        let values = uniform_values(n);
        let report = drr_gossip_max(&mut net, &values, &DrrGossipConfig::paper());
        let drr_messages = report.phase("drr").unwrap().messages;
        for name in ["convergecast", "broadcast-root", "disseminate"] {
            let phase = report.phase(name).unwrap();
            assert!(
                phase.messages <= drr_messages,
                "phase {} used {} messages, more than DRR's {}",
                phase.name,
                phase.messages,
                drr_messages
            );
        }
        assert!(
            report.total_messages < 4 * drr_messages,
            "total {} vs drr {}",
            report.total_messages,
            drr_messages
        );
    }

    #[test]
    fn message_complexity_scale_n_log_log_n() {
        let n = 1 << 14;
        let mut net = Network::new(SimConfig::new(n).with_seed(11));
        let values = uniform_values(n);
        let report = drr_gossip_max(&mut net, &values, &DrrGossipConfig::paper());
        let n_f = n as f64;
        let bound = 12.0 * n_f * n_f.log2().log2();
        assert!(
            (report.total_messages as f64) < bound,
            "messages = {} exceeds {bound}",
            report.total_messages
        );
    }

    #[test]
    fn survives_crashes_and_loss() {
        let n = 3000;
        let mut net = Network::new(
            SimConfig::new(n)
                .with_seed(13)
                .with_loss_prob(0.08)
                .with_initial_crash_prob(0.1),
        );
        let values = uniform_values(n);
        let report = drr_gossip_max(&mut net, &values, &DrrGossipConfig::paper());
        assert!(
            report.fraction_exact() > 0.98,
            "fraction exact = {}",
            report.fraction_exact()
        );
        let mut net = Network::new(
            SimConfig::new(n)
                .with_seed(13)
                .with_loss_prob(0.08)
                .with_initial_crash_prob(0.1),
        );
        let report = drr_gossip_ave(&mut net, &values, &DrrGossipConfig::paper());
        assert!(
            report.max_relative_error() < 0.1,
            "max relative error = {}",
            report.max_relative_error()
        );
    }

    #[test]
    fn report_phase_lookup_and_totals_consistent() {
        let n = 1000;
        let mut net = Network::new(SimConfig::new(n).with_seed(15));
        let values = uniform_values(n);
        let report = drr_gossip_ave(&mut net, &values, &DrrGossipConfig::paper());
        let phase_sum: u64 = report.phases.iter().map(|p| p.messages).sum();
        assert_eq!(phase_sum, report.total_messages);
        let round_sum: u64 = report.phases.iter().map(|p| p.rounds).sum();
        assert_eq!(round_sum, report.total_rounds);
        assert!(report.phase("drr").is_some());
        assert!(report.phase("gossip-ave").is_some());
        assert!(report.phase("nonexistent").is_none());
    }

    #[test]
    fn estimates_marked_nan_for_crashed_nodes() {
        let n = 800;
        let mut net = Network::new(SimConfig::new(n).with_seed(17).with_initial_crash_prob(0.3));
        let values = uniform_values(n);
        let report = drr_gossip_max(&mut net, &values, &DrrGossipConfig::paper());
        for v in net.nodes() {
            if !net.is_alive(v) {
                assert!(report.estimates[v.index()].is_nan());
                assert_eq!(report.statuses[v.index()], NodeStatus::Crashed);
            } else {
                assert!(report.estimates[v.index()].is_finite());
                assert_eq!(report.statuses[v.index()], NodeStatus::Informed);
            }
        }
        // No churn mid-run on the synchronous backend → nobody is stale.
        assert_eq!(report.fraction_stale(), 0.0);
    }

    #[test]
    fn statuses_separate_stale_rejoiners_from_crashes() {
        // Unit-level: the classification itself.
        assert_eq!(NodeStatus::of(false, f64::NAN), NodeStatus::Crashed);
        assert_eq!(NodeStatus::of(false, 3.0), NodeStatus::Crashed);
        assert_eq!(NodeStatus::of(true, 3.0), NodeStatus::Informed);
        assert_eq!(NodeStatus::of(true, f64::NAN), NodeStatus::Stale);

        // End-to-end: under ongoing churn, rejoiners finish alive but
        // uninformed — the report must say `Stale`, not bury them as NaN.
        use gossip_runtime::{AsyncConfig, AsyncEngine, ChurnModel, LatencyModel};
        let n = 1500;
        let values = uniform_values(n);
        let config = AsyncConfig::new(SimConfig::new(n).with_seed(23).with_loss_prob(0.05))
            .with_latency(LatencyModel::LogNormal {
                median_us: 1_000.0,
                sigma: 0.7,
            })
            .with_churn(ChurnModel::per_round(0.01, 0.15).with_min_alive(n / 2));
        let mut engine = AsyncEngine::new(config);
        let report = drr_gossip_max(&mut engine, &values, &DrrGossipConfig::paper());
        let stale = report
            .statuses
            .iter()
            .filter(|&&s| s == NodeStatus::Stale)
            .count();
        assert!(stale > 0, "churn strands some rejoiners without estimates");
        assert!(report.fraction_stale() > 0.0);
        for (i, &status) in report.statuses.iter().enumerate() {
            assert_eq!(
                status,
                NodeStatus::of(report.alive[i], report.estimates[i]),
                "status/estimate mismatch at node {i}"
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let n = 1200;
        let values = uniform_values(n);
        let run = || {
            let mut net = Network::new(SimConfig::new(n).with_seed(99).with_loss_prob(0.05));
            drr_gossip_ave(&mut net, &values, &DrrGossipConfig::paper())
        };
        let (a, b) = (run(), run());
        assert_eq!(a.estimates, b.estimates);
        assert_eq!(a.total_messages, b.total_messages);
        assert_eq!(a.total_rounds, b.total_rounds);
    }

    #[test]
    fn message_sizes_respect_model_budget() {
        let n = 4096;
        let mut net = Network::new(SimConfig::new(n).with_seed(21));
        let values = uniform_values(n);
        let _ = drr_gossip_ave(&mut net, &values, &DrrGossipConfig::paper());
        assert!(net.metrics().max_message_bits() <= net.config().message_bit_budget());
    }
}
