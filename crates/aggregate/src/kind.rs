//! Dynamic aggregate selection for the experiment harness and CLI.

use crate::functions::{Aggregate, Average, Count, Max, Min, Rank, Sum};
use serde::{Deserialize, Serialize};

/// A dynamically-chosen aggregate function.
///
/// The statically-typed [`Aggregate`] implementations are what the protocol
/// code is generic over; `AggregateKind` is the runtime selector used by the
/// experiments binary and the examples.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum AggregateKind {
    /// Maximum value.
    Max,
    /// Minimum value.
    Min,
    /// Sum of values.
    Sum,
    /// Number of nodes.
    Count,
    /// Arithmetic mean.
    Average,
    /// Rank of a target value (number of strictly smaller values).
    Rank(f64),
}

impl AggregateKind {
    /// All parameter-free kinds.
    pub const BASIC: [AggregateKind; 5] = [
        AggregateKind::Max,
        AggregateKind::Min,
        AggregateKind::Sum,
        AggregateKind::Count,
        AggregateKind::Average,
    ];

    /// Name used in tables and CLI arguments.
    pub fn name(&self) -> &'static str {
        match self {
            AggregateKind::Max => "max",
            AggregateKind::Min => "min",
            AggregateKind::Sum => "sum",
            AggregateKind::Count => "count",
            AggregateKind::Average => "average",
            AggregateKind::Rank(_) => "rank",
        }
    }

    /// Parse a CLI-style name. `rank:<target>` selects [`AggregateKind::Rank`].
    pub fn parse(s: &str) -> Option<Self> {
        let lower = s.trim().to_ascii_lowercase();
        match lower.as_str() {
            "max" => Some(AggregateKind::Max),
            "min" => Some(AggregateKind::Min),
            "sum" => Some(AggregateKind::Sum),
            "count" => Some(AggregateKind::Count),
            "average" | "avg" | "ave" | "mean" => Some(AggregateKind::Average),
            other => other
                .strip_prefix("rank:")
                .and_then(|t| t.parse::<f64>().ok())
                .map(AggregateKind::Rank),
        }
    }

    /// Exact (centralised) value of this aggregate over `values`.
    pub fn exact(&self, values: &[f64]) -> f64 {
        match self {
            AggregateKind::Max => Max.exact(values),
            AggregateKind::Min => Min.exact(values),
            AggregateKind::Sum => Sum.exact(values),
            AggregateKind::Count => Count.exact(values),
            AggregateKind::Average => Average.exact(values),
            AggregateKind::Rank(t) => Rank::of(*t).exact(values),
        }
    }

    /// Whether this aggregate is computed by DRR-gossip-max machinery
    /// (idempotent, order/extremum style) rather than DRR-gossip-ave
    /// machinery (sum/average style).
    pub fn is_extremum(&self) -> bool {
        matches!(self, AggregateKind::Max | AggregateKind::Min)
    }
}

impl std::fmt::Display for AggregateKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AggregateKind::Rank(t) => write!(f, "rank:{t}"),
            other => f.write_str(other.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrips_names() {
        for kind in AggregateKind::BASIC {
            assert_eq!(AggregateKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(AggregateKind::parse("AVG"), Some(AggregateKind::Average));
        assert_eq!(AggregateKind::parse("mean"), Some(AggregateKind::Average));
        assert_eq!(
            AggregateKind::parse("rank:3.5"),
            Some(AggregateKind::Rank(3.5))
        );
        assert_eq!(AggregateKind::parse("bogus"), None);
        assert_eq!(AggregateKind::parse("rank:abc"), None);
    }

    #[test]
    fn exact_delegates_to_static_impls() {
        let values = [1.0, 5.0, 2.0, 2.0];
        assert_eq!(AggregateKind::Max.exact(&values), 5.0);
        assert_eq!(AggregateKind::Min.exact(&values), 1.0);
        assert_eq!(AggregateKind::Sum.exact(&values), 10.0);
        assert_eq!(AggregateKind::Count.exact(&values), 4.0);
        assert_eq!(AggregateKind::Average.exact(&values), 2.5);
        assert_eq!(AggregateKind::Rank(2.0).exact(&values), 1.0);
    }

    #[test]
    fn extremum_classification() {
        assert!(AggregateKind::Max.is_extremum());
        assert!(AggregateKind::Min.is_extremum());
        assert!(!AggregateKind::Average.is_extremum());
        assert!(!AggregateKind::Sum.is_extremum());
    }

    #[test]
    fn display_matches_parse() {
        let kinds = [
            AggregateKind::Max,
            AggregateKind::Average,
            AggregateKind::Rank(1.25),
        ];
        for k in kinds {
            assert_eq!(AggregateKind::parse(&k.to_string()), Some(k));
        }
    }
}
