//! # gossip-aggregate
//!
//! Aggregate-function framework for gossip-based aggregate computation.
//!
//! The paper (Chen & Pandurangan, SPAA 2010) computes "common aggregates
//! (such as Min, Max, Count, Sum, Average, Rank, etc.)" of the values held by
//! the `n` nodes of a network. This crate provides:
//!
//! * the [`Aggregate`] trait — a commutative, associative combine over a
//!   small mergeable state — and the standard instances
//!   ([`Max`], [`Min`], [`Sum`], [`Count`], [`Average`], [`Rank`]);
//! * [`AggregateKind`], a dynamic selector used by the experiment harness;
//! * [`values`] — workload/value-distribution generators used to populate the
//!   per-node values `v_i`;
//! * [`exact`] — exact (centralised) reference computations used as ground
//!   truth when measuring protocol error;
//! * [`error`] — error metrics (relative/absolute error, consensus checks).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod exact;
pub mod functions;
pub mod kind;
pub mod values;

pub use error::{
    absolute_error, all_within_relative_error, fraction_exact, max_relative_error, relative_error,
};
pub use exact::ExactAggregates;
pub use functions::{Aggregate, Average, AverageState, Count, Max, Min, Rank, Sum};
pub use kind::AggregateKind;
pub use values::ValueDistribution;
