//! Workload generators: per-node value distributions.
//!
//! The paper motivates aggregate computation with workloads such as the
//! average number of files stored at each peer, the maximum file size
//! exchanged, or the average/minimum remaining battery power of sensor
//! nodes. These generators produce the per-node values `v_i` for those
//! scenarios as well as adversarial shapes used in tests (constant values,
//! a single outlier, mixed-sign values whose average is near zero — the case
//! Theorem 7 treats separately).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Exp, Normal, Zipf};
use serde::{Deserialize, Serialize};

/// A distribution of node values.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum ValueDistribution {
    /// Every node holds the same value.
    Constant(f64),
    /// Uniform on `[lo, hi)`.
    Uniform {
        /// Lower bound (inclusive).
        lo: f64,
        /// Upper bound (exclusive).
        hi: f64,
    },
    /// Normal with the given mean and standard deviation.
    Normal {
        /// Mean.
        mean: f64,
        /// Standard deviation (must be positive).
        std_dev: f64,
    },
    /// Exponential with the given rate parameter.
    Exponential {
        /// Rate λ (must be positive).
        lambda: f64,
    },
    /// Zipf-distributed integers in `1..=max` with exponent `exponent`
    /// (heavy-tailed file-count / popularity style workloads).
    Zipf {
        /// Largest value.
        max: u64,
        /// Tail exponent (must be positive).
        exponent: f64,
    },
    /// All zeros except one node holding `value` (rumor-style workloads and
    /// the worst case for Max computation: exactly one witness).
    SingleOutlier {
        /// The outlier value.
        value: f64,
    },
    /// Values alternating around zero so that the true average is ~0 — the
    /// corner case the paper handles with the absolute-error criterion.
    MixedSign {
        /// Magnitude of the alternating values.
        magnitude: f64,
    },
    /// Sensor-style battery levels: uniform percentages in `[0, 100]` with a
    /// small cluster of nearly-drained nodes.
    BatteryLevels,
}

impl ValueDistribution {
    /// Generate `n` node values deterministically from `seed`.
    pub fn generate(&self, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xa5a5_5a5a_1234_5678);
        match self {
            ValueDistribution::Constant(v) => vec![*v; n],
            ValueDistribution::Uniform { lo, hi } => {
                assert!(hi > lo, "uniform distribution requires hi > lo");
                (0..n).map(|_| rng.gen_range(*lo..*hi)).collect()
            }
            ValueDistribution::Normal { mean, std_dev } => {
                let dist = Normal::new(*mean, *std_dev).expect("valid normal parameters");
                (0..n).map(|_| dist.sample(&mut rng)).collect()
            }
            ValueDistribution::Exponential { lambda } => {
                let dist = Exp::new(*lambda).expect("valid exponential rate");
                (0..n).map(|_| dist.sample(&mut rng)).collect()
            }
            ValueDistribution::Zipf { max, exponent } => {
                let dist =
                    Zipf::new(*max, *exponent).expect("valid Zipf parameters (max >= 1, s > 0)");
                (0..n).map(|_| dist.sample(&mut rng)).collect()
            }
            ValueDistribution::SingleOutlier { value } => {
                let mut values = vec![0.0; n];
                if n > 0 {
                    let idx = rng.gen_range(0..n);
                    values[idx] = *value;
                }
                values
            }
            ValueDistribution::MixedSign { magnitude } => (0..n)
                .map(|i| {
                    let jitter = rng.gen_range(-0.01..0.01) * magnitude;
                    if i % 2 == 0 {
                        *magnitude + jitter
                    } else {
                        -*magnitude + jitter
                    }
                })
                .collect(),
            ValueDistribution::BatteryLevels => (0..n)
                .map(|_| {
                    if rng.gen_bool(0.05) {
                        rng.gen_range(0.0..5.0)
                    } else {
                        rng.gen_range(20.0..100.0)
                    }
                })
                .collect(),
        }
    }

    /// An upper bound on the spread of generated values (the `s` of the
    /// model's `O(log n + log s)` message-size bound), used to configure
    /// `gossip_net::SimConfig::with_value_range` consistently (no intra-doc
    /// link: `gossip-net` is not a dependency of this crate).
    pub fn value_range(&self) -> f64 {
        match self {
            ValueDistribution::Constant(v) => v.abs().max(1.0),
            ValueDistribution::Uniform { lo, hi } => (hi - lo).abs().max(1.0),
            ValueDistribution::Normal { mean, std_dev } => (mean.abs() + 8.0 * std_dev).max(1.0),
            ValueDistribution::Exponential { lambda } => (32.0 / lambda).max(1.0),
            ValueDistribution::Zipf { max, .. } => *max as f64,
            ValueDistribution::SingleOutlier { value } => value.abs().max(1.0),
            ValueDistribution::MixedSign { magnitude } => (2.0 * magnitude).max(1.0),
            ValueDistribution::BatteryLevels => 100.0,
        }
    }

    /// Short name used in experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            ValueDistribution::Constant(_) => "constant",
            ValueDistribution::Uniform { .. } => "uniform",
            ValueDistribution::Normal { .. } => "normal",
            ValueDistribution::Exponential { .. } => "exponential",
            ValueDistribution::Zipf { .. } => "zipf",
            ValueDistribution::SingleOutlier { .. } => "single-outlier",
            ValueDistribution::MixedSign { .. } => "mixed-sign",
            ValueDistribution::BatteryLevels => "battery",
        }
    }
}

impl Default for ValueDistribution {
    fn default() -> Self {
        ValueDistribution::Uniform {
            lo: 0.0,
            hi: 1000.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_length() {
        for dist in [
            ValueDistribution::Constant(3.0),
            ValueDistribution::Uniform { lo: 0.0, hi: 1.0 },
            ValueDistribution::Normal {
                mean: 0.0,
                std_dev: 1.0,
            },
            ValueDistribution::Exponential { lambda: 2.0 },
            ValueDistribution::Zipf {
                max: 100,
                exponent: 1.2,
            },
            ValueDistribution::SingleOutlier { value: 9.0 },
            ValueDistribution::MixedSign { magnitude: 5.0 },
            ValueDistribution::BatteryLevels,
        ] {
            assert_eq!(dist.generate(137, 1).len(), 137, "{}", dist.name());
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let d = ValueDistribution::Uniform { lo: -5.0, hi: 5.0 };
        assert_eq!(d.generate(100, 7), d.generate(100, 7));
        assert_ne!(d.generate(100, 7), d.generate(100, 8));
    }

    #[test]
    fn constant_is_constant() {
        let values = ValueDistribution::Constant(2.5).generate(50, 0);
        assert!(values.iter().all(|&v| v == 2.5));
    }

    #[test]
    fn uniform_respects_bounds() {
        let values = ValueDistribution::Uniform { lo: 10.0, hi: 20.0 }.generate(10_000, 3);
        assert!(values.iter().all(|&v| (10.0..20.0).contains(&v)));
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        assert!((mean - 15.0).abs() < 0.3);
    }

    #[test]
    fn single_outlier_has_exactly_one_nonzero() {
        let values = ValueDistribution::SingleOutlier { value: 42.0 }.generate(1000, 11);
        assert_eq!(values.iter().filter(|&&v| v != 0.0).count(), 1);
        assert!(values.contains(&42.0));
    }

    #[test]
    fn mixed_sign_average_is_near_zero() {
        let values = ValueDistribution::MixedSign { magnitude: 10.0 }.generate(10_000, 5);
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        assert!(mean.abs() < 0.5, "mean = {mean}");
    }

    #[test]
    fn battery_levels_within_percentage_range() {
        let values = ValueDistribution::BatteryLevels.generate(5000, 17);
        assert!(values.iter().all(|&v| (0.0..=100.0).contains(&v)));
        assert!(values.iter().any(|&v| v < 5.0), "some nearly-drained node");
    }

    #[test]
    fn zipf_values_are_positive_and_bounded() {
        let values = ValueDistribution::Zipf {
            max: 50,
            exponent: 1.1,
        }
        .generate(2000, 23);
        assert!(values.iter().all(|&v| (1.0..=50.0).contains(&v)));
    }

    #[test]
    fn value_range_is_positive() {
        for dist in [
            ValueDistribution::Constant(0.0),
            ValueDistribution::Uniform { lo: 0.0, hi: 1.0 },
            ValueDistribution::MixedSign { magnitude: 0.0 },
        ] {
            assert!(dist.value_range() >= 1.0);
        }
    }
}
