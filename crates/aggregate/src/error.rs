//! Error metrics for gossip estimates.
//!
//! Theorem 7 of the paper bounds the **relative error** of the Gossip-ave
//! estimate at the largest-tree root, and switches to the **absolute error**
//! criterion when the true average is zero. These helpers implement both
//! criteria plus network-wide consensus checks.

/// Relative error `|estimate − truth| / |truth|`. Falls back to the absolute
/// error when `truth == 0` (the convention of Theorem 7's final remark).
pub fn relative_error(estimate: f64, truth: f64) -> f64 {
    if truth == 0.0 {
        estimate.abs()
    } else {
        (estimate - truth).abs() / truth.abs()
    }
}

/// Absolute error `|estimate − truth|`.
pub fn absolute_error(estimate: f64, truth: f64) -> f64 {
    (estimate - truth).abs()
}

/// Largest relative error over a collection of per-node estimates.
pub fn max_relative_error(estimates: &[f64], truth: f64) -> f64 {
    estimates
        .iter()
        .map(|&e| relative_error(e, truth))
        .fold(0.0, f64::max)
}

/// Whether every estimate is within relative error `epsilon` of the truth.
pub fn all_within_relative_error(estimates: &[f64], truth: f64, epsilon: f64) -> bool {
    estimates
        .iter()
        .all(|&e| relative_error(e, truth) <= epsilon)
}

/// Fraction of estimates that are exactly equal to the truth (used for the
/// Max/Min consensus checks of Theorems 5 and 6).
pub fn fraction_exact(estimates: &[f64], truth: f64) -> f64 {
    if estimates.is_empty() {
        return 0.0;
    }
    estimates.iter().filter(|&&e| e == truth).count() as f64 / estimates.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_error_basic() {
        assert_eq!(relative_error(11.0, 10.0), 0.1);
        assert_eq!(relative_error(10.0, 10.0), 0.0);
        assert_eq!(relative_error(-9.0, -10.0), 0.1);
    }

    #[test]
    fn relative_error_falls_back_to_absolute_for_zero_truth() {
        assert_eq!(relative_error(0.25, 0.0), 0.25);
        assert_eq!(relative_error(0.0, 0.0), 0.0);
    }

    #[test]
    fn max_relative_error_over_estimates() {
        let estimates = [10.0, 10.5, 9.0];
        assert!((max_relative_error(&estimates, 10.0) - 0.1).abs() < 1e-12);
        assert_eq!(max_relative_error(&[], 10.0), 0.0);
    }

    #[test]
    fn all_within_checks_every_estimate() {
        assert!(all_within_relative_error(&[10.0, 10.1], 10.0, 0.011));
        assert!(!all_within_relative_error(&[10.0, 12.0], 10.0, 0.011));
        assert!(all_within_relative_error(&[], 10.0, 0.0));
    }

    #[test]
    fn fraction_exact_counts_matches() {
        assert_eq!(fraction_exact(&[5.0, 5.0, 3.0, 5.0], 5.0), 0.75);
        assert_eq!(fraction_exact(&[], 5.0), 0.0);
    }

    #[test]
    fn absolute_error_basic() {
        assert_eq!(absolute_error(3.0, 5.0), 2.0);
        assert_eq!(absolute_error(-3.0, 5.0), 8.0);
    }
}
