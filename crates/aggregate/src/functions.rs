//! The [`Aggregate`] trait and standard aggregate functions.
//!
//! An aggregate is described by a mergeable *state*: every node starts with
//! the state of its own value (`lift`), states are merged pairwise with a
//! commutative and associative `combine` (this is what convergecast and
//! gossip both do), and the final answer is read out with `finalize`.
//! This is precisely the structure that Phase II (convergecast) and the
//! tree-root gossip of Phase III operate on.

use serde::{Deserialize, Serialize};

/// A distributive/algebraic aggregate function computable by combining
/// partial states.
pub trait Aggregate: Clone {
    /// The mergeable partial state carried by messages.
    type State: Clone + PartialEq + std::fmt::Debug;

    /// Human-readable name ("max", "average", ...).
    fn name(&self) -> &'static str;

    /// The state representing a single node holding `value`.
    fn lift(&self, value: f64) -> Self::State;

    /// The state of an empty set of nodes (identity of `combine`).
    fn identity(&self) -> Self::State;

    /// Merge two partial states. Must be commutative and associative with
    /// `identity` as the neutral element.
    fn combine(&self, a: &Self::State, b: &Self::State) -> Self::State;

    /// Read the aggregate value out of a final state.
    fn finalize(&self, state: &Self::State) -> f64;

    /// Convenience: the exact aggregate of a slice of values, computed
    /// centrally. Used as ground truth in tests and experiments.
    fn exact(&self, values: &[f64]) -> f64 {
        let mut acc = self.identity();
        for &v in values {
            let lifted = self.lift(v);
            acc = self.combine(&acc, &lifted);
        }
        self.finalize(&acc)
    }
}

/// Maximum of the node values.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Max;

impl Aggregate for Max {
    type State = f64;

    fn name(&self) -> &'static str {
        "max"
    }

    fn lift(&self, value: f64) -> f64 {
        value
    }

    fn identity(&self) -> f64 {
        f64::NEG_INFINITY
    }

    fn combine(&self, a: &f64, b: &f64) -> f64 {
        a.max(*b)
    }

    fn finalize(&self, state: &f64) -> f64 {
        *state
    }
}

/// Minimum of the node values.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Min;

impl Aggregate for Min {
    type State = f64;

    fn name(&self) -> &'static str {
        "min"
    }

    fn lift(&self, value: f64) -> f64 {
        value
    }

    fn identity(&self) -> f64 {
        f64::INFINITY
    }

    fn combine(&self, a: &f64, b: &f64) -> f64 {
        a.min(*b)
    }

    fn finalize(&self, state: &f64) -> f64 {
        *state
    }
}

/// Sum of the node values.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Sum;

impl Aggregate for Sum {
    type State = f64;

    fn name(&self) -> &'static str {
        "sum"
    }

    fn lift(&self, value: f64) -> f64 {
        value
    }

    fn identity(&self) -> f64 {
        0.0
    }

    fn combine(&self, a: &f64, b: &f64) -> f64 {
        a + b
    }

    fn finalize(&self, state: &f64) -> f64 {
        *state
    }
}

/// Number of nodes (the "size count" `w_i` of Algorithm 3).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Count;

impl Aggregate for Count {
    type State = f64;

    fn name(&self) -> &'static str {
        "count"
    }

    fn lift(&self, _value: f64) -> f64 {
        1.0
    }

    fn identity(&self) -> f64 {
        0.0
    }

    fn combine(&self, a: &f64, b: &f64) -> f64 {
        a + b
    }

    fn finalize(&self, state: &f64) -> f64 {
        *state
    }
}

/// The `(sum, count)` pair state of [`Average`]. This is exactly the row
/// vector `(v_i, w_i)` that Convergecast-sum (Algorithm 3) and Gossip-ave
/// (Algorithm 6) carry in their messages.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct AverageState {
    /// Sum of values seen so far.
    pub sum: f64,
    /// Number of values seen so far.
    pub count: f64,
}

/// Average (arithmetic mean) of the node values.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Average;

impl Aggregate for Average {
    type State = AverageState;

    fn name(&self) -> &'static str {
        "average"
    }

    fn lift(&self, value: f64) -> AverageState {
        AverageState {
            sum: value,
            count: 1.0,
        }
    }

    fn identity(&self) -> AverageState {
        AverageState {
            sum: 0.0,
            count: 0.0,
        }
    }

    fn combine(&self, a: &AverageState, b: &AverageState) -> AverageState {
        AverageState {
            sum: a.sum + b.sum,
            count: a.count + b.count,
        }
    }

    fn finalize(&self, state: &AverageState) -> f64 {
        if state.count == 0.0 {
            0.0
        } else {
            state.sum / state.count
        }
    }
}

/// Rank of a target value: the number of node values strictly smaller than
/// the target. (The paper lists Rank among the aggregates computable by the
/// same machinery; it is a Sum of indicator values.)
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Rank {
    /// The value whose rank is being computed.
    pub target: f64,
}

impl Rank {
    /// Rank of `target` among the node values.
    pub fn of(target: f64) -> Self {
        Rank { target }
    }
}

impl Aggregate for Rank {
    type State = f64;

    fn name(&self) -> &'static str {
        "rank"
    }

    fn lift(&self, value: f64) -> f64 {
        if value < self.target {
            1.0
        } else {
            0.0
        }
    }

    fn identity(&self) -> f64 {
        0.0
    }

    fn combine(&self, a: &f64, b: &f64) -> f64 {
        a + b
    }

    fn finalize(&self, state: &f64) -> f64 {
        *state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn max_and_min_basic() {
        let values = [3.0, -1.0, 7.5, 2.0];
        assert_eq!(Max.exact(&values), 7.5);
        assert_eq!(Min.exact(&values), -1.0);
    }

    #[test]
    fn sum_count_average_basic() {
        let values = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(Sum.exact(&values), 10.0);
        assert_eq!(Count.exact(&values), 4.0);
        assert_eq!(Average.exact(&values), 2.5);
    }

    #[test]
    fn rank_counts_strictly_smaller_values() {
        let values = [1.0, 2.0, 2.0, 3.0, 10.0];
        assert_eq!(Rank::of(2.0).exact(&values), 1.0);
        assert_eq!(Rank::of(5.0).exact(&values), 4.0);
        assert_eq!(Rank::of(0.0).exact(&values), 0.0);
    }

    #[test]
    fn empty_input_finalizes_to_identity_semantics() {
        assert_eq!(Max.exact(&[]), f64::NEG_INFINITY);
        assert_eq!(Min.exact(&[]), f64::INFINITY);
        assert_eq!(Sum.exact(&[]), 0.0);
        assert_eq!(Count.exact(&[]), 0.0);
        assert_eq!(Average.exact(&[]), 0.0);
    }

    #[test]
    fn average_of_single_value_is_that_value() {
        assert_eq!(Average.exact(&[42.0]), 42.0);
    }

    fn assert_combine_laws<A: Aggregate>(agg: &A, a: f64, b: f64, c: f64)
    where
        A::State: PartialEq,
    {
        let (sa, sb, sc) = (agg.lift(a), agg.lift(b), agg.lift(c));
        // commutativity
        assert_eq!(agg.combine(&sa, &sb), agg.combine(&sb, &sa));
        // associativity
        let left = agg.combine(&agg.combine(&sa, &sb), &sc);
        let right = agg.combine(&sa, &agg.combine(&sb, &sc));
        assert_eq!(agg.finalize(&left), agg.finalize(&right));
        // identity
        assert_eq!(agg.combine(&sa, &agg.identity()), sa);
        assert_eq!(agg.combine(&agg.identity(), &sa), sa);
    }

    proptest! {
        #[test]
        fn combine_laws_hold(a in -1e6f64..1e6, b in -1e6f64..1e6, c in -1e6f64..1e6) {
            assert_combine_laws(&Max, a, b, c);
            assert_combine_laws(&Min, a, b, c);
            assert_combine_laws(&Count, a, b, c);
            assert_combine_laws(&Rank::of(0.0), a, b, c);
        }

        #[test]
        fn sum_and_average_match_reference(values in proptest::collection::vec(-1e3f64..1e3, 1..200)) {
            let reference_sum: f64 = values.iter().sum();
            let reference_avg = reference_sum / values.len() as f64;
            prop_assert!((Sum.exact(&values) - reference_sum).abs() < 1e-6);
            prop_assert!((Average.exact(&values) - reference_avg).abs() < 1e-6);
        }

        #[test]
        fn max_exact_matches_iterator_max(values in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
            let m = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert_eq!(Max.exact(&values), m);
        }

        #[test]
        fn rank_is_monotone_in_target(values in proptest::collection::vec(-100f64..100.0, 1..100),
                                      t1 in -100f64..100.0, t2 in -100f64..100.0) {
            let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
            prop_assert!(Rank::of(lo).exact(&values) <= Rank::of(hi).exact(&values));
        }
    }
}
