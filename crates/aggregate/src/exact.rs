//! Centralised (exact) reference aggregates.

use serde::{Deserialize, Serialize};

/// All standard aggregates of a value vector, computed exactly in one pass.
/// Used as ground truth when measuring the error of gossip estimates.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ExactAggregates {
    /// Number of values.
    pub count: usize,
    /// Maximum value (`-inf` for an empty input).
    pub max: f64,
    /// Minimum value (`+inf` for an empty input).
    pub min: f64,
    /// Sum of values.
    pub sum: f64,
    /// Arithmetic mean (0 for an empty input).
    pub average: f64,
}

impl ExactAggregates {
    /// Compute all aggregates of `values`.
    pub fn of(values: &[f64]) -> Self {
        let mut max = f64::NEG_INFINITY;
        let mut min = f64::INFINITY;
        let mut sum = 0.0;
        for &v in values {
            max = max.max(v);
            min = min.min(v);
            sum += v;
        }
        let count = values.len();
        let average = if count == 0 { 0.0 } else { sum / count as f64 };
        ExactAggregates {
            count,
            max,
            min,
            sum,
            average,
        }
    }

    /// Rank of `target`: number of values strictly smaller than it.
    pub fn rank_of(values: &[f64], target: f64) -> usize {
        values.iter().filter(|&&v| v < target).count()
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) by nearest-rank on a sorted copy.
    pub fn quantile(values: &[f64], q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        if values.is_empty() {
            return f64::NAN;
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN values"));
        let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
        sorted[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn of_small_vector() {
        let e = ExactAggregates::of(&[2.0, -1.0, 4.0, 3.0]);
        assert_eq!(e.count, 4);
        assert_eq!(e.max, 4.0);
        assert_eq!(e.min, -1.0);
        assert_eq!(e.sum, 8.0);
        assert_eq!(e.average, 2.0);
    }

    #[test]
    fn of_empty_vector() {
        let e = ExactAggregates::of(&[]);
        assert_eq!(e.count, 0);
        assert_eq!(e.max, f64::NEG_INFINITY);
        assert_eq!(e.min, f64::INFINITY);
        assert_eq!(e.sum, 0.0);
        assert_eq!(e.average, 0.0);
    }

    #[test]
    fn rank_and_quantile() {
        let values = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(ExactAggregates::rank_of(&values, 3.0), 2);
        assert_eq!(ExactAggregates::quantile(&values, 0.0), 1.0);
        assert_eq!(ExactAggregates::quantile(&values, 0.5), 3.0);
        assert_eq!(ExactAggregates::quantile(&values, 1.0), 5.0);
    }

    #[test]
    fn quantile_of_empty_is_nan() {
        assert!(ExactAggregates::quantile(&[], 0.5).is_nan());
    }

    proptest! {
        #[test]
        fn min_le_average_le_max(values in proptest::collection::vec(-1e6f64..1e6, 1..500)) {
            let e = ExactAggregates::of(&values);
            prop_assert!(e.min <= e.average + 1e-9);
            prop_assert!(e.average <= e.max + 1e-9);
        }

        #[test]
        fn rank_bounded_by_count(values in proptest::collection::vec(-1e3f64..1e3, 0..200),
                                 target in -1e3f64..1e3) {
            let r = ExactAggregates::rank_of(&values, target);
            prop_assert!(r <= values.len());
        }
    }
}
