//! The [`Transport`] abstraction: what a protocol needs from a network.
//!
//! The protocols of this workspace were originally written directly against
//! the round-synchronous [`Network`](crate::Network). `Transport` extracts
//! the surface they actually use — liveness queries, deterministic sampling,
//! message transmission and the round barrier — so that the same protocol
//! code runs unchanged on
//!
//! * the synchronous [`Network`](crate::Network) (the paper's model), and
//! * the asynchronous discrete-event engine of `gossip-runtime`, which adds
//!   per-link latency, ongoing churn and per-node bandwidth budgets behind
//!   the same round-barrier contract.
//!
//! The contract every implementation must honour:
//!
//! * All randomness flows through [`Transport::rng_mut`] /
//!   [`Transport::derive_rng`], so a run is a pure function of
//!   `SimConfig::seed` (plus the backend's own configuration).
//! * [`Transport::send`] *counts* every message (the paper counts
//!   transmissions, not deliveries) and returns whether it was delivered.
//! * [`Transport::advance_round`] closes one synchronous round; what a
//!   "round" costs in virtual time is backend-specific.

use crate::config::SimConfig;
use crate::metrics::Metrics;
use crate::node::NodeId;
use crate::phase::Phase;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A network backend that gossip protocols can run on.
///
/// Default methods mirror [`Network`](crate::Network)'s behaviour exactly —
/// backends only implement the small required core unless they have a faster
/// or semantically different way to do something.
pub trait Transport {
    /// The configuration the backend was built from.
    fn config(&self) -> &SimConfig;

    /// Accumulated metrics (read-only).
    fn metrics(&self) -> &Metrics;

    /// Whether a node is currently alive.
    fn is_alive(&self, node: NodeId) -> bool;

    /// Number of currently alive nodes.
    fn alive_count(&self) -> usize;

    /// The simulation RNG. Protocol-level random choices must come from here
    /// so that runs are reproducible from the seed.
    fn rng_mut(&mut self) -> &mut SmallRng;

    /// Send one `bits`-bit message; returns `true` iff delivered.
    fn send(&mut self, from: NodeId, to: NodeId, phase: Phase, bits: u32) -> bool;

    /// Close the current synchronous round.
    fn advance_round(&mut self);

    /// Reset the metrics (keeps liveness and RNG state).
    fn reset_metrics(&mut self);

    // ---- Derived API (identical across backends) ----

    /// Number of nodes (including crashed ones).
    #[inline]
    fn n(&self) -> usize {
        self.config().n
    }

    /// Number of completed rounds.
    #[inline]
    fn round(&self) -> u64 {
        self.metrics().rounds()
    }

    /// Iterator over all node ids, `0..n`.
    fn nodes(&self) -> NodeIdIter {
        NodeIdIter { range: 0..self.n() }
    }

    /// Iterator over currently alive node ids.
    fn alive_nodes(&self) -> impl Iterator<Item = NodeId> + '_
    where
        Self: Sized,
    {
        (0..self.n())
            .map(NodeId::new)
            .filter(move |&v| self.is_alive(v))
    }

    /// Derive an independent RNG stream from the simulation seed.
    fn derive_rng(&self, salt: u64) -> SmallRng {
        SmallRng::seed_from_u64(self.config().seed.wrapping_mul(0x5851_f42d_4c95_7f2d) ^ salt)
    }

    /// Sample a node uniformly at random from all `n` nodes. The sampled
    /// node may be crashed; sending to it will then fail.
    #[inline]
    fn sample_uniform(&mut self) -> NodeId
    where
        Self: Sized,
    {
        let n = self.n();
        NodeId::new(self.rng_mut().gen_range(0..n))
    }

    /// Sample a uniformly random node different from `me` (returns `me` for
    /// a singleton network).
    fn sample_other_than(&mut self, me: NodeId) -> NodeId
    where
        Self: Sized,
    {
        if self.n() == 1 {
            return me;
        }
        loop {
            let candidate = self.sample_uniform();
            if candidate != me {
                return candidate;
            }
        }
    }

    /// Sample a uniformly random *alive* node.
    fn sample_uniform_alive(&mut self) -> NodeId
    where
        Self: Sized,
    {
        loop {
            let candidate = self.sample_uniform();
            if self.is_alive(candidate) {
                return candidate;
            }
        }
    }

    /// Send with up to `max_attempts` retransmissions until delivery. Each
    /// attempt is counted as a message. Returns `(attempts, delivered)`.
    fn send_with_retries(
        &mut self,
        from: NodeId,
        to: NodeId,
        phase: Phase,
        bits: u32,
        max_attempts: u32,
    ) -> (u32, bool) {
        let mut attempts = 0;
        while attempts < max_attempts {
            attempts += 1;
            if self.send(from, to, phase, bits) {
                return (attempts, true);
            }
            // A dead endpoint will never succeed; avoid burning the budget.
            if !self.is_alive(from) || !self.is_alive(to) {
                return (attempts, false);
            }
        }
        (attempts, false)
    }
}

/// Concrete iterator over all node ids (keeps [`Transport::nodes`]
/// object-safe-friendly and borrow-free).
#[derive(Clone, Debug)]
pub struct NodeIdIter {
    range: std::ops::Range<usize>,
}

impl Iterator for NodeIdIter {
    type Item = NodeId;

    #[inline]
    fn next(&mut self) -> Option<NodeId> {
        self.range.next().map(NodeId::new)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.range.size_hint()
    }
}

impl ExactSizeIterator for NodeIdIter {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Network;

    // A deliberately tiny fake backend exercising the default methods.
    struct Fake {
        config: SimConfig,
        metrics: Metrics,
        rng: SmallRng,
        dead: Vec<bool>,
    }

    impl Fake {
        fn new(n: usize) -> Self {
            Fake {
                config: SimConfig::new(n).with_seed(7),
                metrics: Metrics::new(),
                rng: SmallRng::seed_from_u64(7),
                dead: vec![false; n],
            }
        }
    }

    impl Transport for Fake {
        fn config(&self) -> &SimConfig {
            &self.config
        }
        fn metrics(&self) -> &Metrics {
            &self.metrics
        }
        fn is_alive(&self, node: NodeId) -> bool {
            !self.dead[node.index()]
        }
        fn alive_count(&self) -> usize {
            self.dead.iter().filter(|&&d| !d).count()
        }
        fn rng_mut(&mut self) -> &mut SmallRng {
            &mut self.rng
        }
        fn send(&mut self, from: NodeId, to: NodeId, phase: Phase, bits: u32) -> bool {
            let ok = self.is_alive(from) && self.is_alive(to);
            self.metrics.record_send(phase, bits, ok);
            ok
        }
        fn advance_round(&mut self) {
            self.metrics.advance_round();
        }
        fn reset_metrics(&mut self) {
            self.metrics.reset();
        }
    }

    #[test]
    fn default_methods_work_on_a_custom_backend() {
        let mut fake = Fake::new(8);
        fake.dead[3] = true;
        assert_eq!(fake.n(), 8);
        assert_eq!(fake.alive_count(), 7);
        assert_eq!(fake.nodes().count(), 8);
        assert_eq!(fake.alive_nodes().count(), 7);
        assert!(fake.alive_nodes().all(|v| v != NodeId::new(3)));
        for _ in 0..100 {
            let v = fake.sample_uniform_alive();
            assert!(fake.is_alive(v));
            assert_ne!(fake.sample_other_than(NodeId::new(1)), NodeId::new(1));
        }
        let (attempts, ok) =
            fake.send_with_retries(NodeId::new(0), NodeId::new(3), Phase::Other, 8, 5);
        assert!(!ok);
        assert_eq!(attempts, 1, "dead endpoint should not be retried");
        assert_eq!(fake.metrics().total_messages(), 1);
    }

    #[test]
    fn network_and_trait_defaults_sample_identically() {
        // Network implements the hot sampling paths itself; the trait default
        // must stay bit-for-bit compatible so protocols behave the same on
        // backends that use the defaults.
        let cfg = SimConfig::new(64).with_seed(42);
        let mut net = Network::new(cfg.clone());
        let mut fake = Fake {
            config: cfg.clone(),
            metrics: Metrics::new(),
            rng: net.rng_mut().clone(),
            dead: vec![false; 64],
        };
        for _ in 0..200 {
            let a = net.sample_uniform();
            let b = Transport::sample_uniform(&mut fake);
            assert_eq!(a, b);
        }
        assert_eq!(net.derive_rng(9), Transport::derive_rng(&fake, 9));
    }
}
