//! The [`Transport`] abstraction: what a protocol needs from a network.
//!
//! The protocols of this workspace were originally written directly against
//! the round-synchronous [`Network`](crate::Network). `Transport` extracts
//! the surface they actually use — liveness queries, deterministic sampling,
//! message transmission and the round barrier — so that the same protocol
//! code runs unchanged on
//!
//! * the synchronous [`Network`](crate::Network) (the paper's model),
//! * the asynchronous discrete-event engine of `gossip-runtime`
//!   (`AsyncEngine`), which adds per-link latency, ongoing churn and
//!   per-node bandwidth budgets behind the same round-barrier contract, and
//! * `gossip-runtime`'s `ShardedTransport` — the same semantics served by
//!   the sharded calendar-queue core, bit-identical to `AsyncEngine` at
//!   every shard count, which carries the one-shot protocol chain to
//!   n ≥ 10⁷.
//!
//! The contract every implementation must honour:
//!
//! * All randomness flows through [`Transport::rng_mut`] /
//!   [`Transport::derive_rng`], so a run is a pure function of
//!   `SimConfig::seed` (plus the backend's own configuration).
//! * [`Transport::send`] *counts* every message (the paper counts
//!   transmissions, not deliveries) and returns whether it was delivered.
//! * [`Transport::advance_round`] closes one synchronous round; what a
//!   "round" costs in virtual time is backend-specific.

use crate::config::SimConfig;
use crate::metrics::Metrics;
use crate::node::NodeId;
use crate::phase::Phase;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A network backend that gossip protocols can run on.
///
/// Default methods mirror [`Network`](crate::Network)'s behaviour exactly —
/// backends only implement the small required core unless they have a faster
/// or semantically different way to do something.
pub trait Transport {
    /// The configuration the backend was built from.
    fn config(&self) -> &SimConfig;

    /// Accumulated metrics (read-only).
    fn metrics(&self) -> &Metrics;

    /// Whether a node is currently alive.
    fn is_alive(&self, node: NodeId) -> bool;

    /// Number of currently alive nodes.
    fn alive_count(&self) -> usize;

    /// The simulation RNG. Protocol-level random choices must come from here
    /// so that runs are reproducible from the seed.
    fn rng_mut(&mut self) -> &mut SmallRng;

    /// Send one `bits`-bit message; returns `true` iff delivered.
    fn send(&mut self, from: NodeId, to: NodeId, phase: Phase, bits: u32) -> bool;

    /// Close the current synchronous round.
    fn advance_round(&mut self);

    /// Reset the metrics (keeps liveness and RNG state).
    fn reset_metrics(&mut self);

    // ---- Derived API (identical across backends) ----

    /// Number of nodes (including crashed ones).
    #[inline]
    fn n(&self) -> usize {
        self.config().n
    }

    /// Number of completed rounds.
    #[inline]
    fn round(&self) -> u64 {
        self.metrics().rounds()
    }

    /// Iterator over all node ids, `0..n`.
    fn nodes(&self) -> NodeIdIter {
        NodeIdIter { range: 0..self.n() }
    }

    /// Iterator over currently alive node ids.
    fn alive_nodes(&self) -> impl Iterator<Item = NodeId> + '_
    where
        Self: Sized,
    {
        (0..self.n())
            .map(NodeId::new)
            .filter(move |&v| self.is_alive(v))
    }

    /// Derive an independent RNG stream from the simulation seed.
    fn derive_rng(&self, salt: u64) -> SmallRng {
        SmallRng::seed_from_u64(self.config().seed.wrapping_mul(0x5851_f42d_4c95_7f2d) ^ salt)
    }

    /// Sample a node uniformly at random from all `n` nodes. The sampled
    /// node may be crashed; sending to it will then fail.
    #[inline]
    fn sample_uniform(&mut self) -> NodeId
    where
        Self: Sized,
    {
        let n = self.n();
        NodeId::new(self.rng_mut().gen_range(0..n))
    }

    /// Sample a uniformly random node different from `me` (returns `me` for
    /// a singleton network).
    fn sample_other_than(&mut self, me: NodeId) -> NodeId
    where
        Self: Sized,
    {
        if self.n() == 1 {
            return me;
        }
        loop {
            let candidate = self.sample_uniform();
            if candidate != me {
                return candidate;
            }
        }
    }

    /// Sample a uniformly random *alive* node.
    fn sample_uniform_alive(&mut self) -> NodeId
    where
        Self: Sized,
    {
        loop {
            let candidate = self.sample_uniform();
            if self.is_alive(candidate) {
                return candidate;
            }
        }
    }

    /// How much virtual time a retransmission has before its round closes,
    /// if this backend enforces a delivery deadline. `None` (the default)
    /// means deliveries never expire — retries are limited only by the
    /// caller's budget.
    fn deadline_budget_us(&self) -> Option<u64> {
        None
    }

    /// The backend's round-trip-time estimate (µs): roughly how long one
    /// timeout-plus-retransmission cycle costs. `None` (the default) means
    /// the backend has no latency model to estimate from.
    fn rtt_estimate_us(&self) -> Option<u64> {
        None
    }

    /// Send with up to `max_attempts` retransmissions until delivery. Each
    /// attempt is counted as a message. Returns `(attempts, delivered)`.
    ///
    /// RTT-aware under deadlines: when the backend reports both a
    /// [`deadline_budget_us`](Transport::deadline_budget_us) and an
    /// [`rtt_estimate_us`](Transport::rtt_estimate_us), the retry budget is
    /// capped by the serialized-timeout model — attempt `k` ships after
    /// `k − 1` timeout cycles (`(k−1)·rtt`) and needs one more one-way trip
    /// (`rtt/2`) to arrive, so attempts past that point are not sent (the
    /// blind-retransmission waste the `latency_tail` experiment measures as
    /// `late_drops`). This default applies the model as an a-priori cap;
    /// backends that track virtual time exactly (the asynchronous engine)
    /// override this method and charge each retry's elapsed timeout cycles
    /// against the deadline for real.
    fn send_with_retries(
        &mut self,
        from: NodeId,
        to: NodeId,
        phase: Phase,
        bits: u32,
        max_attempts: u32,
    ) -> (u32, bool) {
        let max_attempts = match (self.deadline_budget_us(), self.rtt_estimate_us()) {
            (Some(deadline), Some(rtt)) if rtt > 0 => {
                let one_way = rtt / 2;
                let feasible = if deadline <= one_way {
                    1 // even the first attempt is a gamble; send it and stop
                } else {
                    (1 + (deadline - one_way) / rtt).min(u64::from(u32::MAX)) as u32
                };
                max_attempts.min(feasible.max(1))
            }
            _ => max_attempts,
        };
        let mut attempts = 0;
        while attempts < max_attempts {
            attempts += 1;
            if self.send(from, to, phase, bits) {
                return (attempts, true);
            }
            // A dead endpoint will never succeed; avoid burning the budget.
            if !self.is_alive(from) || !self.is_alive(to) {
                return (attempts, false);
            }
        }
        (attempts, false)
    }
}

/// Concrete iterator over all node ids (keeps [`Transport::nodes`]
/// object-safe-friendly and borrow-free).
#[derive(Clone, Debug)]
pub struct NodeIdIter {
    range: std::ops::Range<usize>,
}

impl Iterator for NodeIdIter {
    type Item = NodeId;

    #[inline]
    fn next(&mut self) -> Option<NodeId> {
        self.range.next().map(NodeId::new)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.range.size_hint()
    }
}

impl ExactSizeIterator for NodeIdIter {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Network;

    // A deliberately tiny fake backend exercising the default methods.
    struct Fake {
        config: SimConfig,
        metrics: Metrics,
        rng: SmallRng,
        dead: Vec<bool>,
        deadline_us: Option<u64>,
        rtt_us: Option<u64>,
        deliver: bool,
    }

    impl Fake {
        fn new(n: usize) -> Self {
            Fake {
                config: SimConfig::new(n).with_seed(7),
                metrics: Metrics::new(),
                rng: SmallRng::seed_from_u64(7),
                dead: vec![false; n],
                deadline_us: None,
                rtt_us: None,
                deliver: true,
            }
        }
    }

    impl Transport for Fake {
        fn config(&self) -> &SimConfig {
            &self.config
        }
        fn metrics(&self) -> &Metrics {
            &self.metrics
        }
        fn is_alive(&self, node: NodeId) -> bool {
            !self.dead[node.index()]
        }
        fn alive_count(&self) -> usize {
            self.dead.iter().filter(|&&d| !d).count()
        }
        fn rng_mut(&mut self) -> &mut SmallRng {
            &mut self.rng
        }
        fn send(&mut self, from: NodeId, to: NodeId, phase: Phase, bits: u32) -> bool {
            let ok = self.deliver && self.is_alive(from) && self.is_alive(to);
            self.metrics.record_send(phase, bits, ok);
            ok
        }
        fn advance_round(&mut self) {
            self.metrics.advance_round();
        }
        fn reset_metrics(&mut self) {
            self.metrics.reset();
        }
        fn deadline_budget_us(&self) -> Option<u64> {
            self.deadline_us
        }
        fn rtt_estimate_us(&self) -> Option<u64> {
            self.rtt_us
        }
    }

    #[test]
    fn default_methods_work_on_a_custom_backend() {
        let mut fake = Fake::new(8);
        fake.dead[3] = true;
        assert_eq!(fake.n(), 8);
        assert_eq!(fake.alive_count(), 7);
        assert_eq!(fake.nodes().count(), 8);
        assert_eq!(fake.alive_nodes().count(), 7);
        assert!(fake.alive_nodes().all(|v| v != NodeId::new(3)));
        for _ in 0..100 {
            let v = fake.sample_uniform_alive();
            assert!(fake.is_alive(v));
            assert_ne!(fake.sample_other_than(NodeId::new(1)), NodeId::new(1));
        }
        let (attempts, ok) =
            fake.send_with_retries(NodeId::new(0), NodeId::new(3), Phase::Other, 8, 5);
        assert!(!ok);
        assert_eq!(attempts, 1, "dead endpoint should not be retried");
        assert_eq!(fake.metrics().total_messages(), 1);
    }

    #[test]
    fn retries_stop_when_the_deadline_cannot_be_met() {
        // rtt = 2000µs (one-way 1000µs), deadline 5000µs: attempt k arrives
        // around (k−1)·2000 + 1000, so attempts 1..=3 are feasible, 4+ are
        // guaranteed-late and must not be sent.
        let mut fake = Fake::new(4);
        fake.deliver = false;
        fake.deadline_us = Some(5_000);
        fake.rtt_us = Some(2_000);
        let (attempts, ok) =
            fake.send_with_retries(NodeId::new(0), NodeId::new(1), Phase::Other, 8, 64);
        assert!(!ok);
        assert_eq!(attempts, 3, "retry budget capped by the deadline");
        assert_eq!(fake.metrics().total_messages(), 3);

        // A deadline shorter than one trip still allows the single gamble.
        fake.deadline_us = Some(500);
        let (attempts, _) =
            fake.send_with_retries(NodeId::new(0), NodeId::new(1), Phase::Other, 8, 64);
        assert_eq!(attempts, 1);

        // Without a deadline (or without an RTT model) the cap is inactive.
        fake.deadline_us = None;
        let (attempts, _) =
            fake.send_with_retries(NodeId::new(0), NodeId::new(1), Phase::Other, 8, 5);
        assert_eq!(attempts, 5);
        fake.deadline_us = Some(5_000);
        fake.rtt_us = None;
        let (attempts, _) =
            fake.send_with_retries(NodeId::new(0), NodeId::new(1), Phase::Other, 8, 5);
        assert_eq!(attempts, 5);
    }

    #[test]
    fn network_and_trait_defaults_sample_identically() {
        // Network implements the hot sampling paths itself; the trait default
        // must stay bit-for-bit compatible so protocols behave the same on
        // backends that use the defaults.
        let cfg = SimConfig::new(64).with_seed(42);
        let mut net = Network::new(cfg.clone());
        let mut fake = Fake {
            config: cfg.clone(),
            metrics: Metrics::new(),
            rng: net.rng_mut().clone(),
            dead: vec![false; 64],
            deadline_us: None,
            rtt_us: None,
            deliver: true,
        };
        for _ in 0..200 {
            let a = net.sample_uniform();
            let b = Transport::sample_uniform(&mut fake);
            assert_eq!(a, b);
        }
        assert_eq!(net.derive_rng(9), Transport::derive_rng(&fake, 9));
    }
}
