//! The event-driven protocol API: [`Handler`] callbacks over a [`Mailbox`].
//!
//! The round-barrier [`Transport`](crate::Transport) fits one-shot
//! aggregation, where a coordinator drives every node through the same
//! phase sequence. Continuous protocols — anti-entropy, interval-driven
//! broadcast, failure detectors — have no global phases: each node reacts
//! to *its own* timers and to messages as they arrive. `Handler` is that
//! contract:
//!
//! * [`Handler::on_start`] — the node (re)joins the system and seeds its
//!   state and timers. Called once at startup and again after every rejoin
//!   (with **fresh** handler state: a rejoiner remembers nothing, which is
//!   exactly the gap anti-entropy closes).
//! * [`Handler::on_message`] — a message addressed to this node arrived.
//! * [`Handler::on_timer`] — a timer this node set has fired.
//!
//! A handler never touches the network directly; everything it can do is on
//! the [`Mailbox`] passed into each callback — send a message, arm a timer,
//! sample a peer, read the clock. The host (the event-driven driver of
//! `gossip-runtime`) implements `Mailbox` and guarantees deterministic
//! callback ordering: events dispatch in (virtual time, schedule order),
//! so a run is a pure function of the seed, exactly like the round-based
//! backends.
//!
//! Messages are plain Rust values ([`Handler::Msg`]); the `bits` argument
//! of [`Mailbox::send`] keeps the model's message-size accounting honest
//! (the host records it in [`Metrics`](crate::Metrics) like every other
//! transmission).

use crate::node::NodeId;
use crate::phase::Phase;
use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Names one of a handler's timers. Purely a label the handler chooses —
/// the host routes the fired timer back via [`Handler::on_timer`] without
/// interpreting it.
#[derive(
    Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct TimerId(pub u32);

impl std::fmt::Display for TimerId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "timer#{}", self.0)
    }
}

/// What a [`Handler`] callback may do: the endpoint-local view of a
/// transport. `M` is the protocol's message type.
pub trait Mailbox<M> {
    /// This node's own id.
    fn me(&self) -> NodeId;

    /// Number of nodes in the network (including crashed ones).
    fn n(&self) -> usize;

    /// Current virtual time (µs).
    fn now_us(&self) -> u64;

    /// Send `msg` to `to`. Fire-and-forget: delivery is asynchronous and
    /// may fail (loss, churn, bandwidth, deadline) — the sender learns
    /// nothing either way, exactly like a datagram. `bits` is the modelled
    /// wire size, recorded in the metrics.
    fn send(&mut self, to: NodeId, phase: Phase, bits: u32, msg: M);

    /// Arm a timer to fire at `now + delay_us` (at least 1 µs from now).
    /// Timers are one-shot; re-arm from [`Handler::on_timer`] for periodic
    /// behaviour. Timers do not survive a crash: after a rejoin, timers set
    /// by the previous incarnation never fire.
    ///
    /// Hosts may add **jitter** on top of `delay_us` (an opt-in host
    /// configuration, e.g. `with_timer_jitter_us`): a uniform draw in
    /// `[0, jitter]` from the acting node's RNG stream, so staggered
    /// protocols de-phase naturally while runs stay a pure function of
    /// the seed.
    fn set_timer(&mut self, delay_us: u64, timer: TimerId);

    /// Cancel every pending timer with this label that *this node* armed
    /// before now. A timer armed after the cancellation (same label
    /// included) fires normally — cancel-then-re-arm is the backoff idiom
    /// this exists for. Cancelling a label with no pending timer is a
    /// no-op. Cancellation is deterministic: hosts count suppressed firings
    /// but never reorder the surviving events.
    fn cancel_timer(&mut self, timer: TimerId);

    /// The simulation RNG. All protocol randomness must come from here so
    /// runs are reproducible from the seed.
    fn rng_mut(&mut self) -> &mut SmallRng;

    /// Sample a uniformly random peer different from `me` (returns `me`
    /// only in a singleton network). The sampled node may be crashed —
    /// sending to it is then wasted, which is part of the model.
    ///
    /// The default routes through [`sample_from_view`] with the static
    /// full-range [`StaticView`]; mailboxes layered over a membership view
    /// override this to draw from the discovered topology instead.
    fn sample_peer(&mut self) -> NodeId {
        let n = self.n();
        self.sample_peer_from(&StaticView(n))
    }

    /// Sample a uniform peer from an explicit [`PeerView`], excluding `me`.
    /// Draws come from this node's RNG stream, so runs stay a pure function
    /// of the seed whatever the view.
    fn sample_peer_from(&mut self, view: &dyn PeerView) -> NodeId {
        let me = self.me();
        sample_from_view(self.rng_mut(), me, view)
    }

    /// Record a protocol-level observability event (a state transition such
    /// as *suspected* or *declared-dead*) against this node, with `peer` as
    /// the subject when there is one.
    ///
    /// Strictly **passive**: hosts route it into their trace ring (kind
    /// [`TraceKind::State`](gossip_obs::TraceKind)) without drawing RNG,
    /// scheduling events, or otherwise feeding back into the run — noting
    /// never changes an `order_hash`. The default discards the event, so
    /// plain test mailboxes keep compiling.
    fn note(&mut self, peer: Option<NodeId>, reason: gossip_obs::TraceReason) {
        let _ = (peer, reason);
    }

    /// The causal context of the event this mailbox is dispatching — the
    /// chain id and hop of the message, timer fire, or start callback the
    /// handler is currently handling. Hosts with tracing enabled override
    /// this; messages sent through [`Mailbox::send`] inherit the context
    /// at `hop + 1`, so an operator can follow one stimulus across nodes.
    ///
    /// Strictly **passive**: contexts are derived from values already at
    /// hand (never an RNG draw) and ride alongside events without touching
    /// scheduling, so traced and untraced runs are bit-identical. The
    /// default is [`gossip_obs::TraceCtx::NONE`] — plain test mailboxes keep compiling
    /// and handlers needing no causality never see a difference.
    fn trace_ctx(&self) -> gossip_obs::TraceCtx {
        gossip_obs::TraceCtx::NONE
    }
}

/// A swappable source of candidate peers for [`Mailbox::sample_peer`].
///
/// The default is the static full range `0..n` ([`StaticView`]) — every
/// node id that could exist. A membership layer substitutes a *live* view
/// (the ids it currently believes are up), and the aggregation protocols
/// underneath keep calling `sample_peer` unchanged: the seam is in the
/// mailbox, not in the handlers.
///
/// Contract: entries are distinct node ids; `get(i)` is defined for
/// `i < len()`; the view may contain the sampling node itself (it is
/// excluded at sampling time). Iteration order is part of no contract —
/// sampling draws indices from the caller's RNG stream.
pub trait PeerView {
    /// Number of candidate peers in the view.
    fn len(&self) -> usize;

    /// The `idx`-th candidate (`idx < len()`).
    fn get(&self, idx: usize) -> NodeId;

    /// True when the view holds no candidates at all.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The default [`PeerView`]: every node id in `0..n`, the fixed universe
/// the round-based backends assume.
#[derive(Clone, Copy, Debug)]
pub struct StaticView(pub usize);

impl PeerView for StaticView {
    fn len(&self) -> usize {
        self.0
    }
    fn get(&self, idx: usize) -> NodeId {
        NodeId::new(idx)
    }
}

/// A slice of node ids is a view — the natural shape for a membership
/// layer's live list.
impl PeerView for &[NodeId] {
    fn len(&self) -> usize {
        <[NodeId]>::len(self)
    }
    fn get(&self, idx: usize) -> NodeId {
        self[idx]
    }
}

/// An owned id list is a view too (a membership layer keeps one
/// incrementally up to date).
impl PeerView for Vec<NodeId> {
    fn len(&self) -> usize {
        <[NodeId]>::len(self)
    }
    fn get(&self, idx: usize) -> NodeId {
        self[idx]
    }
}

/// Sample a uniform peer from `view`, excluding `me`; returns `me` only
/// when the view offers no other candidate.
///
/// This is the one sampling routine behind [`Mailbox::sample_peer`] and
/// [`Mailbox::sample_peer_from`], split out as a free function so layered
/// mailboxes (which hold the view in their own state) can call it without
/// fighting the borrow checker. For `StaticView(n)` it draws exactly the
/// sequence the pre-seam `sample_peer` drew (`gen_range(0..n)` rejection),
/// so golden hashes are unchanged.
pub fn sample_from_view(rng: &mut SmallRng, me: NodeId, view: &dyn PeerView) -> NodeId {
    let len = view.len();
    if len == 0 {
        return me;
    }
    if len == 1 {
        let only = view.get(0);
        return if only == me { me } else { only };
    }
    // Distinct-entry views terminate almost surely; the attempt cap turns a
    // contract violation (every entry == me) into a scan instead of a hang.
    for _ in 0..64 {
        let candidate = view.get(rng.gen_range(0..len));
        if candidate != me {
            return candidate;
        }
    }
    (0..len)
        .map(|i| view.get(i))
        .find(|&p| p != me)
        .unwrap_or(me)
}

/// Deterministic per-node timer stagger in `[1, interval_us]`.
///
/// Interval protocols that start every node's timer at the same offset
/// tick in lockstep — a thundering herd each interval. This spreads first
/// firings across the interval with the shared [`mix64`](crate::mix64)
/// mixer: stable per `(node, salt)`, RNG-free, and distinct per salt so a
/// handler with several timers (tick vs update) can de-phase them
/// independently.
pub fn stagger_us(node: NodeId, interval_us: u64, salt: u64) -> u64 {
    let z = crate::bits::mix64(
        (node.index() as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(salt),
    );
    1 + z % interval_us.max(1)
}

/// An event-driven protocol: per-node state plus reactions to the three
/// event kinds. See the module docs for the lifecycle.
pub trait Handler {
    /// The protocol's message type.
    type Msg;

    /// The node starts (first boot or rejoin after a crash). State is fresh;
    /// seed it and arm the first timers.
    fn on_start(&mut self, mailbox: &mut dyn Mailbox<Self::Msg>);

    /// A message from `from` arrived at this node.
    fn on_message(&mut self, from: NodeId, msg: Self::Msg, mailbox: &mut dyn Mailbox<Self::Msg>);

    /// A timer armed by this incarnation of the node fired.
    fn on_timer(&mut self, timer: TimerId, mailbox: &mut dyn Mailbox<Self::Msg>);

    /// Route this handler's protocol-level counters and gauges into an
    /// observability registry (see `gossip-obs`). Called at scrape time by
    /// hosts that serve `/metrics`; **must be a pure read** of handler
    /// state (the passivity contract — no RNG, no sends, no timers).
    ///
    /// Use `add_*` registry calls so several nodes running the same
    /// handler aggregate naturally into one page. The default exports
    /// nothing — existing handlers keep compiling and simply stay opaque.
    fn fill_registry(&self, registry: &mut gossip_obs::Registry) {
        let _ = registry;
    }

    /// Human-readable `(key, value)` lines for a host's `/status` page.
    /// `now_us` is the host's current clock, so freshness-windowed values
    /// (e.g. a convergence estimate) can be computed without the handler
    /// holding a clock of its own. Same purity rules as
    /// [`Handler::fill_registry`]; the default reports nothing.
    fn status_lines(&self, now_us: u64) -> Vec<(String, String)> {
        let _ = now_us;
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use std::collections::VecDeque;

    /// A minimal single-process mailbox: instant loop-back delivery, timers
    /// collected for inspection. Exercises the trait surface (including the
    /// provided `sample_peer`) without the full discrete-event driver.
    struct LoopbackMailbox {
        me: NodeId,
        n: usize,
        now: u64,
        rng: SmallRng,
        outbox: VecDeque<(NodeId, u32)>,
        timers: Vec<(u64, TimerId)>,
    }

    impl Mailbox<u32> for LoopbackMailbox {
        fn me(&self) -> NodeId {
            self.me
        }
        fn n(&self) -> usize {
            self.n
        }
        fn now_us(&self) -> u64 {
            self.now
        }
        fn send(&mut self, to: NodeId, _phase: Phase, _bits: u32, msg: u32) {
            self.outbox.push_back((to, msg));
        }
        fn set_timer(&mut self, delay_us: u64, timer: TimerId) {
            self.timers.push((self.now + delay_us.max(1), timer));
        }
        fn cancel_timer(&mut self, timer: TimerId) {
            self.timers.retain(|&(_, t)| t != timer);
        }
        fn rng_mut(&mut self) -> &mut SmallRng {
            &mut self.rng
        }
    }

    struct CountingHandler {
        received: Vec<u32>,
        fires: u32,
    }

    impl Handler for CountingHandler {
        type Msg = u32;
        fn on_start(&mut self, mailbox: &mut dyn Mailbox<u32>) {
            mailbox.set_timer(10, TimerId(0));
        }
        fn on_message(&mut self, _from: NodeId, msg: u32, mailbox: &mut dyn Mailbox<u32>) {
            self.received.push(msg);
            let peer = mailbox.sample_peer();
            mailbox.send(peer, Phase::Other, 8, msg + 1);
        }
        fn on_timer(&mut self, _timer: TimerId, mailbox: &mut dyn Mailbox<u32>) {
            self.fires += 1;
            mailbox.set_timer(10, TimerId(0));
        }
    }

    fn mailbox(n: usize) -> LoopbackMailbox {
        LoopbackMailbox {
            me: NodeId::new(0),
            n,
            now: 0,
            rng: SmallRng::seed_from_u64(7),
            outbox: VecDeque::new(),
            timers: Vec::new(),
        }
    }

    #[test]
    fn handler_lifecycle_round_trips_through_the_mailbox() {
        let mut mb = mailbox(8);
        let mut h = CountingHandler {
            received: Vec::new(),
            fires: 0,
        };
        h.on_start(&mut mb);
        assert_eq!(mb.timers, vec![(10, TimerId(0))]);
        h.on_timer(TimerId(0), &mut mb);
        assert_eq!(h.fires, 1);
        h.on_message(NodeId::new(3), 41, &mut mb);
        assert_eq!(h.received, vec![41]);
        let (to, msg) = mb.outbox.pop_front().expect("reply sent");
        assert_eq!(msg, 42);
        assert_ne!(to, mb.me(), "sample_peer never picks the node itself");
    }

    #[test]
    fn sample_peer_excludes_me_and_covers_the_network() {
        let mut mb = mailbox(5);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            let p = mb.sample_peer();
            assert_ne!(p, mb.me());
            seen.insert(p.index());
        }
        assert_eq!(seen.len(), 4, "all non-self peers reachable");
    }

    #[test]
    fn singleton_network_samples_self() {
        let mut mb = mailbox(1);
        assert_eq!(mb.sample_peer(), NodeId::new(0));
    }

    #[test]
    fn cancel_timer_only_drops_the_named_label() {
        let mut mb = mailbox(4);
        mb.set_timer(10, TimerId(0));
        mb.set_timer(20, TimerId(1));
        mb.set_timer(30, TimerId(0));
        mb.cancel_timer(TimerId(0));
        assert_eq!(mb.timers, vec![(20, TimerId(1))]);
        // Re-arming after a cancel works; cancelling nothing is a no-op.
        mb.cancel_timer(TimerId(7));
        mb.set_timer(40, TimerId(0));
        assert_eq!(mb.timers, vec![(20, TimerId(1)), (40, TimerId(0))]);
    }

    #[test]
    fn sample_peer_matches_the_static_view_draw_for_draw() {
        // The seam must not perturb existing runs: the default sample_peer
        // and an explicit StaticView consume the same RNG stream and return
        // the same peers.
        let mut a = mailbox(9);
        let mut b = mailbox(9);
        for _ in 0..100 {
            let via_default = a.sample_peer();
            let via_view = b.sample_peer_from(&StaticView(9));
            assert_eq!(via_default, via_view);
        }
    }

    #[test]
    fn slice_views_sample_only_their_members() {
        let mut mb = mailbox(100);
        let live = [NodeId::new(0), NodeId::new(17), NodeId::new(42)];
        let live = &live[..];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            let p = mb.sample_peer_from(&live);
            assert_ne!(p, mb.me());
            seen.insert(p.index());
        }
        assert_eq!(seen, [17usize, 42].into_iter().collect());
    }

    #[test]
    fn degenerate_views_fall_back_to_me() {
        let mut mb = mailbox(4);
        assert_eq!(mb.sample_peer_from(&Vec::new()), mb.me());
        assert_eq!(mb.sample_peer_from(&vec![NodeId::new(0)]), mb.me());
        assert_eq!(mb.sample_peer_from(&vec![NodeId::new(3)]), NodeId::new(3));
    }

    #[test]
    fn note_defaults_to_a_discard() {
        let mut mb = mailbox(4);
        // Compiles and does nothing — the passive default.
        mb.note(Some(NodeId::new(1)), gossip_obs::TraceReason::Suspected);
        mb.note(None, gossip_obs::TraceReason::Joined);
    }

    #[test]
    fn timer_ids_are_plain_labels() {
        assert_eq!(TimerId::default(), TimerId(0));
        assert!(TimerId(1) < TimerId(2));
        assert_eq!(format!("{}", TimerId(3)), "timer#3");
    }
}
