//! Protocol phase labels used to break down message counts.
//!
//! Every message sent through [`crate::Network::send`] is tagged with the
//! phase of the protocol that produced it. The experiment harness uses the
//! breakdown to reproduce the paper's claim that the message complexity of
//! DRR-gossip is dominated by Phase I (the DRR algorithm, Section 3.5).

use serde::{Deserialize, Serialize};

/// Phases of the gossip protocols implemented in this workspace.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Phase {
    /// DRR Phase I: probing a random node for its rank.
    DrrProbe,
    /// DRR Phase I: the probed node's rank reply.
    DrrReply,
    /// DRR Phase I: connection message from a node to its chosen parent.
    DrrConnect,
    /// Phase II: convergecast of local aggregates up each tree.
    Convergecast,
    /// Phase II: broadcast of the root address (and later the result) down each tree.
    Broadcast,
    /// Phase III: root-to-root gossip (possibly forwarded through a non-root).
    RootGossip,
    /// Phase III: the forwarding hop from a non-root node to its root.
    RootForward,
    /// Phase III: the sampling (consensus confirmation) procedure of Gossip-max.
    RootSampling,
    /// Data-spread of a single value from one root to all roots.
    DataSpread,
    /// Baseline uniform gossip (Kempe et al. push-sum / push-max).
    UniformGossip,
    /// Baseline efficient gossip (Kashyap et al.): group formation.
    Grouping,
    /// Baseline efficient gossip: gossip among group leaders.
    LeaderGossip,
    /// Baseline: dissemination of the final result to group/tree members.
    Dissemination,
    /// Baseline rumor spreading (Karp et al. push / push-pull).
    Rumor,
    /// Messages spent routing through an overlay (Chord lookups, random walks).
    Routing,
    /// Continuous anti-entropy: digest exchange and delta repair (gossip-ae).
    AntiEntropy,
    /// Membership control plane: SWIM probes, acks, joins and piggybacked
    /// liveness updates (gossip-member).
    Membership,
    /// Anything else.
    Other,
}

impl Phase {
    /// All phases, exactly once each, in the order of [`Phase::as_index`].
    pub const ALL: [Phase; Phase::COUNT] = [
        Phase::DrrProbe,
        Phase::DrrReply,
        Phase::DrrConnect,
        Phase::Convergecast,
        Phase::Broadcast,
        Phase::RootGossip,
        Phase::RootForward,
        Phase::RootSampling,
        Phase::DataSpread,
        Phase::UniformGossip,
        Phase::Grouping,
        Phase::LeaderGossip,
        Phase::Dissemination,
        Phase::Rumor,
        Phase::Routing,
        Phase::AntiEntropy,
        Phase::Membership,
        Phase::Other,
    ];

    /// Number of distinct phases.
    pub const COUNT: usize = 18;

    /// Dense index for per-phase counters.
    #[inline]
    pub fn as_index(self) -> usize {
        match self {
            Phase::DrrProbe => 0,
            Phase::DrrReply => 1,
            Phase::DrrConnect => 2,
            Phase::Convergecast => 3,
            Phase::Broadcast => 4,
            Phase::RootGossip => 5,
            Phase::RootForward => 6,
            Phase::RootSampling => 7,
            Phase::DataSpread => 8,
            Phase::UniformGossip => 9,
            Phase::Grouping => 10,
            Phase::LeaderGossip => 11,
            Phase::Dissemination => 12,
            Phase::Rumor => 13,
            Phase::Routing => 14,
            Phase::AntiEntropy => 15,
            Phase::Membership => 16,
            Phase::Other => 17,
        }
    }

    /// Human-readable name used in tables.
    pub fn as_str(self) -> &'static str {
        match self {
            Phase::DrrProbe => "drr-probe",
            Phase::DrrReply => "drr-reply",
            Phase::DrrConnect => "drr-connect",
            Phase::Convergecast => "convergecast",
            Phase::Broadcast => "broadcast",
            Phase::RootGossip => "root-gossip",
            Phase::RootForward => "root-forward",
            Phase::RootSampling => "root-sampling",
            Phase::DataSpread => "data-spread",
            Phase::UniformGossip => "uniform-gossip",
            Phase::Grouping => "grouping",
            Phase::LeaderGossip => "leader-gossip",
            Phase::Dissemination => "dissemination",
            Phase::Rumor => "rumor",
            Phase::Routing => "routing",
            Phase::AntiEntropy => "anti-entropy",
            Phase::Membership => "membership",
            Phase::Other => "other",
        }
    }

    /// Iterate over every distinct phase exactly once.
    pub fn iter() -> impl Iterator<Item = Phase> {
        Phase::ALL.into_iter()
    }
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn indices_are_dense_and_unique() {
        let indices: HashSet<usize> = Phase::iter().map(Phase::as_index).collect();
        assert_eq!(indices.len(), Phase::COUNT);
        assert!(indices.iter().all(|&i| i < Phase::COUNT));
    }

    #[test]
    fn names_are_unique() {
        let names: HashSet<&str> = Phase::iter().map(Phase::as_str).collect();
        assert_eq!(names.len(), Phase::COUNT);
    }

    #[test]
    fn iter_yields_each_phase_once() {
        let phases: Vec<Phase> = Phase::iter().collect();
        assert_eq!(phases.len(), Phase::COUNT);
        let set: HashSet<Phase> = phases.into_iter().collect();
        assert_eq!(set.len(), Phase::COUNT);
    }

    #[test]
    fn display_matches_as_str() {
        for p in Phase::iter() {
            assert_eq!(format!("{p}"), p.as_str());
        }
    }
}
