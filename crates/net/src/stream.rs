//! Per-node deterministic RNG streams.
//!
//! The round-synchronous [`Network`](crate::Network) and the asynchronous
//! engine both funnel every draw through **one** global RNG, so the stream
//! a node observes depends on the global interleaving of all nodes'
//! actions. That is fine while one thread owns the whole simulation, but it
//! is exactly what a *sharded* engine cannot have: two shards would race
//! for the stream, and the draw order — hence the run — would depend on the
//! shard count.
//!
//! [`node_rng`] is the sharding-safe alternative: an independent stream per
//! `(seed, node)`, derived by seeding a fresh [`SmallRng`] from a
//! [`mix64`]-whitened combination of the two. A node's stream
//! advances only through that node's own actions, so the values it draws
//! are a pure function of the seed and the node's own event history —
//! independent of how nodes are partitioned across shards, how many worker
//! threads run, and how the event loop is sliced. The sharded driver in
//! `gossip-runtime` builds every protocol-visible draw (peer sampling,
//! latency, loss) on these streams.
//!
//! Streams for distinct nodes are distinct (different additive offsets into
//! the splitmix-style derivation), and the whole family is disjoint from
//! the global streams by construction: the global engines seed from
//! `seed ^ const`, while `node_rng` whitens through `mix64` first.

use crate::bits::mix64;
use crate::node::NodeId;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Salt separating the per-node stream family from every other derived
/// stream in the workspace (engine setup, `Transport::derive_rng`, ...).
const NODE_STREAM_SALT: u64 = 0xA076_1D64_78BD_642F;

/// The deterministic RNG stream owned by `node` in a simulation seeded with
/// `seed`. See the module docs for the determinism contract.
pub fn node_rng(seed: u64, node: NodeId) -> SmallRng {
    let lane = (node.index() as u64)
        .wrapping_add(1)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15);
    SmallRng::seed_from_u64(mix64(seed ^ NODE_STREAM_SALT).wrapping_add(mix64(lane)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    fn draws(seed: u64, node: usize, k: usize) -> Vec<u64> {
        let mut rng = node_rng(seed, NodeId::new(node));
        (0..k).map(|_| rng.next_u64()).collect()
    }

    #[test]
    fn streams_are_reproducible() {
        assert_eq!(draws(7, 3, 16), draws(7, 3, 16));
    }

    #[test]
    fn streams_differ_across_nodes_and_seeds() {
        assert_ne!(draws(7, 3, 16), draws(7, 4, 16));
        assert_ne!(draws(7, 3, 16), draws(8, 3, 16));
        // Adjacent nodes and adjacent seeds must not collide either.
        let mut firsts = std::collections::HashSet::new();
        for node in 0..512 {
            assert!(firsts.insert(draws(42, node, 1)[0]), "node {node} collides");
        }
    }

    #[test]
    fn streams_are_disjoint_from_the_global_engine_stream() {
        let global = SmallRng::seed_from_u64(7 ^ crate::bits::SETUP_STREAM_SALT);
        for node in 0..64 {
            assert_ne!(node_rng(7, NodeId::new(node)), global);
        }
    }
}
