//! # gossip-net
//!
//! Round-synchronous network simulator for the **random phone-call model**
//! used by gossip-based aggregate-computation protocols (Chen & Pandurangan,
//! *Optimal Gossip-Based Aggregate Computation*, SPAA 2010, Section 2).
//!
//! The model implemented here:
//!
//! * The network consists of `n` nodes with unique addresses (`0..n`).
//! * Nodes communicate in discrete, synchronized **rounds**; in one round a
//!   node can *call* (initiate communication with) at most one other node,
//!   chosen either uniformly at random (address-oblivious steps) or by
//!   address (non-address-oblivious steps).
//! * Once a call is established, information may flow in both directions.
//! * Message length is limited to `O(log n + log s)` bits where `s` is the
//!   range of node values; [`SimConfig::message_bit_budget`] exposes the
//!   budget and [`Metrics`] records the largest message actually sent so
//!   that tests can assert the bound.
//! * Failures: a fraction of nodes may crash *before* the protocol starts
//!   ([`SimConfig::initial_crash_prob`]) and every message is lost
//!   independently with probability `δ` ([`SimConfig::loss_prob`]), with
//!   `1/log n < δ < 1/8` in the paper's analysis (any `δ ∈ [0,1)` is accepted
//!   by the simulator).
//!
//! Every protocol in the workspace funnels all of its communication through
//! [`Network::send`] so that message counts, per-phase breakdowns, dropped
//! messages, message sizes and round counts are accounted for uniformly and
//! can be compared across protocols.
//!
//! ```
//! use gossip_net::{Network, Phase, SimConfig};
//!
//! let mut net = Network::new(SimConfig::new(64).with_seed(7).with_loss_prob(0.05));
//! let a = net.sample_uniform();
//! let b = net.sample_uniform();
//! net.send(a, b, Phase::RootGossip, 48);
//! net.advance_round();
//! assert_eq!(net.metrics().total_messages(), 1);
//! assert_eq!(net.metrics().rounds(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod auth;
pub mod bits;
pub mod config;
pub mod mailbox;
pub mod metrics;
pub mod network;
pub mod node;
pub mod phase;
pub mod stream;
pub mod transport;
pub mod wire;

pub use auth::{hmac_sha256, sha256, AuthKey, AUTH_TAG_BYTES};
pub use bits::{ceil_log2, id_bits, mix64, value_bits_for_range, SETUP_STREAM_SALT};
pub use config::SimConfig;
pub use mailbox::{sample_from_view, stagger_us, Handler, Mailbox, PeerView, StaticView, TimerId};
pub use metrics::{Metrics, PhaseBreakdown};
pub use network::Network;
pub use node::NodeId;
pub use phase::Phase;
pub use stream::node_rng;
pub use transport::{NodeIdIter, Transport};
pub use wire::{
    decode_frame, decode_frame_sealed, decode_frame_traced, encode_frame, encode_frame_sealed,
    encode_frame_traced, frame_with_payload, frame_with_payload_traced, seal_frame, WireError,
    WireMsg, WireReader, WireWriter, FLAG_AUTH, FLAG_TRACE, FRAME_HEADER_BYTES, MAX_PAYLOAD_BYTES,
    TRACE_CTX_BYTES, WIRE_MAGIC, WIRE_VERSION,
};
