//! The wire codec: how [`Handler`](crate::Handler) messages travel over a
//! real network.
//!
//! The simulation backends carry handler messages as plain Rust values —
//! a `send` hands the payload to the host, the host hands it to the
//! receiver's callback, and the `bits` argument merely *models* a wire
//! size. A socket host (`gossip-node`) has no such luxury: the payload
//! must round-trip through bytes, and the bytes come off an untrusted
//! datagram socket. This module is that boundary:
//!
//! * [`WireMsg`] — encode/decode for a protocol's message type. The
//!   workspace's `serde` is an offline no-op shim (see `DESIGN.md` §9), so
//!   the data model is hand-rolled: fixed-width little-endian primitives
//!   through a [`WireWriter`]/[`WireReader`] pair, with blanket impls for
//!   the shapes protocol messages are built from (integers, floats,
//!   `Vec`, tuples, `Option`, [`NodeId`]).
//! * **Frames** — one datagram is one frame: a fixed header (magic,
//!   version, sender id, payload length) followed by exactly
//!   `payload length` bytes of `WireMsg`-encoded payload. See
//!   [`encode_frame`]/[`decode_frame`].
//!
//! The decoder is total: any input — truncated mid-header, truncated
//! mid-payload, oversized, version-skewed, trailing garbage, absurd
//! collection lengths — produces a [`WireError`], never a panic and never
//! an attempt to allocate what the length field claims before the bytes
//! are actually there. A node must be able to eat arbitrary datagrams off
//! the network and shrug.

use crate::auth::{AuthKey, AUTH_TAG_BYTES};
use crate::node::NodeId;
use gossip_obs::TraceCtx;
use std::fmt;

/// First two bytes of every frame (little-endian on the wire). Chosen to
/// be unlikely as the start of stray ASCII traffic.
pub const WIRE_MAGIC: u16 = 0xCA75;

/// Current wire-format version. Bump on any incompatible layout change;
/// the decoder rejects every other version.
pub const WIRE_VERSION: u8 = 1;

/// Frame header size in bytes: magic (2) + version (1) + flags (1) +
/// sender id (4) + payload length (4).
pub const FRAME_HEADER_BYTES: usize = 12;

/// Flags bit: the header is followed by a trace context (trace id `u64`
/// plus hop `u8`) before the payload. Frames without the bit carry no extra
/// bytes and are byte-identical to version-1 frames from builds that
/// predate tracing — the feature is opt-in per frame, not a version bump.
pub const FLAG_TRACE: u8 = 0x01;

/// Flags bit: the frame is authenticated — [`AUTH_TAG_BYTES`] of
/// truncated HMAC-SHA256 (keyed by the cluster [`AuthKey`]) follow the
/// header and any trace context, covering every frame byte except the tag
/// itself. Like [`FLAG_TRACE`], the bit is opt-in per frame: frames
/// without it are byte-identical to the unauthenticated format.
pub const FLAG_AUTH: u8 = 0x02;

/// All flags bits this build understands. Unknown bits are rejected: a
/// flag may imply extra header bytes (as [`FLAG_TRACE`] and [`FLAG_AUTH`]
/// do), so a decoder that ignored one would misparse everything after it.
pub const KNOWN_FLAGS: u8 = FLAG_TRACE | FLAG_AUTH;

/// Extra bytes a [`FLAG_TRACE`] frame carries: trace id (8) + hop (1).
pub const TRACE_CTX_BYTES: usize = 9;

/// Hard ceiling on a frame's payload length, chosen so that header +
/// payload always fits a single unfragmented-at-the-API UDP datagram
/// (65 507 bytes of UDP payload max). The decoder rejects length fields
/// beyond this *before* trusting them.
pub const MAX_PAYLOAD_BYTES: usize = 65_000;

/// Everything that can be wrong with bytes off the wire.
///
/// Every variant is a *rejection*, not a crash: the decoder returns these
/// for arbitrary input and a socket host counts them and moves on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the value being decoded did: the decoder
    /// asked for `need` bytes when only `have` remained.
    Truncated {
        /// Bytes the failing read requested (in total, not the shortfall).
        need: usize,
        /// Bytes actually remaining.
        have: usize,
    },
    /// The first two bytes are not [`WIRE_MAGIC`] — not one of ours.
    BadMagic {
        /// The magic actually found.
        found: u16,
    },
    /// The frame's version byte differs from [`WIRE_VERSION`].
    VersionMismatch {
        /// The version actually found.
        found: u8,
    },
    /// The header's length field exceeds [`MAX_PAYLOAD_BYTES`] (or the
    /// datagram's own size): rejected before any allocation trusts it.
    Oversized {
        /// The claimed payload length.
        claimed: usize,
        /// The largest length that would have been accepted.
        limit: usize,
    },
    /// The payload decoded cleanly but did not consume every payload
    /// byte — a length/content mismatch, so the frame is rejected rather
    /// than silently ignoring the tail.
    TrailingBytes {
        /// Unconsumed payload bytes.
        extra: usize,
    },
    /// An enum tag byte holds a value the message type does not define.
    BadTag {
        /// The offending tag.
        tag: u8,
    },
    /// A collection length field claims more elements than the remaining
    /// bytes could possibly encode — rejected before allocating.
    BadLength {
        /// The claimed element count.
        claimed: usize,
    },
    /// The flags byte carries a bit this build does not understand (see
    /// [`KNOWN_FLAGS`]): the frame cannot be parsed safely.
    BadFlags {
        /// The flags byte actually found.
        found: u8,
    },
    /// The frame carries [`FLAG_AUTH`] but its tag does not verify under
    /// the receiver's key — a tampered frame, a truncation that happened
    /// to keep the layout parseable, or a sender holding a different key.
    BadAuthTag,
    /// The receiver requires authenticated frames (it holds an
    /// [`AuthKey`]) but the frame arrived bare — a legacy or hostile
    /// sender talking to an auth-required host.
    AuthRequired,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            WireError::Truncated { need, have } => {
                write!(f, "truncated frame: read wanted {need} bytes, had {have}")
            }
            WireError::BadMagic { found } => write!(f, "bad frame magic {found:#06x}"),
            WireError::VersionMismatch { found } => {
                write!(f, "wire version {found} (this build speaks {WIRE_VERSION})")
            }
            WireError::Oversized { claimed, limit } => {
                write!(f, "payload length {claimed} exceeds limit {limit}")
            }
            WireError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing payload bytes after decode")
            }
            WireError::BadTag { tag } => write!(f, "unknown enum tag {tag}"),
            WireError::BadLength { claimed } => {
                write!(
                    f,
                    "collection length {claimed} cannot fit the remaining bytes"
                )
            }
            WireError::BadFlags { found } => {
                write!(
                    f,
                    "unknown flags {found:#04x} (this build understands {KNOWN_FLAGS:#04x})"
                )
            }
            WireError::BadAuthTag => write!(f, "frame auth tag failed verification"),
            WireError::AuthRequired => {
                write!(f, "unauthenticated frame at an auth-required receiver")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Append-only byte sink for encoding. All integers are little-endian.
#[derive(Debug, Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// An empty writer.
    pub fn new() -> Self {
        WireWriter::default()
    }

    /// The bytes written so far.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `u16` (little-endian).
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u32` (little-endian).
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64` (little-endian).
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `f64` as its IEEE-754 bit pattern (bit-exact round-trip,
    /// NaN payloads included).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Append raw bytes verbatim.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }
}

/// Bounds-checked cursor over received bytes for decoding.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// A reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                need: n,
                have: self.remaining(),
            });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Read one byte.
    pub fn take_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u16`.
    pub fn take_u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Read a little-endian `u32`.
    pub fn take_u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a little-endian `u64`.
    pub fn take_u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read an `f64` from its bit pattern.
    pub fn take_f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    /// Validate a collection length field against the bytes that remain:
    /// `claimed` elements of at least `min_elem_bytes` each must fit. This
    /// is what keeps a hostile length field from driving a huge allocation.
    pub fn check_len(&self, claimed: usize, min_elem_bytes: usize) -> Result<(), WireError> {
        let fits = claimed
            .checked_mul(min_elem_bytes.max(1))
            .is_some_and(|total| total <= self.remaining());
        if fits {
            Ok(())
        } else {
            Err(WireError::BadLength { claimed })
        }
    }
}

/// A message type that can cross a real wire. Implemented by every
/// protocol message a socket host can carry; the simulation backends never
/// call it.
///
/// The contract the property suite pins: `decode(encode(m)) == m` for all
/// values, and `decode` returns `Err` (never panics) on arbitrary bytes.
pub trait WireMsg: Sized {
    /// Append this value's encoding to `w`.
    fn encode(&self, w: &mut WireWriter);

    /// Decode one value, advancing the reader past exactly the bytes
    /// [`encode`](WireMsg::encode) produced.
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError>;

    /// Convenience: encode into a fresh byte vector.
    fn to_wire_bytes(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        self.encode(&mut w);
        w.into_bytes()
    }
}

impl WireMsg for u8 {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u8(*self);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.take_u8()
    }
}

impl WireMsg for u16 {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u16(*self);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.take_u16()
    }
}

impl WireMsg for u32 {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u32(*self);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.take_u32()
    }
}

impl WireMsg for u64 {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u64(*self);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.take_u64()
    }
}

impl WireMsg for f64 {
    fn encode(&self, w: &mut WireWriter) {
        w.put_f64(*self);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.take_f64()
    }
}

impl WireMsg for bool {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u8(u8::from(*self));
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(WireError::BadTag { tag }),
        }
    }
}

impl WireMsg for NodeId {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u32(self.0);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(NodeId(r.take_u32()?))
    }
}

impl<T: WireMsg> WireMsg for Vec<T> {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u32(self.len() as u32);
        for item in self {
            item.encode(w);
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let len = r.take_u32()? as usize;
        // Every element costs at least one byte on the wire, so the length
        // field is validated against the remaining buffer before any
        // allocation happens.
        r.check_len(len, 1)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<A: WireMsg, B: WireMsg> WireMsg for (A, B) {
    fn encode(&self, w: &mut WireWriter) {
        self.0.encode(w);
        self.1.encode(w);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl<A: WireMsg, B: WireMsg, C: WireMsg> WireMsg for (A, B, C) {
    fn encode(&self, w: &mut WireWriter) {
        self.0.encode(w);
        self.1.encode(w);
        self.2.encode(w);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok((A::decode(r)?, B::decode(r)?, C::decode(r)?))
    }
}

impl<T: WireMsg> WireMsg for Option<T> {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.encode(w);
            }
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.take_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            tag => Err(WireError::BadTag { tag }),
        }
    }
}

/// Encode one frame: header ([`WIRE_MAGIC`], [`WIRE_VERSION`], sender id,
/// payload length) followed by the encoded payload.
///
/// # Panics
/// Panics if the encoded payload exceeds [`MAX_PAYLOAD_BYTES`] — that is a
/// protocol-design bug (a message type too large for one datagram), not a
/// runtime condition, and it must fail loudly at the sender rather than be
/// silently rejected by every receiver.
pub fn encode_frame<M: WireMsg>(from: NodeId, msg: &M) -> Vec<u8> {
    let payload = msg.to_wire_bytes();
    assert!(
        payload.len() <= MAX_PAYLOAD_BYTES,
        "encoded payload ({} bytes) exceeds the {}-byte frame limit",
        payload.len(),
        MAX_PAYLOAD_BYTES
    );
    frame_with_payload(from, &payload)
}

/// Wrap an already-encoded payload in a frame header. The seam that lets
/// a sender encode once, *check the size itself*, and decide what to do
/// with an oversize payload (the socket host counts and drops it —
/// `NodeStats::send_oversize` — instead of panicking mid-protocol or
/// handing the kernel a datagram it will reject with a confusing OS
/// error). Callers must have checked `payload.len()` against
/// [`MAX_PAYLOAD_BYTES`]; this function `debug_assert!`s it.
pub fn frame_with_payload(from: NodeId, payload: &[u8]) -> Vec<u8> {
    frame_with_payload_traced(from, TraceCtx::NONE, payload)
}

/// [`frame_with_payload`] with a causal context. The absent context
/// produces a frame byte-identical to an untraced one (flags 0, no extra
/// bytes); a real context sets [`FLAG_TRACE`] and carries
/// [`TRACE_CTX_BYTES`] of trace id + hop between the header and the
/// payload. The length field counts the payload only.
pub fn frame_with_payload_traced(from: NodeId, ctx: TraceCtx, payload: &[u8]) -> Vec<u8> {
    seal_frame(from, ctx, None, payload)
}

/// The full framing seam: [`frame_with_payload_traced`] plus optional
/// authentication. With `key = None` the output is byte-identical to the
/// unauthenticated encoders (down to flags 0 when the context is also
/// absent). With a key, the frame sets [`FLAG_AUTH`] and splices
/// [`AUTH_TAG_BYTES`] of truncated HMAC-SHA256 between the trace context
/// (if any) and the payload; the tag covers every frame byte *except
/// itself* — header, trace context, and payload — so any post-seal
/// tampering (including the length field and sender id) invalidates it.
/// The length field counts the payload only, as always.
pub fn seal_frame(from: NodeId, ctx: TraceCtx, key: Option<&AuthKey>, payload: &[u8]) -> Vec<u8> {
    debug_assert!(
        payload.len() <= MAX_PAYLOAD_BYTES,
        "caller must reject oversize payloads before framing"
    );
    let mut flags = 0u8;
    if ctx.is_some() {
        flags |= FLAG_TRACE;
    }
    if key.is_some() {
        flags |= FLAG_AUTH;
    }
    let mut w = WireWriter::new();
    w.put_u16(WIRE_MAGIC);
    w.put_u8(WIRE_VERSION);
    w.put_u8(flags);
    w.put_u32(from.0);
    w.put_u32(payload.len() as u32);
    if ctx.is_some() {
        w.put_u64(ctx.trace_id);
        w.put_u8(ctx.hop);
    }
    let mut frame = w.into_bytes();
    if let Some(key) = key {
        // Tag over header+context so far, then the payload that follows
        // the tag on the wire — exactly the bytes a verifier can see.
        let tag = key.tag_parts(&[&frame, payload]);
        frame.extend_from_slice(&tag);
    }
    frame.extend_from_slice(payload);
    frame
}

/// [`encode_frame_traced`] with optional authentication (see
/// [`seal_frame`] for the layout).
///
/// # Panics
/// Panics on oversize payloads, like [`encode_frame`].
pub fn encode_frame_sealed<M: WireMsg>(
    from: NodeId,
    ctx: TraceCtx,
    key: Option<&AuthKey>,
    msg: &M,
) -> Vec<u8> {
    let payload = msg.to_wire_bytes();
    assert!(
        payload.len() <= MAX_PAYLOAD_BYTES,
        "encoded payload ({} bytes) exceeds the {}-byte frame limit",
        payload.len(),
        MAX_PAYLOAD_BYTES
    );
    seal_frame(from, ctx, key, &payload)
}

/// [`encode_frame`] with a causal context (see
/// [`frame_with_payload_traced`] for the layout).
///
/// # Panics
/// Panics on oversize payloads, like [`encode_frame`].
pub fn encode_frame_traced<M: WireMsg>(from: NodeId, ctx: TraceCtx, msg: &M) -> Vec<u8> {
    let payload = msg.to_wire_bytes();
    assert!(
        payload.len() <= MAX_PAYLOAD_BYTES,
        "encoded payload ({} bytes) exceeds the {}-byte frame limit",
        payload.len(),
        MAX_PAYLOAD_BYTES
    );
    frame_with_payload_traced(from, ctx, &payload)
}

/// Decode one frame: validates magic, version and the length field, then
/// decodes the payload and requires it to consume every payload byte.
/// Returns the sender id carried in the header and the payload.
///
/// Total over arbitrary input — every failure is a [`WireError`].
pub fn decode_frame<M: WireMsg>(buf: &[u8]) -> Result<(NodeId, M), WireError> {
    let (from, _ctx, msg) = decode_frame_traced(buf)?;
    Ok((from, msg))
}

/// [`decode_frame`] that also surfaces the frame's causal context —
/// [`TraceCtx::NONE`] for untraced frames. Total over arbitrary input:
/// unknown flag bits are [`WireError::BadFlags`], a tagged-but-truncated
/// context is [`WireError::Truncated`].
///
/// Equivalent to [`decode_frame_sealed`] with no key: authenticated
/// frames are *accepted* (the tag is skipped, not verified) so a keyless
/// node can interoperate with a keyed cluster, mirroring how untraced
/// decoders accept traced frames.
pub fn decode_frame_traced<M: WireMsg>(buf: &[u8]) -> Result<(NodeId, TraceCtx, M), WireError> {
    decode_frame_sealed(buf, None)
}

/// The full decoding seam: [`decode_frame_traced`] plus authentication
/// policy. Total over arbitrary input, like every decoder here.
///
/// * `key = None` — legacy behaviour: bare frames decode as before and
///   [`FLAG_AUTH`] frames are accepted with the tag skipped (a keyless
///   receiver cannot verify, and rejecting would partition mixed
///   clusters mid-rollout).
/// * `key = Some` — the receiver *requires* authentication: a bare frame
///   is [`WireError::AuthRequired`], and a tagged frame whose tag does
///   not verify over the received bytes (header, trace context, payload —
///   everything but the tag) is [`WireError::BadAuthTag`], as is a tag
///   region cut short. Verification happens before payload decode, so a
///   forged frame never reaches the message parser.
pub fn decode_frame_sealed<M: WireMsg>(
    buf: &[u8],
    key: Option<&AuthKey>,
) -> Result<(NodeId, TraceCtx, M), WireError> {
    let mut r = WireReader::new(buf);
    let magic = r.take_u16()?;
    if magic != WIRE_MAGIC {
        return Err(WireError::BadMagic { found: magic });
    }
    let version = r.take_u8()?;
    if version != WIRE_VERSION {
        return Err(WireError::VersionMismatch { found: version });
    }
    let flags = r.take_u8()?;
    if flags & !KNOWN_FLAGS != 0 {
        return Err(WireError::BadFlags { found: flags });
    }
    let from = NodeId(r.take_u32()?);
    let claimed = r.take_u32()? as usize;
    if claimed > MAX_PAYLOAD_BYTES {
        return Err(WireError::Oversized {
            claimed,
            limit: MAX_PAYLOAD_BYTES,
        });
    }
    let ctx = if flags & FLAG_TRACE != 0 {
        let trace_id = r.take_u64()?;
        let hop = r.take_u8()?;
        TraceCtx { trace_id, hop }
    } else {
        TraceCtx::NONE
    };
    if flags & FLAG_AUTH != 0 {
        // The tag sits between the (optional) trace context and the
        // payload; its offset is fixed by the flags alone.
        let tag_start = buf.len() - r.remaining();
        // A frame claiming authentication without a whole tag is an auth
        // failure, not mere truncation: every mutilation of the tag
        // region — flipped, cut short, missing — reads as one signal
        // (`auth_reject` at the host), whatever shape the forgery took.
        let tag = r.take(AUTH_TAG_BYTES).map_err(|_| WireError::BadAuthTag)?;
        if let Some(key) = key {
            let covered_head = &buf[..tag_start];
            let covered_tail = &buf[tag_start + AUTH_TAG_BYTES..];
            if !key.verify_parts(&[covered_head, covered_tail], tag) {
                return Err(WireError::BadAuthTag);
            }
        }
    } else if key.is_some() {
        return Err(WireError::AuthRequired);
    }
    if claimed != r.remaining() {
        // A datagram is one frame: the payload must fill the rest exactly.
        // Shorter is truncation; longer is trailing garbage.
        if claimed > r.remaining() {
            return Err(WireError::Truncated {
                need: claimed,
                have: r.remaining(),
            });
        }
        return Err(WireError::TrailingBytes {
            extra: r.remaining() - claimed,
        });
    }
    let msg = M::decode(&mut r)?;
    if r.remaining() != 0 {
        return Err(WireError::TrailingBytes {
            extra: r.remaining(),
        });
    }
    Ok((from, ctx, msg))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = WireWriter::new();
        0xABu8.encode(&mut w);
        0xBEEFu16.encode(&mut w);
        0xDEAD_BEEFu32.encode(&mut w);
        0x0123_4567_89AB_CDEFu64.encode(&mut w);
        (-1234.5678f64).encode(&mut w);
        true.encode(&mut w);
        NodeId::new(17).encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert_eq!(u8::decode(&mut r), Ok(0xAB));
        assert_eq!(u16::decode(&mut r), Ok(0xBEEF));
        assert_eq!(u32::decode(&mut r), Ok(0xDEAD_BEEF));
        assert_eq!(u64::decode(&mut r), Ok(0x0123_4567_89AB_CDEF));
        assert_eq!(f64::decode(&mut r), Ok(-1234.5678));
        assert_eq!(bool::decode(&mut r), Ok(true));
        assert_eq!(NodeId::decode(&mut r), Ok(NodeId::new(17)));
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn composites_round_trip() {
        type Composite = (u32, Vec<(NodeId, f64)>, Option<u64>);
        let value: Composite = (
            7,
            vec![(NodeId::new(1), 1.5), (NodeId::new(2), f64::NEG_INFINITY)],
            Some(99),
        );
        let bytes = value.to_wire_bytes();
        let mut r = WireReader::new(&bytes);
        assert_eq!(Composite::decode(&mut r), Ok(value));
        assert_eq!(r.remaining(), 0);

        let none: Option<u64> = None;
        let bytes = none.to_wire_bytes();
        let mut r = WireReader::new(&bytes);
        assert_eq!(Option::<u64>::decode(&mut r), Ok(None));
    }

    #[test]
    fn nan_bit_patterns_survive() {
        let weird = f64::from_bits(0x7FF8_0000_0000_1234);
        let bytes = weird.to_wire_bytes();
        let decoded = f64::decode(&mut WireReader::new(&bytes)).unwrap();
        assert_eq!(decoded.to_bits(), weird.to_bits());
    }

    #[test]
    fn frames_round_trip() {
        let msg: Vec<u64> = vec![3, 1, 4, 1, 5];
        let frame = encode_frame(NodeId::new(9), &msg);
        assert_eq!(frame.len(), FRAME_HEADER_BYTES + msg.to_wire_bytes().len());
        let (from, decoded): (NodeId, Vec<u64>) = decode_frame(&frame).unwrap();
        assert_eq!(from, NodeId::new(9));
        assert_eq!(decoded, msg);
    }

    #[test]
    fn truncated_frames_error_at_every_cut() {
        let frame = encode_frame(NodeId::new(3), &vec![1u64, 2, 3]);
        for cut in 0..frame.len() {
            let err = decode_frame::<Vec<u64>>(&frame[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    WireError::Truncated { .. } | WireError::BadLength { .. }
                ),
                "cut at {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn version_and_magic_mismatches_are_rejected() {
        let mut frame = encode_frame(NodeId::new(0), &42u64);
        frame[2] = WIRE_VERSION + 1;
        assert_eq!(
            decode_frame::<u64>(&frame),
            Err(WireError::VersionMismatch {
                found: WIRE_VERSION + 1
            })
        );
        let mut frame = encode_frame(NodeId::new(0), &42u64);
        frame[0] ^= 0xFF;
        assert!(matches!(
            decode_frame::<u64>(&frame),
            Err(WireError::BadMagic { .. })
        ));
    }

    #[test]
    fn oversized_length_fields_are_rejected_before_allocation() {
        // A frame whose header claims a payload far beyond the limit.
        let mut w = WireWriter::new();
        w.put_u16(WIRE_MAGIC);
        w.put_u8(WIRE_VERSION);
        w.put_u8(0);
        w.put_u32(0);
        w.put_u32(u32::MAX);
        let err = decode_frame::<u64>(&w.into_bytes()).unwrap_err();
        assert!(matches!(err, WireError::Oversized { .. }));

        // A vector whose length field claims more elements than the bytes
        // behind it could hold.
        let mut w = WireWriter::new();
        w.put_u32(u32::MAX);
        w.put_u64(1);
        let err = Vec::<u64>::decode(&mut WireReader::new(&w.into_bytes())).unwrap_err();
        assert_eq!(
            err,
            WireError::BadLength {
                claimed: u32::MAX as usize
            }
        );
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut frame = encode_frame(NodeId::new(1), &7u64);
        frame.push(0xFF);
        assert!(matches!(
            decode_frame::<u64>(&frame),
            Err(WireError::TrailingBytes { .. })
        ));
        // Payload shorter than its content claims: the inner decode sees
        // trailing bytes *inside* the declared payload.
        let frame = encode_frame(NodeId::new(1), &(7u64, 8u64));
        assert!(decode_frame::<u64>(&frame).is_err());
    }

    #[test]
    fn errors_display_usefully() {
        let errors: Vec<Box<dyn std::error::Error>> = vec![
            Box::new(WireError::Truncated { need: 8, have: 3 }),
            Box::new(WireError::BadMagic { found: 0x1234 }),
            Box::new(WireError::VersionMismatch { found: 9 }),
            Box::new(WireError::Oversized {
                claimed: 1 << 30,
                limit: MAX_PAYLOAD_BYTES,
            }),
            Box::new(WireError::TrailingBytes { extra: 4 }),
            Box::new(WireError::BadTag { tag: 7 }),
            Box::new(WireError::BadLength { claimed: 1 << 40 }),
            Box::new(WireError::BadFlags { found: 0x80 }),
            Box::new(WireError::BadAuthTag),
            Box::new(WireError::AuthRequired),
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn traced_frames_round_trip_and_untraced_frames_are_unchanged() {
        let msg = vec![1u64, 2, 3];
        let ctx = TraceCtx {
            trace_id: 0x0123_4567_89AB_CDEF,
            hop: 3,
        };
        let traced = encode_frame_traced(NodeId::new(9), ctx, &msg);
        assert_eq!(
            traced.len(),
            FRAME_HEADER_BYTES + TRACE_CTX_BYTES + msg.to_wire_bytes().len()
        );
        assert_eq!(traced[3], FLAG_TRACE);
        let (from, got_ctx, decoded): (NodeId, TraceCtx, Vec<u64>) =
            decode_frame_traced(&traced).unwrap();
        assert_eq!(from, NodeId::new(9));
        assert_eq!(got_ctx, ctx);
        assert_eq!(decoded, msg);

        // The absent context produces a frame byte-identical to the
        // untraced encoder's — the version-compatibility contract.
        let plain = encode_frame_traced(NodeId::new(9), TraceCtx::NONE, &msg);
        assert_eq!(plain, encode_frame(NodeId::new(9), &msg));
        let (_, got_ctx, _): (NodeId, TraceCtx, Vec<u64>) = decode_frame_traced(&plain).unwrap();
        assert!(got_ctx.is_none());

        // The untraced decoder accepts traced frames (drops the context).
        let (from, decoded): (NodeId, Vec<u64>) = decode_frame(&traced).unwrap();
        assert_eq!(from, NodeId::new(9));
        assert_eq!(decoded, msg);
    }

    #[test]
    fn unknown_flag_bits_are_rejected() {
        let mut frame = encode_frame(NodeId::new(1), &7u64);
        frame[3] = 0x04; // a bit this build does not define
        assert_eq!(
            decode_frame::<u64>(&frame),
            Err(WireError::BadFlags { found: 0x04 })
        );
        let mut frame = encode_frame_traced(
            NodeId::new(1),
            TraceCtx {
                trace_id: 5,
                hop: 0,
            },
            &7u64,
        );
        frame[3] |= 0x80;
        assert!(matches!(
            decode_frame::<u64>(&frame),
            Err(WireError::BadFlags { found }) if found == 0x81
        ));
    }

    #[test]
    fn truncated_traced_frames_error_at_every_cut() {
        let ctx = TraceCtx {
            trace_id: 42,
            hop: 1,
        };
        let frame = encode_frame_traced(NodeId::new(3), ctx, &vec![1u64, 2, 3]);
        for cut in 0..frame.len() {
            let err = decode_frame_traced::<Vec<u64>>(&frame[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    WireError::Truncated { .. } | WireError::BadLength { .. }
                ),
                "cut at {cut} gave {err:?}"
            );
        }
        // A frame that claims FLAG_TRACE but ends inside the context.
        let mut w = WireWriter::new();
        w.put_u16(WIRE_MAGIC);
        w.put_u8(WIRE_VERSION);
        w.put_u8(FLAG_TRACE);
        w.put_u32(0);
        w.put_u32(0); // empty payload...
        w.put_u32(0xDEAD); // ...but only 4 of the 9 context bytes
        assert!(matches!(
            decode_frame_traced::<u64>(&w.into_bytes()),
            Err(WireError::Truncated { .. })
        ));
    }

    fn test_key() -> AuthKey {
        AuthKey::from_passphrase("wire-tests")
    }

    #[test]
    fn sealed_frames_round_trip_with_and_without_trace() {
        let key = test_key();
        let msg = vec![6u64, 28, 496];
        let ctx = TraceCtx {
            trace_id: 0xFEED_FACE,
            hop: 7,
        };

        let sealed = encode_frame_sealed(NodeId::new(4), ctx, Some(&key), &msg);
        assert_eq!(sealed[3], FLAG_TRACE | FLAG_AUTH);
        assert_eq!(
            sealed.len(),
            FRAME_HEADER_BYTES + TRACE_CTX_BYTES + AUTH_TAG_BYTES + msg.to_wire_bytes().len()
        );
        let (from, got_ctx, decoded): (NodeId, TraceCtx, Vec<u64>) =
            decode_frame_sealed(&sealed, Some(&key)).unwrap();
        assert_eq!(from, NodeId::new(4));
        assert_eq!(got_ctx, ctx);
        assert_eq!(decoded, msg);

        let sealed = encode_frame_sealed(NodeId::new(4), TraceCtx::NONE, Some(&key), &msg);
        assert_eq!(sealed[3], FLAG_AUTH);
        assert_eq!(
            sealed.len(),
            FRAME_HEADER_BYTES + AUTH_TAG_BYTES + msg.to_wire_bytes().len()
        );
        let (from, got_ctx, decoded): (NodeId, TraceCtx, Vec<u64>) =
            decode_frame_sealed(&sealed, Some(&key)).unwrap();
        assert_eq!(from, NodeId::new(4));
        assert!(got_ctx.is_none());
        assert_eq!(decoded, msg);
    }

    #[test]
    fn keyless_sealing_is_byte_identical_to_legacy_encoders() {
        let msg = vec![1u64, 2, 3];
        let ctx = TraceCtx {
            trace_id: 99,
            hop: 2,
        };
        assert_eq!(
            encode_frame_sealed(NodeId::new(9), TraceCtx::NONE, None, &msg),
            encode_frame(NodeId::new(9), &msg)
        );
        assert_eq!(
            encode_frame_sealed(NodeId::new(9), ctx, None, &msg),
            encode_frame_traced(NodeId::new(9), ctx, &msg)
        );
        assert_eq!(
            seal_frame(NodeId::new(9), TraceCtx::NONE, None, &[1, 2, 3]),
            frame_with_payload(NodeId::new(9), &[1, 2, 3])
        );
    }

    #[test]
    fn keyless_receivers_accept_sealed_frames() {
        // Mixed-cluster interop: a node without a key skips the tag, like
        // an untraced decoder skipping a trace context.
        let key = test_key();
        let sealed = encode_frame_sealed(NodeId::new(2), TraceCtx::NONE, Some(&key), &77u64);
        let (from, decoded): (NodeId, u64) = decode_frame(&sealed).unwrap();
        assert_eq!(from, NodeId::new(2));
        assert_eq!(decoded, 77);
    }

    #[test]
    fn keyed_receivers_reject_bare_frames() {
        let key = test_key();
        let bare = encode_frame(NodeId::new(2), &77u64);
        assert_eq!(
            decode_frame_sealed::<u64>(&bare, Some(&key)),
            Err(WireError::AuthRequired)
        );
        let traced = encode_frame_traced(
            NodeId::new(2),
            TraceCtx {
                trace_id: 1,
                hop: 0,
            },
            &77u64,
        );
        assert_eq!(
            decode_frame_sealed::<u64>(&traced, Some(&key)),
            Err(WireError::AuthRequired)
        );
    }

    #[test]
    fn tampering_anywhere_invalidates_the_tag() {
        let key = test_key();
        let ctx = TraceCtx {
            trace_id: 123,
            hop: 1,
        };
        let sealed = encode_frame_sealed(NodeId::new(5), ctx, Some(&key), &vec![1u64, 2, 3]);
        // Flip one bit at every position that keeps the frame structurally
        // parseable (skip magic/version/flags/length: those fail their own
        // structural checks first, which is also fine — just not BadAuthTag).
        for byte in 0..sealed.len() {
            let mut evil = sealed.clone();
            evil[byte] ^= 0x01;
            let got = decode_frame_sealed::<Vec<u64>>(&evil, Some(&key));
            assert!(got.is_err(), "flipping byte {byte} was accepted");
        }
        // Sender id and payload flips specifically must be BadAuthTag: the
        // frame still parses, only the tag disagrees.
        for byte in [4usize, 5, 6, 7, sealed.len() - 1] {
            let mut evil = sealed.clone();
            evil[byte] ^= 0x01;
            assert_eq!(
                decode_frame_sealed::<Vec<u64>>(&evil, Some(&key)),
                Err(WireError::BadAuthTag),
                "byte {byte}"
            );
        }
    }

    #[test]
    fn wrong_key_and_truncated_tag_are_rejected() {
        let key = test_key();
        let other = AuthKey::from_passphrase("not-the-cluster-key");
        let sealed = encode_frame_sealed(NodeId::new(5), TraceCtx::NONE, Some(&key), &42u64);
        assert_eq!(
            decode_frame_sealed::<u64>(&sealed, Some(&other)),
            Err(WireError::BadAuthTag)
        );
        // Truncation at every cut is an error under a keyed decoder too.
        for cut in 0..sealed.len() {
            let err = decode_frame_sealed::<u64>(&sealed[..cut], Some(&key)).unwrap_err();
            assert!(
                !matches!(err, WireError::TrailingBytes { .. }),
                "cut at {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn auth_flag_without_tag_bytes_is_a_bad_tag() {
        let mut w = WireWriter::new();
        w.put_u16(WIRE_MAGIC);
        w.put_u8(WIRE_VERSION);
        w.put_u8(FLAG_AUTH);
        w.put_u32(0);
        w.put_u32(0); // empty payload...
        w.put_u32(0xBEEF); // ...but only 4 of the 16 tag bytes
        assert_eq!(
            decode_frame_sealed::<u64>(&w.into_bytes(), Some(&test_key())),
            Err(WireError::BadAuthTag)
        );
    }
}
