//! Frame authentication: in-tree SHA-256, HMAC-SHA256 and the cluster
//! [`AuthKey`].
//!
//! The socket host trusts the sender id in every frame header at
//! simulation grade — fine on loopback, not deployable. This module is
//! the dependency-free fix: a cluster shares one symmetric [`AuthKey`],
//! every frame carries a truncated HMAC-SHA256 tag over its header and
//! payload (the [`FLAG_AUTH`](crate::wire::FLAG_AUTH) extension), and a
//! keyed receiver rejects anything it cannot verify — counted
//! (`NodeStats::auth_reject`), never fatal, exactly like every other
//! hostile-input path in the stack.
//!
//! The build environment is offline (DESIGN.md §9), so the primitives are
//! implemented here rather than pulled from a crate: SHA-256 per FIPS
//! 180-4 and HMAC per RFC 2104, pinned against the FIPS examples and the
//! RFC 4231 HMAC-SHA-256 test vectors in the unit suite below. The tag is
//! truncated to [`AUTH_TAG_BYTES`] (128 bits) — RFC 2104 §5 truncation,
//! still far beyond what a datagram forger can search — to keep the
//! per-frame overhead at 16 bytes.
//!
//! What this does and does not give you: **authenticity and integrity**
//! of each frame under a shared cluster secret (a bit flip, a forged
//! sender id, an unkeyed attacker all fail the tag), but no
//! confidentiality (payloads travel in the clear) and no replay
//! protection (a verbatim captured frame verifies again; the protocols
//! themselves are idempotent max-merges, which is what makes that
//! tolerable). Key distribution is out of scope — pass the same
//! `--auth-key` to every node.

use std::fmt;

/// Bytes of truncated HMAC-SHA256 carried by an authenticated frame.
pub const AUTH_TAG_BYTES: usize = 16;

/// SHA-256 block size in bytes (the HMAC pad width).
const BLOCK_BYTES: usize = 64;

/// SHA-256 round constants (FIPS 180-4 §4.2.2).
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Streaming SHA-256 (FIPS 180-4). Incremental so HMAC's two passes never
/// concatenate buffers.
#[derive(Clone)]
struct Sha256 {
    state: [u32; 8],
    /// Bytes absorbed so far (for the length suffix).
    len: u64,
    block: [u8; BLOCK_BYTES],
    fill: usize,
}

impl Sha256 {
    fn new() -> Self {
        Sha256 {
            // FIPS 180-4 §5.3.3 initial hash value.
            state: [
                0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
                0x5be0cd19,
            ],
            len: 0,
            block: [0; BLOCK_BYTES],
            fill: 0,
        }
    }

    fn compress(&mut self) {
        let mut w = [0u32; 64];
        for (i, word) in w.iter_mut().take(16).enumerate() {
            *word = u32::from_be_bytes(self.block[4 * i..4 * i + 4].try_into().unwrap());
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        for (s, v) in self.state.iter_mut().zip([a, b, c, d, e, f, g, h]) {
            *s = s.wrapping_add(v);
        }
    }

    fn update(&mut self, mut data: &[u8]) {
        self.len += data.len() as u64;
        while !data.is_empty() {
            let take = (BLOCK_BYTES - self.fill).min(data.len());
            self.block[self.fill..self.fill + take].copy_from_slice(&data[..take]);
            self.fill += take;
            data = &data[take..];
            if self.fill == BLOCK_BYTES {
                self.compress();
                self.fill = 0;
            }
        }
    }

    fn finish(mut self) -> [u8; 32] {
        let bit_len = self.len * 8;
        self.update(&[0x80]);
        while self.fill != BLOCK_BYTES - 8 {
            self.update(&[0]);
        }
        // The length suffix via `update` would double-count into `len`,
        // but `bit_len` was latched first, so the padding is exact.
        self.block[BLOCK_BYTES - 8..].copy_from_slice(&bit_len.to_be_bytes());
        self.fill = BLOCK_BYTES;
        self.compress();
        let mut out = [0u8; 32];
        for (chunk, word) in out.chunks_exact_mut(4).zip(self.state) {
            chunk.copy_from_slice(&word.to_be_bytes());
        }
        out
    }
}

/// One-shot SHA-256 of `data`.
pub fn sha256(data: &[u8]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(data);
    h.finish()
}

/// HMAC-SHA256 over `data` with `key` (RFC 2104): keys longer than one
/// block are hashed first, shorter ones zero-padded.
pub fn hmac_sha256(key: &[u8], data: &[u8]) -> [u8; 32] {
    let mut key_block = [0u8; BLOCK_BYTES];
    if key.len() > BLOCK_BYTES {
        key_block[..32].copy_from_slice(&sha256(key));
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }
    let mut inner = Sha256::new();
    let ipad: Vec<u8> = key_block.iter().map(|b| b ^ 0x36).collect();
    inner.update(&ipad);
    inner.update(data);
    let inner_hash = inner.finish();
    let mut outer = Sha256::new();
    let opad: Vec<u8> = key_block.iter().map(|b| b ^ 0x5c).collect();
    outer.update(&opad);
    outer.update(&inner_hash);
    outer.finish()
}

/// The shared cluster secret that seals and verifies frames.
///
/// Every node of an authenticated cluster holds the same key; frames are
/// tagged with a truncated HMAC-SHA256 over their header and payload (see
/// [`seal_frame`](crate::wire::seal_frame)). Equality is deliberately not
/// derived — keys are compared only through tag verification.
#[derive(Clone)]
pub struct AuthKey {
    key: [u8; 32],
}

impl AuthKey {
    /// A key from 32 raw bytes.
    pub fn from_bytes(key: [u8; 32]) -> Self {
        AuthKey { key }
    }

    /// A key derived from a shared passphrase (its SHA-256). The
    /// deployment path: every node is started with the same
    /// `--auth-key <phrase>`.
    pub fn from_passphrase(phrase: &str) -> Self {
        AuthKey {
            key: sha256(phrase.as_bytes()),
        }
    }

    /// The truncated HMAC-SHA256 tag of `data` under this key.
    pub fn tag(&self, data: &[u8]) -> [u8; AUTH_TAG_BYTES] {
        self.tag_parts(&[data])
    }

    /// [`tag`](AuthKey::tag) over the concatenation of `parts` without
    /// materialising it — the frame sealer MACs "header ‖ payload" while
    /// the tag sits between them on the wire.
    pub fn tag_parts(&self, parts: &[&[u8]]) -> [u8; AUTH_TAG_BYTES] {
        // A 32-byte key always fits one block, so no pre-hash is needed.
        let mut key_block = [0u8; BLOCK_BYTES];
        key_block[..32].copy_from_slice(&self.key);
        let mut inner = Sha256::new();
        let ipad: Vec<u8> = key_block.iter().map(|b| b ^ 0x36).collect();
        inner.update(&ipad);
        for part in parts {
            inner.update(part);
        }
        let inner_hash = inner.finish();
        let mut outer = Sha256::new();
        let opad: Vec<u8> = key_block.iter().map(|b| b ^ 0x5c).collect();
        outer.update(&opad);
        outer.update(&inner_hash);
        let mac = outer.finish();
        let mut tag = [0u8; AUTH_TAG_BYTES];
        tag.copy_from_slice(&mac[..AUTH_TAG_BYTES]);
        tag
    }

    /// Whether `tag` is the valid tag of `data`. Compared without an
    /// early exit, so a byte-wise timing probe learns nothing about how
    /// far a forgery got.
    pub fn verify(&self, data: &[u8], tag: &[u8]) -> bool {
        self.verify_parts(&[data], tag)
    }

    /// [`verify`](AuthKey::verify) over the concatenation of `parts`.
    pub fn verify_parts(&self, parts: &[&[u8]], tag: &[u8]) -> bool {
        if tag.len() != AUTH_TAG_BYTES {
            return false;
        }
        let expect = self.tag_parts(parts);
        let mut diff = 0u8;
        for (a, b) in expect.iter().zip(tag) {
            diff |= a ^ b;
        }
        diff == 0
    }
}

impl fmt::Debug for AuthKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never print key material, not even in debug logs.
        f.write_str("AuthKey(..)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn sha256_matches_the_fips_examples() {
        // FIPS 180-4 example values plus the empty string.
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            hex(&sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
        // One million 'a's: exercises many compressions and the counter.
        let million = vec![b'a'; 1_000_000];
        assert_eq!(
            hex(&sha256(&million)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn sha256_padding_boundaries_are_exact() {
        // Lengths straddling the 55/56-byte padding split and the block
        // size itself — the classic off-by-one sites.
        for len in [54usize, 55, 56, 57, 63, 64, 65, 119, 120, 128] {
            let data = vec![0x5au8; len];
            let streamed = {
                let mut h = Sha256::new();
                for chunk in data.chunks(7) {
                    h.update(chunk);
                }
                h.finish()
            };
            assert_eq!(streamed, sha256(&data), "length {len}");
        }
    }

    #[test]
    fn hmac_matches_rfc_4231_vectors() {
        // Test case 1.
        assert_eq!(
            hex(&hmac_sha256(&[0x0b; 20], b"Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
        // Test case 2: a key shorter than the hash output.
        assert_eq!(
            hex(&hmac_sha256(b"Jefe", b"what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
        // Test case 3: 0xaa-keyed over 0xdd data.
        assert_eq!(
            hex(&hmac_sha256(&[0xaa; 20], &[0xdd; 50])),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
        // Test case 6: a key longer than one block (hashed first).
        assert_eq!(
            hex(&hmac_sha256(
                &[0xaa; 131],
                b"Test Using Larger Than Block-Size Key - Hash Key First"
            )),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
        // Test case 7: long key and long data together.
        assert_eq!(
            hex(&hmac_sha256(
                &[0xaa; 131],
                b"This is a test using a larger than block-size key and a larger than \
                  block-size data. The key needs to be hashed before being used by the \
                  HMAC algorithm."
            )),
            "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2"
        );
    }

    #[test]
    fn keys_tag_and_verify_and_reject_forgeries() {
        let key = AuthKey::from_passphrase("correct horse");
        let other = AuthKey::from_passphrase("correct horse!");
        let data = b"frame header and payload";
        let tag = key.tag(data);
        assert!(key.verify(data, &tag));
        assert!(!other.verify(data, &tag), "a different key must not verify");
        assert!(!key.verify(b"tampered payload", &tag));
        let mut flipped = tag;
        flipped[0] ^= 1;
        assert!(!key.verify(data, &flipped));
        assert!(!key.verify(data, &tag[..8]), "short tags never verify");
        assert!(!key.verify(data, &[]), "empty tags never verify");
    }

    #[test]
    fn tag_parts_agrees_with_the_concatenation_at_every_split() {
        let key = AuthKey::from_passphrase("split");
        let data: Vec<u8> = (0..150u8).collect();
        let whole = key.tag(&data);
        for cut in [0, 1, 63, 64, 65, 127, 128, 150] {
            let (a, b) = data.split_at(cut);
            assert_eq!(key.tag_parts(&[a, b]), whole, "split at {cut}");
            assert!(key.verify_parts(&[a, b], &whole));
        }
        assert_eq!(key.tag_parts(&[&data, &[]]), whole);
    }

    #[test]
    fn passphrase_and_byte_keys_agree() {
        let a = AuthKey::from_passphrase("s3cret");
        let b = AuthKey::from_bytes(sha256(b"s3cret"));
        let data = b"x";
        assert_eq!(a.tag(data), b.tag(data));
        // And the Debug impl never leaks material.
        assert_eq!(format!("{a:?}"), "AuthKey(..)");
    }
}
