//! Message and round accounting.
//!
//! The paper's evaluation metrics are **message complexity** (total number of
//! messages sent, counting lost messages) and **time complexity** (number of
//! synchronous rounds). `Metrics` tracks both, plus per-phase breakdowns,
//! dropped-message counts, total bits and the widest message observed (for
//! asserting the `O(log n + log s)` size bound of the model).

use crate::phase::Phase;
use serde::{Deserialize, Serialize};

/// Per-phase slice of the metrics, convenient for table rendering.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseBreakdown {
    /// The phase label.
    pub phase: Phase,
    /// Messages sent (including lost ones) in this phase.
    pub messages: u64,
    /// Messages that were dropped (link loss or dead endpoint).
    pub dropped: u64,
    /// Total bits sent in this phase.
    pub bits: u64,
}

/// Accumulated simulation metrics.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    messages: Vec<u64>,
    dropped: Vec<u64>,
    bits: Vec<u64>,
    rounds: u64,
    per_round_messages: Vec<u64>,
    current_round_messages: u64,
    max_message_bits: u32,
}

impl Metrics {
    /// Fresh, zeroed metrics.
    pub fn new() -> Self {
        Metrics {
            messages: vec![0; Phase::COUNT],
            dropped: vec![0; Phase::COUNT],
            bits: vec![0; Phase::COUNT],
            rounds: 0,
            per_round_messages: Vec::new(),
            current_round_messages: 0,
            max_message_bits: 0,
        }
    }

    fn ensure_capacity(&mut self) {
        if self.messages.len() < Phase::COUNT {
            self.messages.resize(Phase::COUNT, 0);
            self.dropped.resize(Phase::COUNT, 0);
            self.bits.resize(Phase::COUNT, 0);
        }
    }

    /// Record one message attempt (called by [`crate::Network::send`]).
    pub fn record_send(&mut self, phase: Phase, bits: u32, delivered: bool) {
        self.ensure_capacity();
        let i = phase.as_index();
        self.messages[i] += 1;
        self.bits[i] += u64::from(bits);
        if !delivered {
            self.dropped[i] += 1;
        }
        self.current_round_messages += 1;
        self.max_message_bits = self.max_message_bits.max(bits);
    }

    /// Close the current round: increments the round counter and starts a new
    /// per-round message bucket.
    pub fn advance_round(&mut self) {
        self.rounds += 1;
        self.per_round_messages.push(self.current_round_messages);
        self.current_round_messages = 0;
    }

    /// Number of completed rounds.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Total messages sent, over all phases, including lost messages.
    pub fn total_messages(&self) -> u64 {
        self.messages.iter().sum::<u64>()
    }

    /// Total messages dropped (lost in transit or sent to a crashed node).
    pub fn total_dropped(&self) -> u64 {
        self.dropped.iter().sum()
    }

    /// Total bits sent over all phases.
    pub fn total_bits(&self) -> u64 {
        self.bits.iter().sum()
    }

    /// Messages sent in a particular phase.
    pub fn messages_in(&self, phase: Phase) -> u64 {
        self.messages.get(phase.as_index()).copied().unwrap_or(0)
    }

    /// Dropped messages in a particular phase.
    pub fn dropped_in(&self, phase: Phase) -> u64 {
        self.dropped.get(phase.as_index()).copied().unwrap_or(0)
    }

    /// Bits sent in a particular phase.
    pub fn bits_in(&self, phase: Phase) -> u64 {
        self.bits.get(phase.as_index()).copied().unwrap_or(0)
    }

    /// The widest message (in bits) sent so far. Tests compare this against
    /// [`crate::SimConfig::message_bit_budget`] to check the model's
    /// `O(log n + log s)` bound.
    pub fn max_message_bits(&self) -> u32 {
        self.max_message_bits
    }

    /// Messages sent per completed round.
    pub fn per_round_messages(&self) -> &[u64] {
        &self.per_round_messages
    }

    /// Messages recorded since the last `advance_round` call.
    pub fn current_round_messages(&self) -> u64 {
        self.current_round_messages
    }

    /// Per-phase breakdown of all non-empty phases, in declaration order.
    pub fn breakdown(&self) -> Vec<PhaseBreakdown> {
        Phase::iter()
            .filter_map(|phase| {
                let messages = self.messages_in(phase);
                if messages == 0 {
                    None
                } else {
                    Some(PhaseBreakdown {
                        phase,
                        messages,
                        dropped: self.dropped_in(phase),
                        bits: self.bits_in(phase),
                    })
                }
            })
            .collect()
    }

    /// Merge another metrics object into this one (message counts and bits
    /// add; rounds add; per-round traces concatenate). Useful when a protocol
    /// is composed of sub-protocols that each ran on their own `Network`.
    pub fn merge(&mut self, other: &Metrics) {
        self.ensure_capacity();
        for i in 0..Phase::COUNT {
            self.messages[i] += other.messages.get(i).copied().unwrap_or(0);
            self.dropped[i] += other.dropped.get(i).copied().unwrap_or(0);
            self.bits[i] += other.bits.get(i).copied().unwrap_or(0);
        }
        self.rounds += other.rounds;
        self.per_round_messages
            .extend_from_slice(&other.per_round_messages);
        self.current_round_messages += other.current_round_messages;
        self.max_message_bits = self.max_message_bits.max(other.max_message_bits);
    }

    /// Reset everything to zero.
    pub fn reset(&mut self) {
        *self = Metrics::new();
    }

    /// Route these counters into an observability registry as the
    /// `gossip_*` families (per-phase label, non-empty phases only).
    /// Purely a read — calling it never perturbs the metrics themselves.
    pub fn fill_registry(&self, registry: &mut gossip_obs::Registry) {
        for row in self.breakdown() {
            let phase = row.phase.as_str();
            let labels = [("phase", phase)];
            registry.add_counter(
                "gossip_messages_total",
                "Messages sent per phase, lost ones included",
                &labels,
                row.messages,
            );
            registry.add_counter(
                "gossip_dropped_total",
                "Messages dropped per phase (loss, churn, bandwidth, deadline)",
                &labels,
                row.dropped,
            );
            registry.add_counter(
                "gossip_bits_total",
                "Modelled wire bits sent per phase",
                &labels,
                row.bits,
            );
        }
        registry.add_counter(
            "gossip_rounds_total",
            "Completed synchronous rounds",
            &[],
            self.rounds,
        );
        registry.set_gauge(
            "gossip_max_message_bits",
            "Widest message observed (bits)",
            &[],
            f64::from(self.max_message_bits),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        let m = Metrics::new();
        assert_eq!(m.total_messages(), 0);
        assert_eq!(m.total_dropped(), 0);
        assert_eq!(m.rounds(), 0);
        assert_eq!(m.max_message_bits(), 0);
        assert!(m.breakdown().is_empty());
    }

    #[test]
    fn record_send_updates_counts() {
        let mut m = Metrics::new();
        m.record_send(Phase::DrrProbe, 16, true);
        m.record_send(Phase::DrrProbe, 24, false);
        m.record_send(Phase::RootGossip, 40, true);
        assert_eq!(m.total_messages(), 3);
        assert_eq!(m.total_dropped(), 1);
        assert_eq!(m.messages_in(Phase::DrrProbe), 2);
        assert_eq!(m.dropped_in(Phase::DrrProbe), 1);
        assert_eq!(m.bits_in(Phase::DrrProbe), 40);
        assert_eq!(m.messages_in(Phase::RootGossip), 1);
        assert_eq!(m.max_message_bits(), 40);
        assert_eq!(m.total_bits(), 80);
    }

    #[test]
    fn rounds_and_per_round_trace() {
        let mut m = Metrics::new();
        m.record_send(Phase::Rumor, 8, true);
        m.record_send(Phase::Rumor, 8, true);
        m.advance_round();
        m.record_send(Phase::Rumor, 8, true);
        m.advance_round();
        m.advance_round(); // empty round
        assert_eq!(m.rounds(), 3);
        assert_eq!(m.per_round_messages(), &[2, 1, 0]);
        assert_eq!(m.current_round_messages(), 0);
    }

    #[test]
    fn breakdown_lists_only_used_phases() {
        let mut m = Metrics::new();
        m.record_send(Phase::Convergecast, 32, true);
        m.record_send(Phase::Broadcast, 16, false);
        let b = m.breakdown();
        assert_eq!(b.len(), 2);
        assert_eq!(b[0].phase, Phase::Convergecast);
        assert_eq!(b[0].messages, 1);
        assert_eq!(b[1].phase, Phase::Broadcast);
        assert_eq!(b[1].dropped, 1);
    }

    #[test]
    fn merge_adds_everything() {
        let mut a = Metrics::new();
        a.record_send(Phase::DrrProbe, 10, true);
        a.advance_round();
        let mut b = Metrics::new();
        b.record_send(Phase::DrrProbe, 20, false);
        b.record_send(Phase::Broadcast, 30, true);
        b.advance_round();
        b.advance_round();
        a.merge(&b);
        assert_eq!(a.total_messages(), 3);
        assert_eq!(a.total_dropped(), 1);
        assert_eq!(a.rounds(), 3);
        assert_eq!(a.messages_in(Phase::DrrProbe), 2);
        assert_eq!(a.messages_in(Phase::Broadcast), 1);
        assert_eq!(a.max_message_bits(), 30);
        assert_eq!(a.per_round_messages().len(), 3);
    }

    #[test]
    fn reset_clears_all() {
        let mut m = Metrics::new();
        m.record_send(Phase::Other, 8, true);
        m.advance_round();
        m.reset();
        assert_eq!(m, Metrics::new());
    }
}
