//! Helpers for message-size accounting, plus the workspace's shared
//! deterministic bit mixer.
//!
//! The model limits message length to `O(log n + log s)` bits, where `n` is
//! the network size and `s` the range of values (Section 2 of the paper).
//! Protocols construct message sizes from these helpers so that the bound
//! can be asserted in tests and tracked by [`crate::Metrics`].

/// Salt of the backends' setup/churn RNG stream (`seed ^ salt`): the
/// synchronous `Network`, the asynchronous engine and the sharded driver
/// all seed their initial-crash draws from it, which is what makes their
/// initial alive sets identical for the same [`SimConfig`](crate::SimConfig).
/// One definition on purpose — editing it anywhere means editing it
/// everywhere, or the backends silently desynchronize.
pub const SETUP_STREAM_SALT: u64 = 0x9e37_79b9_7f4a_7c15;

/// `ceil(log2(x))` for `x >= 1`; returns 0 for `x <= 1`.
#[inline]
pub fn ceil_log2(x: u64) -> u32 {
    if x <= 1 {
        0
    } else {
        64 - (x - 1).leading_zeros()
    }
}

/// Number of bits needed to address one of `n` nodes.
#[inline]
pub fn id_bits(n: usize) -> u32 {
    ceil_log2(n as u64).max(1)
}

/// Number of bits needed to represent a value drawn from a range of size
/// `range` (i.e. `log s` in the paper's notation). A floating-point payload
/// in the simulator is charged this logical width, not its in-memory width.
#[inline]
pub fn value_bits_for_range(range: f64) -> u32 {
    if !range.is_finite() || range <= 1.0 {
        1
    } else {
        ceil_log2(range.ceil() as u64).max(1)
    }
}

/// The SplitMix64 finalizer: a cheap, high-quality deterministic bit mixer.
///
/// The workspace's canonical tool for RNG-free per-node derived quantities —
/// signal base levels, timer stagger offsets, per-link biases: stable for
/// the whole run, independent of every RNG stream, and well spread. Feed it
/// a node index (optionally pre-multiplied by an odd constant and salted)
/// and use as many of the 64 output bits as needed.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn ceil_log2_known_values() {
        assert_eq!(ceil_log2(0), 0);
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(1024), 10);
        assert_eq!(ceil_log2(1025), 11);
        assert_eq!(ceil_log2(u64::MAX), 64);
    }

    #[test]
    fn id_bits_known_values() {
        assert_eq!(id_bits(1), 1);
        assert_eq!(id_bits(2), 1);
        assert_eq!(id_bits(1000), 10);
        assert_eq!(id_bits(1 << 20), 20);
    }

    #[test]
    fn mix64_spreads_and_is_pure() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            let m = mix64(i);
            assert_eq!(m, mix64(i), "pure function");
            seen.insert(m);
        }
        assert_eq!(seen.len(), 10_000, "no collisions on small inputs");
        // Sequential inputs decorrelate: roughly half the bits flip.
        let flips = (mix64(1) ^ mix64(2)).count_ones();
        assert!((16..=48).contains(&flips), "{flips} bits flipped");
    }

    #[test]
    fn value_bits_handles_degenerate_ranges() {
        assert_eq!(value_bits_for_range(0.0), 1);
        assert_eq!(value_bits_for_range(-5.0), 1);
        assert_eq!(value_bits_for_range(f64::NAN), 1);
        assert_eq!(value_bits_for_range(f64::INFINITY), 1);
        assert_eq!(value_bits_for_range(1.0), 1);
        assert_eq!(value_bits_for_range(256.0), 8);
    }

    proptest! {
        #[test]
        fn ceil_log2_is_tight(x in 1u64..=u64::MAX / 2) {
            let b = ceil_log2(x);
            // 2^b >= x
            prop_assert!(b == 64 || (1u128 << b) >= x as u128);
            // 2^(b-1) < x for x > 1
            if x > 1 {
                prop_assert!((1u128 << (b - 1)) < x as u128);
            }
        }

        #[test]
        fn id_bits_monotone(a in 1usize..100_000, b in 1usize..100_000) {
            if a <= b {
                prop_assert!(id_bits(a) <= id_bits(b));
            }
        }
    }
}
