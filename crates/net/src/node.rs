//! Node identifiers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A node address in the simulated network.
///
/// Node addresses are dense integers `0..n`. The paper assumes nodes have
/// unique addresses (Section 2); non-address-oblivious protocol steps (such
/// as forwarding a gossip message to one's tree root) use these addresses.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Create a node id from a dense index.
    ///
    /// # Panics
    /// Panics if `index` does not fit in a `u32`.
    #[inline]
    pub fn new(index: usize) -> Self {
        debug_assert!(index <= u32::MAX as usize, "node index out of range");
        NodeId(index as u32)
    }

    /// The dense index of this node (usable to index per-node state arrays).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<usize> for NodeId {
    #[inline]
    fn from(index: usize) -> Self {
        NodeId::new(index)
    }
}

impl From<NodeId> for usize {
    #[inline]
    fn from(id: NodeId) -> usize {
        id.index()
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn roundtrips_through_usize() {
        for i in [0usize, 1, 17, 65_535, 1_000_000] {
            let id = NodeId::new(i);
            assert_eq!(id.index(), i);
            assert_eq!(usize::from(id), i);
            assert_eq!(NodeId::from(i), id);
        }
    }

    #[test]
    fn ordering_follows_index() {
        assert!(NodeId::new(3) < NodeId::new(5));
        assert!(NodeId::new(5) > NodeId::new(3));
        assert_eq!(NodeId::new(4), NodeId::new(4));
    }

    #[test]
    fn usable_in_hash_sets() {
        let mut set = HashSet::new();
        set.insert(NodeId::new(1));
        set.insert(NodeId::new(2));
        set.insert(NodeId::new(1));
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn display_and_debug() {
        assert_eq!(format!("{}", NodeId::new(42)), "42");
        assert_eq!(format!("{:?}", NodeId::new(42)), "n42");
    }
}
