//! Simulation configuration (network size, seed, failure model, value range).

use crate::bits::{id_bits, value_bits_for_range};
use serde::{Deserialize, Serialize};

/// Configuration of a simulated network, mirroring the model of Section 2 of
/// the paper.
///
/// `SimConfig` is a plain value type with a builder-style API:
///
/// ```
/// use gossip_net::SimConfig;
/// let cfg = SimConfig::new(1 << 12)
///     .with_seed(42)
///     .with_loss_prob(0.05)
///     .with_initial_crash_prob(0.01)
///     .with_value_range(1e6);
/// assert_eq!(cfg.n, 4096);
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Number of nodes in the network (`n`).
    pub n: usize,
    /// Seed for all randomness in the simulation. Identical configurations
    /// with identical seeds produce identical runs.
    pub seed: u64,
    /// Probability `δ` that any individual message is lost in transit.
    /// The paper assumes `1/log n < δ < 1/8` for its analysis; the simulator
    /// accepts any value in `[0, 1)`.
    pub loss_prob: f64,
    /// Probability that a node crashes before the protocol starts. Crashed
    /// nodes never send and never receive (messages addressed to them are
    /// counted as sent but dropped).
    pub initial_crash_prob: f64,
    /// The size `s` of the range of node values; determines the `log s`
    /// component of the per-message bit budget.
    pub value_range: f64,
}

impl SimConfig {
    /// A configuration for `n` nodes with no failures and seed 0.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "network must contain at least one node");
        SimConfig {
            n,
            seed: 0,
            loss_prob: 0.0,
            initial_crash_prob: 0.0,
            value_range: (1u64 << 20) as f64,
        }
    }

    /// Set the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the per-message loss probability `δ`.
    ///
    /// # Panics
    /// Panics if `delta` is not in `[0, 1)`.
    pub fn with_loss_prob(mut self, delta: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&delta),
            "loss probability must lie in [0, 1), got {delta}"
        );
        self.loss_prob = delta;
        self
    }

    /// Set the initial crash probability.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1)`.
    pub fn with_initial_crash_prob(mut self, p: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "crash probability must lie in [0, 1), got {p}"
        );
        self.initial_crash_prob = p;
        self
    }

    /// Set the value range `s` (used only for message-size accounting).
    pub fn with_value_range(mut self, s: f64) -> Self {
        assert!(
            s.is_finite() && s > 0.0,
            "value range must be positive and finite"
        );
        self.value_range = s;
        self
    }

    /// Check every field against its documented domain. The builder methods
    /// enforce these invariants one by one; `validate` re-checks them all at
    /// once, which matters for configurations built by struct literal or
    /// deserialised from external input (sweep grids, CLI flags, ...).
    ///
    /// Note that `loss_prob` values *inside* `[0, 1)` but outside the
    /// paper's analysis window `1/log n < δ < 1/8` are **valid** — the
    /// simulator accepts them — they just void the paper's whp guarantees;
    /// see [`SimConfig::delta_in_analysis_window`].
    pub fn validate(&self) -> Result<(), String> {
        if self.n < 1 {
            return Err("network must contain at least one node".to_string());
        }
        if !(0.0..1.0).contains(&self.loss_prob) {
            return Err(format!(
                "loss probability must lie in [0, 1), got {}",
                self.loss_prob
            ));
        }
        if !(0.0..1.0).contains(&self.initial_crash_prob) {
            return Err(format!(
                "crash probability must lie in [0, 1), got {}",
                self.initial_crash_prob
            ));
        }
        if !(self.value_range.is_finite() && self.value_range > 0.0) {
            return Err(format!(
                "value range must be positive and finite, got {}",
                self.value_range
            ));
        }
        Ok(())
    }

    /// Whether `δ` lies inside the paper's analysis window
    /// `1/log n < δ < 1/8` (Section 2). Outside the window the simulator
    /// still runs, but Theorems 5–7 no longer promise their whp bounds —
    /// experiment code uses this to annotate such configurations.
    pub fn delta_in_analysis_window(&self) -> bool {
        let log_n = f64::from(self.log_n()).max(1.0);
        self.loss_prob > 1.0 / log_n && self.loss_prob < 0.125
    }

    /// `⌈log₂ n⌉`, the natural probe budget unit of the paper (`log n − 1`
    /// probes in Algorithm 1, `O(log n)` gossip rounds in Phase III, ...).
    pub fn log_n(&self) -> u32 {
        id_bits(self.n)
    }

    /// The per-message bit budget `c·(log n + log s)` of the model. The
    /// constant `c = 4` leaves room for a message tag, one node address, one
    /// value and one counter, which is the widest message any protocol in
    /// this workspace sends.
    pub fn message_bit_budget(&self) -> u32 {
        4 * (id_bits(self.n) + value_bits_for_range(self.value_range))
    }

    /// Bits needed for one node address in this network.
    pub fn id_bits(&self) -> u32 {
        id_bits(self.n)
    }

    /// Bits needed for one value drawn from the configured range.
    pub fn value_bits(&self) -> u32 {
        value_bits_for_range(self.value_range)
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig::new(1024)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sets_fields() {
        let cfg = SimConfig::new(100)
            .with_seed(9)
            .with_loss_prob(0.1)
            .with_initial_crash_prob(0.2)
            .with_value_range(512.0);
        assert_eq!(cfg.n, 100);
        assert_eq!(cfg.seed, 9);
        assert!((cfg.loss_prob - 0.1).abs() < 1e-12);
        assert!((cfg.initial_crash_prob - 0.2).abs() < 1e-12);
        assert_eq!(cfg.value_bits(), 9);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        let _ = SimConfig::new(0);
    }

    #[test]
    #[should_panic(expected = "loss probability")]
    fn loss_prob_out_of_range_rejected() {
        let _ = SimConfig::new(10).with_loss_prob(1.0);
    }

    #[test]
    #[should_panic(expected = "crash probability")]
    fn crash_prob_out_of_range_rejected() {
        let _ = SimConfig::new(10).with_initial_crash_prob(-0.1);
    }

    #[test]
    fn message_budget_scales_with_log_n() {
        let small = SimConfig::new(1 << 8).with_value_range(2.0);
        let large = SimConfig::new(1 << 16).with_value_range(2.0);
        assert!(large.message_bit_budget() > small.message_bit_budget());
        assert_eq!(small.message_bit_budget(), 4 * (8 + 1));
        assert_eq!(large.message_bit_budget(), 4 * (16 + 1));
    }

    #[test]
    fn log_n_matches_id_bits() {
        assert_eq!(SimConfig::new(1024).log_n(), 10);
        assert_eq!(SimConfig::new(1000).log_n(), 10);
        assert_eq!(SimConfig::new(2).log_n(), 1);
    }

    #[test]
    fn validate_accepts_builder_output() {
        assert!(SimConfig::new(100).validate().is_ok());
        assert!(SimConfig::new(100)
            .with_loss_prob(0.07)
            .with_initial_crash_prob(0.3)
            .with_value_range(1e9)
            .validate()
            .is_ok());
    }

    #[test]
    fn validate_rejects_out_of_domain_literals() {
        // Struct literals bypass the builder asserts; validate catches them.
        let base = SimConfig::new(64);
        let bad_loss = SimConfig {
            loss_prob: 1.0,
            ..base.clone()
        };
        assert!(bad_loss
            .validate()
            .unwrap_err()
            .contains("loss probability"));
        let bad_loss_neg = SimConfig {
            loss_prob: -0.1,
            ..base.clone()
        };
        assert!(bad_loss_neg.validate().is_err());
        let bad_crash = SimConfig {
            initial_crash_prob: 2.0,
            ..base.clone()
        };
        assert!(bad_crash
            .validate()
            .unwrap_err()
            .contains("crash probability"));
        let bad_range = SimConfig {
            value_range: f64::NAN,
            ..base.clone()
        };
        assert!(bad_range.validate().unwrap_err().contains("value range"));
        let bad_n = SimConfig { n: 0, ..base };
        assert!(bad_n.validate().unwrap_err().contains("at least one node"));
    }

    #[test]
    fn analysis_window_matches_paper_bounds() {
        // n = 1024: 1/log n ≈ 0.1 — the window is (0.1, 0.125).
        let cfg = |delta| SimConfig::new(1024).with_loss_prob(delta);
        assert!(!cfg(0.0).delta_in_analysis_window());
        assert!(!cfg(0.05).delta_in_analysis_window(), "below 1/log n");
        assert!(cfg(0.11).delta_in_analysis_window());
        assert!(!cfg(0.125).delta_in_analysis_window(), "1/8 is excluded");
        assert!(!cfg(0.3).delta_in_analysis_window());
        // Huge n: the window widens from below.
        assert!(SimConfig::new(1 << 30)
            .with_loss_prob(0.05)
            .delta_in_analysis_window());
    }

    #[test]
    fn default_is_reasonable() {
        let cfg = SimConfig::default();
        assert_eq!(cfg.n, 1024);
        assert_eq!(cfg.loss_prob, 0.0);
        assert!(cfg.message_bit_budget() >= cfg.id_bits() + cfg.value_bits());
    }
}
