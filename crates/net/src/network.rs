//! The simulated network: RNG, failure model, liveness and message delivery.

use crate::config::SimConfig;
use crate::metrics::Metrics;
use crate::node::NodeId;
use crate::phase::Phase;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A simulated `n`-node network in the random phone-call model.
///
/// `Network` owns the deterministic RNG, the failure model (initial crashes
/// and per-message loss) and the [`Metrics`]. Protocols are written as plain
/// functions/structs that drive a `&mut Network`; every transmission goes
/// through [`Network::send`], and each synchronous round is closed with
/// [`Network::advance_round`].
#[derive(Clone, Debug)]
pub struct Network {
    config: SimConfig,
    rng: SmallRng,
    alive: Vec<bool>,
    alive_count: usize,
    metrics: Metrics,
}

impl Network {
    /// Build a network from a configuration, applying initial crashes.
    ///
    /// # Panics
    /// Panics if the configuration fails [`SimConfig::validate`] (possible
    /// only for configurations built by struct literal — the builder
    /// methods uphold the invariants individually).
    pub fn new(config: SimConfig) -> Self {
        if let Err(msg) = config.validate() {
            panic!("invalid SimConfig: {msg}");
        }
        let mut rng = SmallRng::seed_from_u64(config.seed ^ crate::bits::SETUP_STREAM_SALT);
        let mut alive = vec![true; config.n];
        let mut alive_count = config.n;
        if config.initial_crash_prob > 0.0 {
            for slot in alive.iter_mut() {
                if rng.gen_bool(config.initial_crash_prob) {
                    *slot = false;
                    alive_count -= 1;
                }
            }
            // Keep at least one alive node so protocols always have a subject.
            if alive_count == 0 {
                alive[0] = true;
                alive_count = 1;
            }
        }
        Network {
            config,
            rng,
            alive,
            alive_count,
            metrics: Metrics::new(),
        }
    }

    /// Number of nodes (including crashed ones).
    #[inline]
    pub fn n(&self) -> usize {
        self.config.n
    }

    /// The configuration this network was built from.
    #[inline]
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Accumulated metrics (read-only).
    #[inline]
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Take the metrics out, leaving zeroed metrics behind.
    pub fn take_metrics(&mut self) -> Metrics {
        std::mem::replace(&mut self.metrics, Metrics::new())
    }

    /// Reset the metrics (keeps liveness and RNG state).
    pub fn reset_metrics(&mut self) {
        self.metrics.reset();
    }

    /// Whether a node is alive (did not crash before the protocol started).
    #[inline]
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.alive[node.index()]
    }

    /// Number of alive nodes.
    #[inline]
    pub fn alive_count(&self) -> usize {
        self.alive_count
    }

    /// Iterator over all node ids, `0..n`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.config.n).map(NodeId::new)
    }

    /// Iterator over alive node ids.
    pub fn alive_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.alive
            .iter()
            .enumerate()
            .filter(|(_, &a)| a)
            .map(|(i, _)| NodeId::new(i))
    }

    /// Mutable access to the simulation RNG. Protocol-level random choices
    /// (ranks, partner selection, ...) should all come from here so that a
    /// run is fully determined by the seed.
    #[inline]
    pub fn rng_mut(&mut self) -> &mut SmallRng {
        &mut self.rng
    }

    /// Derive an independent RNG stream from the simulation seed, e.g. for
    /// per-node decisions computed outside the main simulation loop.
    pub fn derive_rng(&self, salt: u64) -> SmallRng {
        SmallRng::seed_from_u64(self.config.seed.wrapping_mul(0x5851_f42d_4c95_7f2d) ^ salt)
    }

    /// Sample a node uniformly at random from all `n` nodes ("selects a node
    /// in `V`", as every gossip step of the paper does). The sampled node may
    /// be crashed; sending to it will then fail.
    #[inline]
    pub fn sample_uniform(&mut self) -> NodeId {
        NodeId::new(self.rng.gen_range(0..self.config.n))
    }

    /// Sample a uniformly random node different from `me`. For `n == 1`
    /// returns `me` (there is nobody else to talk to).
    pub fn sample_other_than(&mut self, me: NodeId) -> NodeId {
        if self.config.n == 1 {
            return me;
        }
        loop {
            let candidate = self.sample_uniform();
            if candidate != me {
                return candidate;
            }
        }
    }

    /// Sample a uniformly random *alive* node.
    pub fn sample_uniform_alive(&mut self) -> NodeId {
        loop {
            let candidate = self.sample_uniform();
            if self.is_alive(candidate) {
                return candidate;
            }
        }
    }

    /// Send one message of `bits` bits from `from` to `to` in phase `phase`.
    ///
    /// The message is always *counted* (the paper's message complexity counts
    /// transmissions, not deliveries). It is delivered iff the sender is
    /// alive, the receiver is alive and it survives the lossy link (loss
    /// probability `δ`). Returns `true` iff the message was delivered.
    pub fn send(&mut self, from: NodeId, to: NodeId, phase: Phase, bits: u32) -> bool {
        debug_assert!(from.index() < self.config.n, "sender out of range");
        debug_assert!(to.index() < self.config.n, "receiver out of range");
        let mut delivered = self.alive[from.index()] && self.alive[to.index()];
        if delivered && self.config.loss_prob > 0.0 && self.rng.gen_bool(self.config.loss_prob) {
            delivered = false;
        }
        self.metrics.record_send(phase, bits, delivered);
        delivered
    }

    /// Send with up to `max_attempts` retransmissions until delivery.
    /// Each attempt is counted as a message. Returns the number of attempts
    /// made and whether the final attempt was delivered.
    pub fn send_with_retries(
        &mut self,
        from: NodeId,
        to: NodeId,
        phase: Phase,
        bits: u32,
        max_attempts: u32,
    ) -> (u32, bool) {
        let mut attempts = 0;
        while attempts < max_attempts {
            attempts += 1;
            if self.send(from, to, phase, bits) {
                return (attempts, true);
            }
            // A dead endpoint will never succeed; avoid burning the budget.
            if !self.alive[from.index()] || !self.alive[to.index()] {
                return (attempts, false);
            }
        }
        (attempts, false)
    }

    /// Close the current synchronous round.
    #[inline]
    pub fn advance_round(&mut self) {
        self.metrics.advance_round();
    }

    /// Number of completed rounds.
    #[inline]
    pub fn round(&self) -> u64 {
        self.metrics.rounds()
    }
}

impl crate::transport::Transport for Network {
    #[inline]
    fn config(&self) -> &SimConfig {
        Network::config(self)
    }

    #[inline]
    fn metrics(&self) -> &Metrics {
        Network::metrics(self)
    }

    #[inline]
    fn is_alive(&self, node: NodeId) -> bool {
        Network::is_alive(self, node)
    }

    #[inline]
    fn alive_count(&self) -> usize {
        Network::alive_count(self)
    }

    #[inline]
    fn rng_mut(&mut self) -> &mut SmallRng {
        Network::rng_mut(self)
    }

    #[inline]
    fn send(&mut self, from: NodeId, to: NodeId, phase: Phase, bits: u32) -> bool {
        Network::send(self, from, to, phase, bits)
    }

    #[inline]
    fn advance_round(&mut self) {
        Network::advance_round(self)
    }

    #[inline]
    fn reset_metrics(&mut self) {
        Network::reset_metrics(self)
    }

    // Forward the derived methods to the (slightly faster, liveness-array
    // based) inherent implementations so trait-generic and concrete callers
    // observe the exact same RNG consumption.
    #[inline]
    fn sample_uniform(&mut self) -> NodeId {
        Network::sample_uniform(self)
    }

    #[inline]
    fn sample_other_than(&mut self, me: NodeId) -> NodeId {
        Network::sample_other_than(self, me)
    }

    #[inline]
    fn sample_uniform_alive(&mut self) -> NodeId {
        Network::sample_uniform_alive(self)
    }

    #[inline]
    fn derive_rng(&self, salt: u64) -> SmallRng {
        Network::derive_rng(self, salt)
    }

    fn send_with_retries(
        &mut self,
        from: NodeId,
        to: NodeId,
        phase: Phase,
        bits: u32,
        max_attempts: u32,
    ) -> (u32, bool) {
        Network::send_with_retries(self, from, to, phase, bits, max_attempts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(n: usize) -> Network {
        Network::new(SimConfig::new(n).with_seed(12345))
    }

    #[test]
    fn all_nodes_alive_without_crashes() {
        let net = net(100);
        assert_eq!(net.alive_count(), 100);
        assert!(net.nodes().all(|v| net.is_alive(v)));
        assert_eq!(net.alive_nodes().count(), 100);
    }

    #[test]
    fn crashes_reduce_alive_count_roughly_proportionally() {
        let net = Network::new(
            SimConfig::new(10_000)
                .with_seed(7)
                .with_initial_crash_prob(0.3),
        );
        let alive = net.alive_count();
        assert!(alive > 6_300 && alive < 7_700, "alive = {alive}");
        assert_eq!(net.alive_nodes().count(), alive);
    }

    #[test]
    fn at_least_one_node_survives_even_with_extreme_crash_prob() {
        let net = Network::new(
            SimConfig::new(50)
                .with_seed(3)
                .with_initial_crash_prob(0.999_999),
        );
        assert!(net.alive_count() >= 1);
    }

    #[test]
    fn lossless_send_always_delivers_between_alive_nodes() {
        let mut net = net(10);
        for i in 0..9 {
            assert!(net.send(NodeId::new(i), NodeId::new(i + 1), Phase::Other, 8));
        }
        assert_eq!(net.metrics().total_messages(), 9);
        assert_eq!(net.metrics().total_dropped(), 0);
    }

    #[test]
    fn lossy_send_drops_roughly_delta_fraction() {
        let mut net = Network::new(SimConfig::new(2).with_seed(99).with_loss_prob(0.25));
        let trials = 20_000;
        for _ in 0..trials {
            net.send(NodeId::new(0), NodeId::new(1), Phase::Other, 8);
        }
        let dropped = net.metrics().total_dropped() as f64 / trials as f64;
        assert!((dropped - 0.25).abs() < 0.02, "drop rate {dropped}");
    }

    #[test]
    fn messages_to_crashed_nodes_count_but_do_not_deliver() {
        let mut net = Network::new(
            SimConfig::new(1000)
                .with_seed(5)
                .with_initial_crash_prob(0.5),
        );
        let dead = net
            .nodes()
            .find(|&v| !net.is_alive(v))
            .expect("some node crashed");
        let alive = net.alive_nodes().next().unwrap();
        assert!(!net.send(alive, dead, Phase::Other, 8));
        assert!(!net.send(dead, alive, Phase::Other, 8));
        assert_eq!(net.metrics().total_messages(), 2);
        assert_eq!(net.metrics().total_dropped(), 2);
    }

    #[test]
    fn send_with_retries_eventually_delivers_on_lossy_link() {
        let mut net = Network::new(SimConfig::new(2).with_seed(1).with_loss_prob(0.5));
        let (attempts, ok) =
            net.send_with_retries(NodeId::new(0), NodeId::new(1), Phase::Other, 8, 64);
        assert!(ok);
        assert!((1..=64).contains(&attempts));
        assert_eq!(net.metrics().total_messages(), u64::from(attempts));
    }

    #[test]
    fn send_with_retries_gives_up_on_dead_endpoint() {
        let mut net = Network::new(
            SimConfig::new(100)
                .with_seed(8)
                .with_initial_crash_prob(0.5),
        );
        let dead = net.nodes().find(|&v| !net.is_alive(v)).unwrap();
        let alive = net.alive_nodes().next().unwrap();
        let (attempts, ok) = net.send_with_retries(alive, dead, Phase::Other, 8, 100);
        assert!(!ok);
        assert_eq!(attempts, 1, "should not retry against a crashed node");
    }

    #[test]
    fn sampling_is_uniform_ish() {
        let mut net = net(4);
        let mut counts = [0u32; 4];
        for _ in 0..40_000 {
            counts[net.sample_uniform().index()] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "counts {counts:?}");
        }
    }

    #[test]
    fn sample_other_than_never_returns_me_when_n_gt_1() {
        let mut net = net(3);
        for _ in 0..1000 {
            assert_ne!(net.sample_other_than(NodeId::new(1)), NodeId::new(1));
        }
    }

    #[test]
    fn sample_other_than_returns_me_for_singleton() {
        let mut net = net(1);
        assert_eq!(net.sample_other_than(NodeId::new(0)), NodeId::new(0));
    }

    #[test]
    fn sample_uniform_alive_only_returns_alive_nodes() {
        let mut net = Network::new(
            SimConfig::new(200)
                .with_seed(4)
                .with_initial_crash_prob(0.7),
        );
        for _ in 0..500 {
            let v = net.sample_uniform_alive();
            assert!(net.is_alive(v));
        }
    }

    #[test]
    fn identical_seeds_give_identical_runs() {
        let run = |seed: u64| {
            let mut net = Network::new(SimConfig::new(64).with_seed(seed).with_loss_prob(0.1));
            let mut log = Vec::new();
            for _ in 0..200 {
                let a = net.sample_uniform();
                let b = net.sample_other_than(a);
                let ok = net.send(a, b, Phase::RootGossip, 16);
                log.push((a, b, ok));
            }
            (log, net.metrics().clone())
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42).0, run(43).0);
    }

    #[test]
    fn rounds_advance() {
        let mut net = net(4);
        net.send(NodeId::new(0), NodeId::new(1), Phase::Other, 8);
        net.advance_round();
        net.advance_round();
        assert_eq!(net.round(), 2);
        assert_eq!(net.metrics().per_round_messages(), &[1, 0]);
    }

    #[test]
    fn take_metrics_resets() {
        let mut net = net(4);
        net.send(NodeId::new(0), NodeId::new(1), Phase::Other, 8);
        let m = net.take_metrics();
        assert_eq!(m.total_messages(), 1);
        assert_eq!(net.metrics().total_messages(), 0);
    }
}
