//! Property suite for the wire codec: encode→decode identity over
//! generated values, and totality of the decoder over mangled input —
//! truncations, oversized length fields, version skews and random bytes
//! must all come back as `Err`, never as a panic.

use gossip_net::{
    decode_frame, decode_frame_sealed, encode_frame, encode_frame_sealed, AuthKey, NodeId,
    WireError, WireMsg, WireReader, AUTH_TAG_BYTES, FRAME_HEADER_BYTES, MAX_PAYLOAD_BYTES,
    WIRE_VERSION,
};
use gossip_obs::TraceCtx;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Round-trip one value through bytes, asserting full consumption.
fn assert_round_trip<M: WireMsg + PartialEq + std::fmt::Debug>(value: &M) {
    let bytes = value.to_wire_bytes();
    let mut r = WireReader::new(&bytes);
    let decoded = M::decode(&mut r).expect("well-formed bytes decode");
    assert_eq!(&decoded, value);
    assert_eq!(r.remaining(), 0, "decode consumes exactly the encoding");
}

proptest! {
    #[test]
    fn scalars_round_trip(a in 0u64..=u64::MAX, b in 0u32..=u32::MAX, c in -1e300f64..1e300) {
        assert_round_trip(&a);
        assert_round_trip(&b);
        assert_round_trip(&c);
        assert_round_trip(&NodeId(b));
    }

    #[test]
    fn composites_round_trip(
        stamps in proptest::collection::vec(0u64..=u64::MAX, 0..64),
        pairs in proptest::collection::vec(0u64..=u64::MAX, 0..32),
        flag in proptest::bool::ANY,
    ) {
        assert_round_trip(&stamps);
        // Values via an integer cast: full-range but never NaN, which
        // PartialEq cannot compare (NaN *bit patterns* round-trip too —
        // pinned by the unit suite on the bit level).
        let delta: Vec<(NodeId, f64)> = pairs
            .iter()
            .map(|&z| (NodeId((z >> 32) as u32), ((z as i64) as f64) / 7.0))
            .collect();
        assert_round_trip(&delta);
        assert_round_trip(&if flag { Some(stamps.clone()) } else { None });
    }

    #[test]
    fn frames_round_trip_for_every_sender(
        from in 0u32..=u32::MAX,
        payload in proptest::collection::vec(0u64..=u64::MAX, 0..64),
    ) {
        let frame = encode_frame(NodeId(from), &payload);
        prop_assert_eq!(frame.len(), FRAME_HEADER_BYTES + 4 + payload.len() * 8);
        let (decoded_from, decoded): (NodeId, Vec<u64>) = decode_frame(&frame).unwrap();
        prop_assert_eq!(decoded_from, NodeId(from));
        prop_assert_eq!(decoded, payload);
    }

    #[test]
    fn truncation_always_errors_never_panics(
        payload in proptest::collection::vec(0u64..=u64::MAX, 0..32),
        cut_seed in 0u64..=u64::MAX,
    ) {
        let frame = encode_frame(NodeId(1), &payload);
        let mut rng = SmallRng::seed_from_u64(cut_seed);
        for _ in 0..8 {
            let cut = rng.gen_range(0..frame.len());
            prop_assert!(decode_frame::<Vec<u64>>(&frame[..cut]).is_err());
        }
    }

    #[test]
    fn bit_flips_never_panic(
        payload in proptest::collection::vec(0u64..=u64::MAX, 0..16),
        flip_seed in 0u64..=u64::MAX,
    ) {
        // Any single-bit corruption either still decodes (a flipped
        // payload bit yields different but valid content) or errors; it
        // must never panic, and a header flip in the magic/version/length
        // region must not be silently accepted as the original.
        let frame = encode_frame(NodeId(7), &payload);
        let mut rng = SmallRng::seed_from_u64(flip_seed);
        for _ in 0..16 {
            let mut mangled = frame.clone();
            let bit = rng.gen_range(0..mangled.len() * 8);
            mangled[bit / 8] ^= 1 << (bit % 8);
            let _ = decode_frame::<Vec<u64>>(&mangled); // must return, is all
        }
    }

    #[test]
    fn random_bytes_never_panic(
        bytes in proptest::collection::vec(0u8..=255, 0..256),
    ) {
        let _ = decode_frame::<Vec<u64>>(&bytes);
        let _ = decode_frame::<f64>(&bytes);
        let _ = decode_frame::<(u64, Vec<(NodeId, f64)>)>(&bytes);
        let mut r = WireReader::new(&bytes);
        let _ = Vec::<(NodeId, f64)>::decode(&mut r);
    }

    #[test]
    fn sealed_frames_round_trip_and_bare_encoding_is_pinned(
        from in 0u32..=u32::MAX,
        payload in proptest::collection::vec(0u64..=u64::MAX, 0..64),
        trace_id in 0u64..=u64::MAX,
        hop in 0u8..=255,
        traced in proptest::bool::ANY,
        key_seed in 0u64..=u64::MAX,
    ) {
        let ctx = if traced { TraceCtx { trace_id, hop } } else { TraceCtx::NONE };
        let phrase = format!("cluster-key-{key_seed:016x}");
        // Keyless sealing is byte-identical to the legacy encoders for
        // every sender/context/payload — the backward-compat contract.
        let bare = encode_frame_sealed(NodeId(from), TraceCtx::NONE, None, &payload);
        prop_assert_eq!(&bare, &encode_frame(NodeId(from), &payload));

        let key = AuthKey::from_passphrase(&phrase);
        let sealed = encode_frame_sealed(NodeId(from), ctx, Some(&key), &payload);
        prop_assert_eq!(
            sealed.len(),
            FRAME_HEADER_BYTES
                + if ctx.is_some() { 9 } else { 0 }
                + AUTH_TAG_BYTES
                + payload.to_wire_bytes().len()
        );
        // Keyed decode verifies and round-trips; keyless decode skips the
        // tag and still round-trips (mixed-cluster interop).
        let (got_from, got_ctx, got): (NodeId, TraceCtx, Vec<u64>) =
            decode_frame_sealed(&sealed, Some(&key)).unwrap();
        prop_assert_eq!(got_from, NodeId(from));
        prop_assert_eq!(got_ctx, ctx);
        prop_assert_eq!(&got, &payload);
        let (_, _, got): (NodeId, TraceCtx, Vec<u64>) =
            decode_frame_sealed(&sealed, None).unwrap();
        prop_assert_eq!(&got, &payload);
        // A keyed receiver rejects the bare frame outright.
        prop_assert_eq!(
            decode_frame_sealed::<Vec<u64>>(&bare, Some(&key)),
            Err(WireError::AuthRequired)
        );
    }

    #[test]
    fn sealed_truncation_and_bit_flips_never_panic_or_forge(
        payload in proptest::collection::vec(0u64..=u64::MAX, 0..16),
        mangle_seed in 0u64..=u64::MAX,
    ) {
        let key = AuthKey::from_passphrase("property-suite");
        let sealed = encode_frame_sealed(NodeId(7), TraceCtx::NONE, Some(&key), &payload);
        let mut rng = SmallRng::seed_from_u64(mangle_seed);
        for _ in 0..8 {
            let cut = rng.gen_range(0..sealed.len());
            prop_assert!(decode_frame_sealed::<Vec<u64>>(&sealed[..cut], Some(&key)).is_err());
        }
        // Under a keyed decoder, *every* single-bit flip is rejected —
        // stronger than the bare-frame property, where payload flips
        // still decode. This is the whole point of the tag.
        for _ in 0..16 {
            let mut mangled = sealed.clone();
            let bit = rng.gen_range(0..mangled.len() * 8);
            mangled[bit / 8] ^= 1 << (bit % 8);
            prop_assert!(decode_frame_sealed::<Vec<u64>>(&mangled, Some(&key)).is_err());
            let _ = decode_frame_sealed::<Vec<u64>>(&mangled, None); // keyless: total, is all
        }
    }

    #[test]
    fn foreign_versions_are_rejected(version in 0u8..=255, x in 0u64..=u64::MAX) {
        let mut frame = encode_frame(NodeId(0), &x);
        frame[2] = version;
        let result = decode_frame::<u64>(&frame);
        if version == WIRE_VERSION {
            prop_assert_eq!(result.unwrap().1, x);
        } else {
            prop_assert_eq!(result, Err(WireError::VersionMismatch { found: version }));
        }
    }
}

#[test]
fn oversized_claims_are_rejected_without_allocation() {
    // Header claiming u32::MAX payload bytes over an 8-byte body: the
    // decoder must reject on the length field, before trusting it.
    let mut frame = encode_frame(NodeId(0), &1u64);
    frame[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
    assert_eq!(
        decode_frame::<u64>(&frame),
        Err(WireError::Oversized {
            claimed: u32::MAX as usize,
            limit: MAX_PAYLOAD_BYTES,
        })
    );
}
