//! [`Member<H>`]: the SWIM failure detector and membership disseminator,
//! layered *around* an application handler.
//!
//! The wrapper is itself a [`Handler`] whose message type is
//! [`MemberMsg<H::Msg>`], so it runs unchanged on every backend — the
//! event driver, the sharded driver, and the UDP host. The wrapped
//! protocol sees a plain [`Mailbox`] whose [`Mailbox::sample_peer`] draws
//! from the **discovered live view** instead of the static full range,
//! and whose sends carry piggybacked membership rumors; it cannot tell
//! the difference and never needs to.
//!
//! ## The probe loop
//!
//! Every `probe_interval_us` (staggered per node), a node:
//!
//! 1. judges last period's probes — any target that acked neither
//!    directly nor through a proxy becomes **Suspect** at its current
//!    incarnation, and the rumor starts spreading;
//! 2. sweeps suspicion deadlines — a Suspect that failed to refute for
//!    `suspect_periods` whole periods is declared **Dead**;
//! 3. pings `probe_fanout` fresh targets drawn from the live view, arming
//!    one RTT timer; if it fires before the acks arrive, the unacked
//!    targets are probed indirectly via `proxies` ping-req relays.
//!
//! A node that hears a rumor about *itself* (Suspect or Dead at its
//! current or later incarnation) refutes: it bumps its incarnation past
//! the claim and gossips a fresh self-Alive — the only way records move
//! backwards in badness, and exactly how a leaver that rejoined within a
//! probe window shakes off the stale suspicion against its previous
//! incarnation (the old rumor names the old incarnation; the sweep kills
//! only the incarnation it suspected).
//!
//! ## Dissemination and budget
//!
//! Rumors ride every outgoing message — control plane and application
//! alike — freshest-first from a bounded queue (see
//! [`MemberTable::next_piggyback`]), with the count capped so the encoded
//! datagram stays inside `budget_bytes`; nothing this layer adds can trip
//! a host's `send_oversize` guard as long as the wrapped payload itself
//! fits the budget.

use crate::state::{Liveness, MemberTable, Transition, Update, UPDATE_WIRE_BYTES};
use gossip_net::{sample_from_view, stagger_us, Handler, Mailbox, NodeId, Phase, TimerId};
use gossip_obs::{Histogram, Registry, TraceReason};
use rand::Rng;

/// The periodic protocol tick (probe round). Member timer labels live far
/// above the small ids application handlers use; the range
/// `0x4D45_4D00..=0x4D45_4DFF` is reserved for this crate.
pub const MEMBER_TIMER_TICK: TimerId = TimerId(0x4D45_4D00);
/// The direct-ping RTT deadline within a probe round.
pub const MEMBER_TIMER_RTT: TimerId = TimerId(0x4D45_4D01);

/// Salt for the per-node stagger of the first tick.
const TICK_SALT: u64 = 0x4D45_4D42_5253_5749; // "MEMBRSWI"

/// Wire-tag byte plus fields, excluding the trailing updates vec, per
/// control variant (kept in lockstep with `wire.rs`).
const PING_BASE_BYTES: usize = 1 + 8 + 4;
const ACK_BASE_BYTES: usize = 1 + 8 + 4;
const PING_REQ_BASE_BYTES: usize = 1 + 8 + 4;
const JOIN_BASE_BYTES: usize = 1;
const JOIN_ACK_BASE_BYTES: usize = 1;
const LEAVE_BASE_BYTES: usize = 1 + 8;
const APP_BASE_BYTES: usize = 1;
/// A `Vec<Update>` costs a u32 length prefix plus its entries.
const VEC_LEN_BYTES: usize = 4;

/// Tuning knobs for the detector and disseminator.
#[derive(Clone, Debug)]
pub struct MemberConfig {
    /// Length of one protocol period (µs).
    pub probe_interval_us: u64,
    /// Direct-ping deadline before the indirect (ping-req) leg fires.
    /// Must be shorter than the probe interval.
    pub rtt_timeout_us: u64,
    /// Whole probe periods a Suspect gets to refute before Dead.
    pub suspect_periods: u32,
    /// Proxies (`k`) asked to ping an unresponsive target indirectly.
    pub proxies: usize,
    /// Fresh targets pinged per period. 1 is classic SWIM; raising it
    /// tightens the detection-latency tail at proportional message cost.
    pub probe_fanout: usize,
    /// Hard cap on rumors per datagram (further capped by `budget_bytes`).
    pub piggyback_limit: usize,
    /// Retire a rumor after this many transmissions (0 = auto:
    /// `3·⌈log2(n+1)⌉`, the classic λ log n dissemination bound).
    pub retransmit_limit: u32,
    /// Cap on distinct queued rumors (0 = auto: `n`).
    pub max_queue: usize,
    /// Target encoded-datagram budget (bytes) piggybacking must respect.
    pub budget_bytes: usize,
    /// Contact points for joining. A node not listed here sends a Join to
    /// one seed at startup and learns the rest of the view from gossip.
    pub seeds: Vec<NodeId>,
    /// Start with the whole universe `0..n` known-Alive (the static
    /// topology every pre-membership experiment assumed) instead of
    /// discovering it. Churn transitions are still observed.
    pub static_bootstrap: bool,
}

impl Default for MemberConfig {
    fn default() -> Self {
        MemberConfig {
            probe_interval_us: 1_000_000,
            rtt_timeout_us: 200_000,
            suspect_periods: 2,
            proxies: 3,
            probe_fanout: 1,
            piggyback_limit: 8,
            retransmit_limit: 0,
            max_queue: 0,
            budget_bytes: 1200,
            seeds: Vec::new(),
            static_bootstrap: false,
        }
    }
}

impl MemberConfig {
    /// Classic static topology: everyone knows everyone from boot.
    pub fn static_full() -> Self {
        MemberConfig {
            static_bootstrap: true,
            ..MemberConfig::default()
        }
    }

    /// Join-via-seed bootstrap: only the seeds are known at boot.
    pub fn with_seeds(seeds: Vec<NodeId>) -> Self {
        MemberConfig {
            seeds,
            ..MemberConfig::default()
        }
    }

    /// Set the probe period (and scale the RTT deadline to a quarter of
    /// it, the usual ratio, unless set explicitly afterwards).
    pub fn with_probe_interval_us(mut self, interval_us: u64) -> Self {
        self.probe_interval_us = interval_us.max(4);
        self.rtt_timeout_us = (interval_us / 4).max(1);
        self
    }

    fn suspect_timeout_us(&self) -> u64 {
        self.probe_interval_us * u64::from(self.suspect_periods.max(1))
    }

    fn retransmit_limit_for(&self, n: usize) -> u32 {
        if self.retransmit_limit > 0 {
            return self.retransmit_limit;
        }
        3 * (usize::BITS - n.max(1).leading_zeros()).max(1)
    }

    fn max_queue_for(&self, n: usize) -> usize {
        if self.max_queue > 0 {
            self.max_queue
        } else {
            n.max(4)
        }
    }
}

/// The membership envelope: control plane plus application payloads, all
/// carrying piggybacked rumors.
#[derive(Clone, Debug, PartialEq)]
pub enum MemberMsg<M> {
    /// Direct liveness probe. `origin` is who ultimately wants the ack —
    /// the prober itself, or the requester a proxy is relaying for.
    Ping {
        /// Probe sequence number (echoed by the ack).
        seq: u64,
        /// The node the eventual ack must reach.
        origin: NodeId,
        /// Piggybacked rumors.
        updates: Vec<Update>,
    },
    /// Probe acknowledgement, relayed toward `origin`.
    Ack {
        /// Echoed probe sequence number.
        seq: u64,
        /// The node this ack is for.
        origin: NodeId,
        /// Piggybacked rumors.
        updates: Vec<Update>,
    },
    /// "Ping `target` for me": the indirect probe leg.
    PingReq {
        /// Probe sequence number the relayed ping will carry.
        seq: u64,
        /// The unresponsive node to probe.
        target: NodeId,
        /// Piggybacked rumors.
        updates: Vec<Update>,
    },
    /// A joiner announcing itself to a seed; `updates` carries its
    /// self-Alive claim.
    Join {
        /// Piggybacked rumors (at least the joiner's own record).
        updates: Vec<Update>,
    },
    /// A seed's reply: one chunk of its member-table snapshot.
    JoinAck {
        /// Snapshot records (chunked to the datagram budget).
        updates: Vec<Update>,
    },
    /// Graceful departure: the *sender* declares itself dead at
    /// `incarnation`. This is the only legitimate channel for a
    /// self-death — a piggybacked self-Dead rumor is treated as forged.
    Leave {
        /// The leaver's final incarnation.
        incarnation: u64,
        /// Piggybacked rumors.
        updates: Vec<Update>,
    },
    /// A wrapped application message.
    App {
        /// The inner protocol's payload.
        payload: M,
        /// Piggybacked rumors.
        updates: Vec<Update>,
    },
}

impl<M> MemberMsg<M> {
    /// The piggybacked rumors of any variant.
    pub fn updates(&self) -> &[Update] {
        match self {
            MemberMsg::Ping { updates, .. }
            | MemberMsg::Ack { updates, .. }
            | MemberMsg::PingReq { updates, .. }
            | MemberMsg::Join { updates }
            | MemberMsg::JoinAck { updates }
            | MemberMsg::Leave { updates, .. }
            | MemberMsg::App { updates, .. } => updates,
        }
    }
}

/// Protocol counters exported as the `member_*` registry family.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MemberStats {
    /// Direct pings sent by the local prober.
    pub probes_sent: u64,
    /// Pings received (direct or relayed).
    pub pings_rx: u64,
    /// Acks that completed one of our probes.
    pub acks_rx: u64,
    /// Acks relayed onward as a proxy.
    pub acks_relayed: u64,
    /// Ping-req messages sent (indirect probe legs).
    pub ping_reqs_sent: u64,
    /// Ping-req messages received and relayed.
    pub ping_reqs_rx: u64,
    /// Suspicions started by the local detector.
    pub suspicions_local: u64,
    /// Suspicions learned from gossip.
    pub suspicions_learned: u64,
    /// Times this node refuted a rumor about itself.
    pub refutations: u64,
    /// Suspect records that turned out alive (refuted by the subject) —
    /// each one was a false suspicion.
    pub false_suspicions: u64,
    /// Deaths declared by the local suspicion sweep.
    pub deaths_declared: u64,
    /// Deaths learned from gossip (or a Leave).
    pub deaths_learned: u64,
    /// Nodes seen joining (or rejoining) the view.
    pub joins_seen: u64,
    /// Join messages sent while bootstrapping.
    pub joins_sent: u64,
    /// Join messages answered with a snapshot.
    pub joins_answered: u64,
    /// Graceful leaves received.
    pub leaves_rx: u64,
    /// Rumors attached to outgoing messages.
    pub updates_piggybacked: u64,
    /// Rumors applied with effect (any non-stale transition).
    pub updates_applied: u64,
    /// Rumors ignored as stale (superseded by current knowledge).
    pub stale_updates: u64,
    /// Rumors about ids outside the universe — forged or corrupt.
    pub forged_unknown_subject: u64,
    /// Piggybacked self-Dead claims — forged (Leave is the only
    /// legitimate self-death channel).
    pub forged_self_dead: u64,
}

impl MemberStats {
    /// Add every counter into `registry` under the `member_*` family.
    pub fn fill_registry(&self, registry: &mut Registry) {
        let rows: [(&str, &str, u64); 21] = [
            (
                "member_probes_sent_total",
                "Direct pings sent",
                self.probes_sent,
            ),
            ("member_pings_rx_total", "Pings received", self.pings_rx),
            ("member_acks_rx_total", "Probe acks received", self.acks_rx),
            (
                "member_acks_relayed_total",
                "Acks relayed as proxy",
                self.acks_relayed,
            ),
            (
                "member_ping_reqs_sent_total",
                "Indirect probe requests sent",
                self.ping_reqs_sent,
            ),
            (
                "member_ping_reqs_rx_total",
                "Indirect probe requests relayed",
                self.ping_reqs_rx,
            ),
            (
                "member_suspicions_local_total",
                "Suspicions started locally",
                self.suspicions_local,
            ),
            (
                "member_suspicions_learned_total",
                "Suspicions learned from gossip",
                self.suspicions_learned,
            ),
            (
                "member_refutations_total",
                "Self-rumors refuted",
                self.refutations,
            ),
            (
                "member_false_suspicions_total",
                "Suspicions refuted by the subject",
                self.false_suspicions,
            ),
            (
                "member_deaths_declared_total",
                "Deaths declared by the local sweep",
                self.deaths_declared,
            ),
            (
                "member_deaths_learned_total",
                "Deaths learned from gossip",
                self.deaths_learned,
            ),
            (
                "member_joins_seen_total",
                "Joins observed in the view",
                self.joins_seen,
            ),
            (
                "member_joins_sent_total",
                "Join messages sent",
                self.joins_sent,
            ),
            (
                "member_joins_answered_total",
                "Join messages answered",
                self.joins_answered,
            ),
            (
                "member_leaves_rx_total",
                "Graceful leaves received",
                self.leaves_rx,
            ),
            (
                "member_updates_piggybacked_total",
                "Rumors attached to sends",
                self.updates_piggybacked,
            ),
            (
                "member_updates_applied_total",
                "Rumors applied with effect",
                self.updates_applied,
            ),
            (
                "member_stale_updates_total",
                "Rumors ignored as stale",
                self.stale_updates,
            ),
            (
                "member_forged_unknown_subject_total",
                "Rumors about ids outside the universe",
                self.forged_unknown_subject,
            ),
            (
                "member_forged_self_dead_total",
                "Forged self-dead rumors rejected",
                self.forged_self_dead,
            ),
        ];
        for (name, help, v) in rows {
            registry.add_counter(name, help, &[], v);
        }
    }
}

/// One outstanding direct probe of the current period.
#[derive(Clone, Copy, Debug)]
struct Probe {
    target: NodeId,
    seq: u64,
    sent_at_us: u64,
}

/// Everything of the membership layer except the wrapped handler, split
/// out so the inner handler and this state can be borrowed side by side.
struct Core {
    cfg: MemberConfig,
    me: NodeId,
    n: usize,
    table: MemberTable,
    stats: MemberStats,
    rtt_us: Histogram,
    seq: u64,
    pending: Vec<Probe>,
    indirect_fired: bool,
    joined: bool,
    started: bool,
}

impl Core {
    /// Rumors that fit a datagram whose non-rumor part is `base_bytes`.
    fn piggyback_for(&mut self, base_bytes: usize) -> Vec<Update> {
        let room = self
            .cfg
            .budget_bytes
            .saturating_sub(base_bytes + VEC_LEN_BYTES)
            / UPDATE_WIRE_BYTES;
        let take = room.min(self.cfg.piggyback_limit);
        let ups = self.table.next_piggyback(take);
        self.stats.updates_piggybacked += ups.len() as u64;
        ups
    }

    /// Send a control message built by `make` from a budget-fitted rumor
    /// batch, charging exact wire bits to [`Phase::Membership`].
    fn send_control<M>(
        &mut self,
        mailbox: &mut dyn Mailbox<MemberMsg<M>>,
        to: NodeId,
        base_bytes: usize,
        make: impl FnOnce(Vec<Update>) -> MemberMsg<M>,
    ) {
        let updates = self.piggyback_for(base_bytes);
        let bytes = base_bytes + VEC_LEN_BYTES + UPDATE_WIRE_BYTES * updates.len();
        mailbox.send(to, Phase::Membership, (bytes * 8) as u32, make(updates));
    }

    /// Apply one batch of piggybacked rumors from `from`, routing
    /// transitions into counters and passive trace notes.
    fn apply_updates<M>(
        &mut self,
        from: NodeId,
        updates: &[Update],
        mailbox: &mut dyn Mailbox<MemberMsg<M>>,
    ) {
        let now = mailbox.now_us();
        for u in updates {
            if u.node.index() >= self.n {
                self.stats.forged_unknown_subject += 1;
                continue;
            }
            if u.node == self.me {
                // A rumor about me: refute anything at my incarnation or
                // later that is not plain Alive.
                if u.state != Liveness::Alive && u.incarnation >= self.table.my_incarnation() {
                    self.table.refute(u.incarnation);
                    self.stats.refutations += 1;
                    mailbox.note(None, TraceReason::Refuted);
                }
                continue;
            }
            if u.state == Liveness::Dead && u.node == from {
                self.stats.forged_self_dead += 1;
                continue;
            }
            self.apply_one(*u, now, mailbox);
        }
    }

    fn apply_one<M>(&mut self, update: Update, now: u64, mailbox: &mut dyn Mailbox<MemberMsg<M>>) {
        match self.table.apply(update, now) {
            Transition::Joined => {
                self.stats.joins_seen += 1;
                self.stats.updates_applied += 1;
                mailbox.note(Some(update.node), TraceReason::Joined);
            }
            Transition::Suspected => {
                self.stats.suspicions_learned += 1;
                self.stats.updates_applied += 1;
                mailbox.note(Some(update.node), TraceReason::Suspected);
            }
            Transition::Refuted => {
                self.stats.false_suspicions += 1;
                self.stats.updates_applied += 1;
                mailbox.note(Some(update.node), TraceReason::Refuted);
            }
            Transition::Died => {
                self.stats.deaths_learned += 1;
                self.stats.updates_applied += 1;
                mailbox.note(Some(update.node), TraceReason::DeclaredDead);
            }
            Transition::Freshened => self.stats.updates_applied += 1,
            Transition::Stale => self.stats.stale_updates += 1,
        }
    }

    /// Draw up to `count` distinct live targets, excluding `me` and
    /// `avoid`. Deterministic given the RNG stream and the view.
    fn draw_targets<M>(
        &self,
        rng_mailbox: &mut dyn Mailbox<MemberMsg<M>>,
        count: usize,
        avoid: Option<NodeId>,
    ) -> Vec<NodeId> {
        let view = self.table.live_view();
        let candidates = view.iter().filter(|&&p| Some(p) != avoid).count();
        let want = count.min(candidates);
        let mut out: Vec<NodeId> = Vec::with_capacity(want);
        let mut attempts = 0;
        while out.len() < want && attempts < 64 * want.max(1) {
            attempts += 1;
            let p = sample_from_view(rng_mailbox.rng_mut(), self.me, view);
            if p != self.me && Some(p) != avoid && !out.contains(&p) {
                out.push(p);
            }
        }
        if out.len() < want {
            // Rejection sampling starved (tiny view): fall back to a scan.
            for &p in view {
                if out.len() >= want {
                    break;
                }
                if p != self.me && Some(p) != avoid && !out.contains(&p) {
                    out.push(p);
                }
            }
        }
        out
    }

    /// Send one Join to a uniformly drawn seed (no-op without seeds).
    fn send_join<M>(&mut self, mailbox: &mut dyn Mailbox<MemberMsg<M>>) {
        let seeds: Vec<NodeId> = self
            .cfg
            .seeds
            .iter()
            .copied()
            .filter(|&s| s != self.me && s.index() < self.n)
            .collect();
        if seeds.is_empty() {
            self.joined = true;
            return;
        }
        let seed = seeds[mailbox.rng_mut().gen_range(0..seeds.len())];
        let me = self.me;
        let inc = self.table.my_incarnation();
        let self_claim = Update {
            node: me,
            incarnation: inc,
            state: Liveness::Alive,
        };
        let updates = vec![self_claim];
        let bytes = JOIN_BASE_BYTES + VEC_LEN_BYTES + UPDATE_WIRE_BYTES * updates.len();
        mailbox.send(
            seed,
            Phase::Membership,
            (bytes * 8) as u32,
            MemberMsg::Join { updates },
        );
        self.stats.joins_sent += 1;
    }
}

/// The membership wrapper: SWIM detector + disseminator around `H`.
/// See the module docs for the protocol; see [`MemberConfig`] for tuning.
pub struct Member<H: Handler> {
    inner: H,
    core: Core,
}

impl<H: Handler> Member<H> {
    /// Wrap `inner` with membership per `cfg`. The id universe and own id
    /// are learned from the mailbox at [`Handler::on_start`].
    pub fn new(cfg: MemberConfig, inner: H) -> Self {
        Member {
            inner,
            core: Core {
                cfg,
                me: NodeId::new(0),
                n: 1,
                table: MemberTable::new(NodeId::new(0), 1, 1, 1),
                stats: MemberStats::default(),
                rtt_us: Histogram::new(),
                seq: 0,
                pending: Vec::new(),
                indirect_fired: false,
                joined: false,
                started: false,
            },
        }
    }

    /// The wrapped application handler.
    pub fn inner(&self) -> &H {
        &self.inner
    }

    /// The wrapped application handler, mutably.
    pub fn inner_mut(&mut self) -> &mut H {
        &mut self.inner
    }

    /// Protocol counters.
    pub fn stats(&self) -> &MemberStats {
        &self.core.stats
    }

    /// This node's current incarnation number.
    pub fn incarnation(&self) -> u64 {
        self.core.table.my_incarnation()
    }

    /// Has this node completed (or never needed) the join handshake?
    pub fn is_joined(&self) -> bool {
        self.core.joined
    }

    /// The live view: known Alive/Suspect ids excluding this node, sorted.
    pub fn live_view(&self) -> &[NodeId] {
        self.core.table.live_view()
    }

    /// `(alive, suspect, dead, unknown)` counts over the universe.
    pub fn view_counts(&self) -> (usize, usize, usize, usize) {
        self.core.table.counts()
    }

    /// The believed state of `node`, if it is known at all.
    pub fn state_of(&self, node: NodeId) -> Option<Liveness> {
        self.core
            .table
            .record(node)
            .filter(|r| r.known)
            .map(|r| r.state)
    }

    /// Gracefully announce departure: declare self dead at a final,
    /// freshly bumped incarnation to up to three live peers. Call just
    /// before shutting the node down (`--leave`).
    pub fn initiate_leave(&mut self, mailbox: &mut dyn Mailbox<MemberMsg<H::Msg>>) {
        let inc = self.core.table.my_incarnation() + 1;
        let goodbyes = self.core.draw_targets(mailbox, 3, None);
        for peer in goodbyes {
            self.core
                .send_control(mailbox, peer, LEAVE_BASE_BYTES, |updates| {
                    MemberMsg::Leave {
                        incarnation: inc,
                        updates,
                    }
                });
        }
    }

    fn on_tick(&mut self, mailbox: &mut dyn Mailbox<MemberMsg<H::Msg>>) {
        let now = mailbox.now_us();
        // 1. Judge last period's probes: no ack at all means Suspect.
        let unanswered: Vec<Probe> = self.core.pending.drain(..).collect();
        for probe in unanswered {
            if self.core.table.start_suspect(probe.target, now) {
                self.core.stats.suspicions_local += 1;
                mailbox.note(Some(probe.target), TraceReason::Suspected);
            }
        }
        mailbox.cancel_timer(MEMBER_TIMER_RTT);
        self.core.indirect_fired = false;
        // 2. Sweep suspicion deadlines.
        for node in self
            .core
            .table
            .sweep_suspects(now, self.core.cfg.suspect_timeout_us())
        {
            self.core.stats.deaths_declared += 1;
            mailbox.note(Some(node), TraceReason::DeclaredDead);
        }
        // 3. Probe fresh targets (or keep trying to join an empty view).
        if self.core.table.live_view().is_empty() {
            if !self.core.joined {
                self.core.send_join(mailbox);
            }
        } else {
            let fanout = self.core.cfg.probe_fanout.max(1);
            let targets = self.core.draw_targets(mailbox, fanout, None);
            if !targets.is_empty() {
                for target in targets {
                    self.core.seq += 1;
                    let seq = self.core.seq;
                    let me = self.core.me;
                    self.core
                        .send_control(mailbox, target, PING_BASE_BYTES, |updates| {
                            MemberMsg::Ping {
                                seq,
                                origin: me,
                                updates,
                            }
                        });
                    self.core.stats.probes_sent += 1;
                    self.core.pending.push(Probe {
                        target,
                        seq,
                        sent_at_us: now,
                    });
                }
                mailbox.set_timer(self.core.cfg.rtt_timeout_us, MEMBER_TIMER_RTT);
            }
        }
        mailbox.set_timer(self.core.cfg.probe_interval_us, MEMBER_TIMER_TICK);
    }

    fn on_rtt_deadline(&mut self, mailbox: &mut dyn Mailbox<MemberMsg<H::Msg>>) {
        if self.core.indirect_fired || self.core.pending.is_empty() {
            return;
        }
        self.core.indirect_fired = true;
        // Ask k proxies to probe every still-unacked target.
        let pending: Vec<Probe> = self.core.pending.clone();
        for probe in pending {
            let proxies =
                self.core
                    .draw_targets(mailbox, self.core.cfg.proxies, Some(probe.target));
            for proxy in proxies {
                let (seq, target) = (probe.seq, probe.target);
                self.core
                    .send_control(mailbox, proxy, PING_REQ_BASE_BYTES, |updates| {
                        MemberMsg::PingReq {
                            seq,
                            target,
                            updates,
                        }
                    });
                self.core.stats.ping_reqs_sent += 1;
            }
        }
    }
}

impl<H: Handler> Handler for Member<H> {
    type Msg = MemberMsg<H::Msg>;

    fn on_start(&mut self, mailbox: &mut dyn Mailbox<Self::Msg>) {
        let me = mailbox.me();
        let n = mailbox.n();
        let retransmit_limit = self.core.cfg.retransmit_limit_for(n);
        let max_queue = self.core.cfg.max_queue_for(n);
        self.core.me = me;
        self.core.n = n;
        self.core.table = MemberTable::new(me, n, retransmit_limit, max_queue);
        self.core.stats = MemberStats::default();
        self.core.rtt_us = Histogram::new();
        self.core.seq = 0;
        self.core.pending.clear();
        self.core.indirect_fired = false;
        self.core.started = true;
        if self.core.cfg.static_bootstrap {
            for i in 0..n {
                self.core.table.bootstrap(NodeId::new(i));
            }
            self.core.joined = true;
        } else {
            let seeds = self.core.cfg.seeds.clone();
            for s in &seeds {
                self.core.table.bootstrap(*s);
            }
            // Seeds themselves (and seedless singletons) have nobody to
            // ask; everyone else announces itself to one seed.
            self.core.joined = seeds.is_empty() || seeds.contains(&me);
            if !self.core.joined {
                self.core.send_join(mailbox);
            }
        }
        mailbox.set_timer(
            stagger_us(me, self.core.cfg.probe_interval_us, TICK_SALT),
            MEMBER_TIMER_TICK,
        );
        let mut inner_mailbox = MemberMailbox {
            outer: mailbox,
            core: &mut self.core,
        };
        self.inner.on_start(&mut inner_mailbox);
    }

    fn on_message(&mut self, from: NodeId, msg: Self::Msg, mailbox: &mut dyn Mailbox<Self::Msg>) {
        // Rumors ride every variant; fold them in before the payload.
        self.core.apply_updates(from, msg.updates(), mailbox);
        match msg {
            MemberMsg::Ping { seq, origin, .. } => {
                self.core.stats.pings_rx += 1;
                self.core
                    .send_control(mailbox, from, ACK_BASE_BYTES, |updates| MemberMsg::Ack {
                        seq,
                        origin,
                        updates,
                    });
            }
            MemberMsg::Ack { seq, origin, .. } => {
                if origin == self.core.me {
                    let now = mailbox.now_us();
                    if let Some(pos) = self.core.pending.iter().position(|p| p.seq == seq) {
                        let probe = self.core.pending.remove(pos);
                        self.core
                            .rtt_us
                            .record(now.saturating_sub(probe.sent_at_us));
                        self.core.stats.acks_rx += 1;
                    }
                } else if origin.index() < self.core.n {
                    self.core
                        .send_control(mailbox, origin, ACK_BASE_BYTES, |updates| MemberMsg::Ack {
                            seq,
                            origin,
                            updates,
                        });
                    self.core.stats.acks_relayed += 1;
                }
            }
            MemberMsg::PingReq { seq, target, .. } => {
                self.core.stats.ping_reqs_rx += 1;
                if target.index() < self.core.n && target != self.core.me {
                    self.core
                        .send_control(mailbox, target, PING_BASE_BYTES, |updates| {
                            MemberMsg::Ping {
                                seq,
                                origin: from,
                                updates,
                            }
                        });
                }
            }
            MemberMsg::Join { .. } => {
                // The joiner's self-claim arrived via updates above. Reply
                // with the full table, chunked to the datagram budget.
                self.core.stats.joins_answered += 1;
                let snapshot = self.core.table.snapshot(from);
                let per_chunk = self
                    .core
                    .cfg
                    .budget_bytes
                    .saturating_sub(JOIN_ACK_BASE_BYTES + VEC_LEN_BYTES)
                    / UPDATE_WIRE_BYTES;
                for chunk in snapshot.chunks(per_chunk.max(1)) {
                    let updates = chunk.to_vec();
                    let bytes =
                        JOIN_ACK_BASE_BYTES + VEC_LEN_BYTES + UPDATE_WIRE_BYTES * updates.len();
                    mailbox.send(
                        from,
                        Phase::Membership,
                        (bytes * 8) as u32,
                        MemberMsg::JoinAck { updates },
                    );
                }
            }
            MemberMsg::JoinAck { .. } => {
                self.core.joined = true;
            }
            MemberMsg::Leave { incarnation, .. } => {
                self.core.stats.leaves_rx += 1;
                if from != self.core.me && from.index() < self.core.n {
                    let now = mailbox.now_us();
                    let update = Update {
                        node: from,
                        incarnation,
                        state: Liveness::Dead,
                    };
                    self.core.apply_one(update, now, mailbox);
                }
            }
            MemberMsg::App { payload, .. } => {
                let mut inner_mailbox = MemberMailbox {
                    outer: mailbox,
                    core: &mut self.core,
                };
                self.inner.on_message(from, payload, &mut inner_mailbox);
            }
        }
    }

    fn on_timer(&mut self, timer: TimerId, mailbox: &mut dyn Mailbox<Self::Msg>) {
        match timer {
            MEMBER_TIMER_TICK => self.on_tick(mailbox),
            MEMBER_TIMER_RTT => self.on_rtt_deadline(mailbox),
            inner_timer => {
                let mut inner_mailbox = MemberMailbox {
                    outer: mailbox,
                    core: &mut self.core,
                };
                self.inner.on_timer(inner_timer, &mut inner_mailbox);
            }
        }
    }

    fn fill_registry(&self, registry: &mut Registry) {
        self.core.stats.fill_registry(registry);
        let (alive, suspect, dead, unknown) = self.core.table.counts();
        registry.add_gauge("member_alive", "Peers believed alive", &[], alive as f64);
        registry.add_gauge(
            "member_suspect",
            "Peers under suspicion",
            &[],
            suspect as f64,
        );
        registry.add_gauge("member_dead", "Peers believed dead", &[], dead as f64);
        registry.add_gauge("member_unknown", "Ids never heard of", &[], unknown as f64);
        registry.merge_histogram(
            "member_probe_rtt_us",
            "Round-trip time of acked probes (µs)",
            &[],
            &self.core.rtt_us,
        );
        self.inner.fill_registry(registry);
    }

    fn status_lines(&self, now_us: u64) -> Vec<(String, String)> {
        let (alive, suspect, dead, unknown) = self.core.table.counts();
        let mut lines = vec![
            (
                "member.incarnation".to_string(),
                self.core.table.my_incarnation().to_string(),
            ),
            (
                "member.counts".to_string(),
                format!("alive={alive} suspect={suspect} dead={dead} unknown={unknown}"),
            ),
        ];
        if self.core.n <= 64 {
            let mut view = String::new();
            for i in 0..self.core.n {
                let node = NodeId::new(i);
                let label = if node == self.core.me {
                    "self"
                } else {
                    match self.core.table.record(node) {
                        Some(r) if r.known => r.state.as_str(),
                        _ => "unknown",
                    }
                };
                if !view.is_empty() {
                    view.push(' ');
                }
                view.push_str(&format!("{i}:{label}"));
            }
            lines.push(("member.view".to_string(), view));
        }
        lines.extend(self.inner.status_lines(now_us));
        lines
    }
}

/// The mailbox the wrapped handler sees: sends are enveloped in
/// [`MemberMsg::App`] with piggybacked rumors, and peer sampling draws
/// from the live membership view. Everything else passes through.
struct MemberMailbox<'a, M> {
    outer: &'a mut dyn Mailbox<MemberMsg<M>>,
    core: &'a mut Core,
}

impl<M> Mailbox<M> for MemberMailbox<'_, M> {
    fn me(&self) -> NodeId {
        self.outer.me()
    }

    fn n(&self) -> usize {
        self.outer.n()
    }

    fn now_us(&self) -> u64 {
        self.outer.now_us()
    }

    fn send(&mut self, to: NodeId, phase: Phase, bits: u32, msg: M) {
        let payload_bytes = (bits as usize).div_ceil(8);
        let updates = self.core.piggyback_for(APP_BASE_BYTES + payload_bytes);
        let overhead_bytes = APP_BASE_BYTES + VEC_LEN_BYTES + UPDATE_WIRE_BYTES * updates.len();
        self.outer.send(
            to,
            phase,
            bits + (overhead_bytes * 8) as u32,
            MemberMsg::App {
                payload: msg,
                updates,
            },
        );
    }

    fn set_timer(&mut self, delay_us: u64, timer: TimerId) {
        self.outer.set_timer(delay_us, timer);
    }

    fn cancel_timer(&mut self, timer: TimerId) {
        self.outer.cancel_timer(timer);
    }

    fn rng_mut(&mut self) -> &mut rand::rngs::SmallRng {
        self.outer.rng_mut()
    }

    fn sample_peer(&mut self) -> NodeId {
        // The seam cashes out: the wrapped protocol samples the *live*
        // view. An empty view degenerates to self, a loopback no-op.
        let me = self.outer.me();
        sample_from_view(self.outer.rng_mut(), me, self.core.table.live_view())
    }

    fn note(&mut self, peer: Option<NodeId>, reason: TraceReason) {
        self.outer.note(peer, reason);
    }

    fn trace_ctx(&self) -> gossip_obs::TraceCtx {
        // Detector pings/acks must stay on the causal chain of the event
        // that triggered them, not restart at TraceCtx::NONE.
        self.outer.trace_ctx()
    }
}
