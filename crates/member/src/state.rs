//! The membership state machine: per-peer liveness records with
//! incarnation-number precedence, plus the bounded freshest-first
//! dissemination queue.
//!
//! This module is pure state — no I/O, no RNG, no clocks of its own
//! (callers pass `now_us` in) — so the SWIM rules can be property-tested
//! in isolation and the [`Member`](crate::Member) handler stays a thin
//! event loop around it.
//!
//! ## Precedence
//!
//! Every claim about a node carries that node's *incarnation number*, a
//! counter only the node itself may advance. A claim supersedes the
//! current record iff its incarnation is higher, or equal with a worse
//! state (`Alive < Suspect < Dead`):
//!
//! * `Suspect{inc}` overrides `Alive{inc}` — a detector needs no
//!   cooperation from the suspect.
//! * `Alive{inc+1}` overrides `Suspect{inc}` — the refutation a live
//!   suspect broadcasts when it hears the rumor about itself.
//! * `Dead{inc}` overrides both at the same incarnation, and a *stale*
//!   `Alive` can never resurrect a tombstone: only the node itself, by
//!   rejoining at a **higher** incarnation, comes back — which is exactly
//!   what a rejoiner does after its first refutation bump.

use gossip_net::NodeId;

/// Liveness states a peer moves through, ordered by "badness".
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Liveness {
    /// Believed up: probes get acked, or someone recently said so.
    Alive,
    /// A probe went unanswered (directly and through proxies); the rumor
    /// is out and the node has a suspicion timeout to refute it.
    Suspect,
    /// The suspicion timeout expired (or the node announced a leave).
    /// Terminal for this incarnation.
    Dead,
}

impl Liveness {
    /// Precedence rank at equal incarnation: worse news wins.
    pub fn rank(self) -> u8 {
        match self {
            Liveness::Alive => 0,
            Liveness::Suspect => 1,
            Liveness::Dead => 2,
        }
    }

    /// Stable lowercase label for status pages and tables.
    pub fn as_str(self) -> &'static str {
        match self {
            Liveness::Alive => "alive",
            Liveness::Suspect => "suspect",
            Liveness::Dead => "dead",
        }
    }

    /// Wire tag (total decoder counterpart is [`Liveness::from_wire`]).
    pub fn to_wire(self) -> u8 {
        self.rank()
    }

    /// Decode a wire tag; `None` for hostile bytes.
    pub fn from_wire(tag: u8) -> Option<Liveness> {
        match tag {
            0 => Some(Liveness::Alive),
            1 => Some(Liveness::Suspect),
            2 => Some(Liveness::Dead),
            _ => None,
        }
    }
}

/// One disseminated claim: `node` is in `state` at `incarnation`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Update {
    /// The subject of the claim.
    pub node: NodeId,
    /// The subject's incarnation number the claimant knew.
    pub incarnation: u64,
    /// The claimed state.
    pub state: Liveness,
}

/// Exact wire size of one [`Update`]: u32 id + u64 incarnation + u8 state.
pub const UPDATE_WIRE_BYTES: usize = 4 + 8 + 1;

/// Does `(new_state, new_inc)` supersede `(old_state, old_inc)`?
pub fn supersedes(new_state: Liveness, new_inc: u64, old_state: Liveness, old_inc: u64) -> bool {
    new_inc > old_inc || (new_inc == old_inc && new_state.rank() > old_state.rank())
}

/// What this node currently believes about one peer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PeerRecord {
    /// Believed state. Meaningless until [`PeerRecord::known`].
    pub state: Liveness,
    /// Highest incarnation seen for this peer.
    pub incarnation: u64,
    /// Has this id ever been heard of? Unknown ids are not in any view.
    pub known: bool,
    /// When the current state was entered (µs); the suspicion deadline
    /// base for `Suspect` records.
    pub since_us: u64,
}

impl PeerRecord {
    fn unknown() -> Self {
        PeerRecord {
            state: Liveness::Alive,
            incarnation: 0,
            known: false,
            since_us: 0,
        }
    }
}

/// State transitions [`MemberTable::apply`] reports back to the handler,
/// which turns them into trace notes, counters and re-dissemination.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Transition {
    /// A previously unknown id entered the view (joined), or a dead one
    /// came back at a higher incarnation (rejoined).
    Joined,
    /// Alive → Suspect.
    Suspected,
    /// Suspect → Alive at a higher incarnation (the suspicion was wrong).
    Refuted,
    /// Any state → Dead.
    Died,
    /// The record advanced (e.g. a fresher Alive incarnation) without
    /// changing the liveness class.
    Freshened,
    /// The claim was stale — superseded by what we already believe.
    Stale,
}

/// One slot of the dissemination queue: gossip the *current* record of
/// `node`, `sent` times so far. Reading the record at piggyback time (not
/// at enqueue time) means a queued rumor can only get fresher.
#[derive(Clone, Copy, Debug)]
struct QueueSlot {
    node: NodeId,
    sent: u32,
}

/// The membership table of one node: the universe of `n` possible ids,
/// each with a [`PeerRecord`], an incrementally maintained live view, and
/// the bounded dissemination queue.
#[derive(Clone, Debug)]
pub struct MemberTable {
    me: NodeId,
    records: Vec<PeerRecord>,
    /// Known ids believed up (`Alive` or `Suspect`), excluding `me`,
    /// sorted ascending — the [`PeerView`](gossip_net::PeerView) handed to
    /// the wrapped protocol.
    live: Vec<NodeId>,
    /// At most one pending rumor per node; drained freshest-first.
    queue: Vec<QueueSlot>,
    /// Drop a rumor after this many transmissions.
    retransmit_limit: u32,
    /// Hard cap on queue slots (evicts the most-transmitted beyond it).
    max_queue: usize,
    /// Rumors evicted by the cap before reaching the retransmit limit.
    pub evictions: u64,
}

impl MemberTable {
    /// A table over the id universe `0..n`; only `me` starts known.
    pub fn new(me: NodeId, n: usize, retransmit_limit: u32, max_queue: usize) -> Self {
        let mut records = vec![PeerRecord::unknown(); n];
        records[me.index()].known = true;
        MemberTable {
            me,
            records,
            live: Vec::new(),
            queue: Vec::new(),
            retransmit_limit,
            max_queue,
            evictions: 0,
        }
    }

    /// This node's own incarnation number.
    pub fn my_incarnation(&self) -> u64 {
        self.records[self.me.index()].incarnation
    }

    /// Advance own incarnation past `claimed` (refutation) and queue the
    /// fresh self-Alive rumor. Returns the new incarnation.
    pub fn refute(&mut self, claimed: u64) -> u64 {
        let rec = &mut self.records[self.me.index()];
        rec.incarnation = rec.incarnation.max(claimed) + 1;
        rec.state = Liveness::Alive;
        let inc = rec.incarnation;
        self.enqueue(self.me);
        inc
    }

    /// The record for `node` (`None` outside the universe).
    pub fn record(&self, node: NodeId) -> Option<&PeerRecord> {
        self.records.get(node.index())
    }

    /// Known ids believed up (Alive or Suspect), excluding `me`, sorted.
    pub fn live_view(&self) -> &Vec<NodeId> {
        &self.live
    }

    /// `(alive, suspect, dead, unknown)` counts over the universe,
    /// excluding `me` (a node does not report on itself).
    pub fn counts(&self) -> (usize, usize, usize, usize) {
        let (mut a, mut s, mut d, mut u) = (0, 0, 0, 0);
        for (i, rec) in self.records.iter().enumerate() {
            if i == self.me.index() {
                continue;
            }
            if !rec.known {
                u += 1;
            } else {
                match rec.state {
                    Liveness::Alive => a += 1,
                    Liveness::Suspect => s += 1,
                    Liveness::Dead => d += 1,
                }
            }
        }
        (a, s, d, u)
    }

    /// Install `node` as known-Alive at incarnation 0 without queueing a
    /// rumor — the bootstrap path for seeds and static full views.
    pub fn bootstrap(&mut self, node: NodeId) {
        if node == self.me || node.index() >= self.records.len() {
            return;
        }
        let rec = &mut self.records[node.index()];
        if !rec.known {
            rec.known = true;
            rec.state = Liveness::Alive;
            rec.incarnation = 0;
            self.insert_live(node);
        }
    }

    /// Apply one claim about `update.node` (never `me` — the handler
    /// intercepts self-claims for refutation first). Updates the record,
    /// the live view, and — for genuine news — queues re-dissemination.
    pub fn apply(&mut self, update: Update, now_us: u64) -> Transition {
        let idx = update.node.index();
        debug_assert!(update.node != self.me);
        let rec = self.records[idx];
        if rec.known && !supersedes(update.state, update.incarnation, rec.state, rec.incarnation) {
            // Equal (state, incarnation) is confirmation, not news; either
            // way there is nothing to change or re-disseminate.
            return Transition::Stale;
        }
        let was = if rec.known { Some(rec.state) } else { None };
        let rec = &mut self.records[idx];
        rec.known = true;
        rec.state = update.state;
        rec.incarnation = update.incarnation;
        rec.since_us = now_us;
        let transition = match (was, update.state) {
            (None, Liveness::Alive) | (None, Liveness::Suspect) => Transition::Joined,
            (None, Liveness::Dead) => Transition::Died,
            (Some(Liveness::Dead), Liveness::Alive) => Transition::Joined,
            (Some(Liveness::Suspect), Liveness::Alive) => Transition::Refuted,
            (Some(Liveness::Alive), Liveness::Alive) => Transition::Freshened,
            (Some(Liveness::Dead), Liveness::Suspect) => Transition::Joined,
            (Some(_), Liveness::Suspect) => Transition::Suspected,
            (Some(Liveness::Dead), Liveness::Dead) => Transition::Freshened,
            (Some(_), Liveness::Dead) => Transition::Died,
        };
        match update.state {
            Liveness::Alive | Liveness::Suspect => self.insert_live(update.node),
            Liveness::Dead => self.remove_live(update.node),
        }
        self.enqueue(update.node);
        transition
    }

    /// The local detector starts suspecting `node` (probe timed out) at
    /// its current incarnation. No-op unless the record is known-Alive.
    pub fn start_suspect(&mut self, node: NodeId, now_us: u64) -> bool {
        let idx = node.index();
        if idx >= self.records.len() || node == self.me {
            return false;
        }
        let rec = &mut self.records[idx];
        if !rec.known || rec.state != Liveness::Alive {
            return false;
        }
        rec.state = Liveness::Suspect;
        rec.since_us = now_us;
        self.enqueue(node);
        true
    }

    /// Expire suspicions older than `timeout_us`: each becomes Dead *at
    /// the incarnation that was suspected* — a refutation that arrived
    /// meanwhile moved the record to a higher incarnation and is immune.
    /// Returns the newly declared dead, in id order.
    pub fn sweep_suspects(&mut self, now_us: u64, timeout_us: u64) -> Vec<NodeId> {
        let mut dead = Vec::new();
        for idx in 0..self.records.len() {
            let rec = self.records[idx];
            if rec.known
                && rec.state == Liveness::Suspect
                && now_us.saturating_sub(rec.since_us) >= timeout_us
            {
                let node = NodeId::new(idx);
                self.records[idx].state = Liveness::Dead;
                self.records[idx].since_us = now_us;
                self.remove_live(node);
                self.enqueue(node);
                dead.push(node);
            }
        }
        dead
    }

    /// Drain up to `max` rumors, freshest-first (fewest transmissions,
    /// then highest id recency tiebreak by id for determinism), reading
    /// each node's *current* record. Slots at the retransmit limit are
    /// retired.
    pub fn next_piggyback(&mut self, max: usize) -> Vec<Update> {
        if max == 0 || self.queue.is_empty() {
            return Vec::new();
        }
        self.queue.sort_by_key(|s| (s.sent, s.node.index()));
        let mut out = Vec::new();
        for slot in self.queue.iter_mut().take(max) {
            let rec = self.records[slot.node.index()];
            out.push(Update {
                node: slot.node,
                incarnation: rec.incarnation,
                state: rec.state,
            });
            slot.sent += 1;
        }
        let limit = self.retransmit_limit;
        self.queue.retain(|s| s.sent < limit);
        out
    }

    /// A full-table snapshot for a join reply: every known record except
    /// `exclude`'s own, in id order. (Chunking to datagram budget is the
    /// caller's job.)
    pub fn snapshot(&self, exclude: NodeId) -> Vec<Update> {
        self.records
            .iter()
            .enumerate()
            .filter(|(i, r)| r.known && NodeId::new(*i) != exclude)
            .map(|(i, r)| Update {
                node: NodeId::new(i),
                incarnation: r.incarnation,
                state: r.state,
            })
            .collect()
    }

    /// Number of rumors currently queued for dissemination.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    fn enqueue(&mut self, node: NodeId) {
        if let Some(slot) = self.queue.iter_mut().find(|s| s.node == node) {
            // Fresh news about a queued node restarts its rumor.
            slot.sent = 0;
            return;
        }
        if self.queue.len() >= self.max_queue {
            // Evict the most-transmitted rumor to make room.
            if let Some((pos, _)) = self
                .queue
                .iter()
                .enumerate()
                .max_by_key(|(i, s)| (s.sent, usize::MAX - i))
            {
                self.queue.swap_remove(pos);
                self.evictions += 1;
            }
        }
        self.queue.push(QueueSlot { node, sent: 0 });
    }

    fn insert_live(&mut self, node: NodeId) {
        if let Err(pos) = self.live.binary_search(&node) {
            self.live.insert(pos, node);
        }
    }

    fn remove_live(&mut self, node: NodeId) {
        if let Ok(pos) = self.live.binary_search(&node) {
            self.live.remove(pos);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(n: usize) -> MemberTable {
        MemberTable::new(NodeId::new(0), n, 6, 64)
    }

    fn up(node: usize, inc: u64, state: Liveness) -> Update {
        Update {
            node: NodeId::new(node),
            incarnation: inc,
            state,
        }
    }

    #[test]
    fn precedence_ladder() {
        // Same incarnation: worse state wins; higher incarnation: anything wins.
        assert!(supersedes(Liveness::Suspect, 3, Liveness::Alive, 3));
        assert!(supersedes(Liveness::Dead, 3, Liveness::Suspect, 3));
        assert!(!supersedes(Liveness::Alive, 3, Liveness::Suspect, 3));
        assert!(supersedes(Liveness::Alive, 4, Liveness::Suspect, 3));
        assert!(supersedes(Liveness::Alive, 4, Liveness::Dead, 3));
        assert!(!supersedes(Liveness::Alive, 3, Liveness::Dead, 3));
        assert!(!supersedes(Liveness::Dead, 2, Liveness::Alive, 3));
        assert!(!supersedes(Liveness::Alive, 3, Liveness::Alive, 3));
    }

    #[test]
    fn join_suspect_refute_die_lifecycle() {
        let mut t = table(4);
        assert_eq!(t.apply(up(2, 0, Liveness::Alive), 10), Transition::Joined);
        assert_eq!(t.live_view(), &vec![NodeId::new(2)]);
        assert_eq!(
            t.apply(up(2, 0, Liveness::Suspect), 20),
            Transition::Suspected
        );
        assert_eq!(
            t.live_view(),
            &vec![NodeId::new(2)],
            "suspects stay in view"
        );
        assert_eq!(t.apply(up(2, 1, Liveness::Alive), 30), Transition::Refuted);
        assert_eq!(t.apply(up(2, 1, Liveness::Dead), 40), Transition::Died);
        assert!(t.live_view().is_empty());
        // Stale alive cannot resurrect; a higher incarnation rejoins.
        assert_eq!(t.apply(up(2, 1, Liveness::Alive), 50), Transition::Stale);
        assert_eq!(t.record(NodeId::new(2)).unwrap().state, Liveness::Dead);
        assert_eq!(t.apply(up(2, 2, Liveness::Alive), 60), Transition::Joined);
        assert_eq!(t.live_view(), &vec![NodeId::new(2)]);
    }

    #[test]
    fn suspicion_sweep_kills_only_the_suspected_incarnation() {
        let mut t = table(4);
        t.apply(up(1, 0, Liveness::Alive), 0);
        t.apply(up(2, 0, Liveness::Alive), 0);
        assert!(t.start_suspect(NodeId::new(1), 100));
        assert!(t.start_suspect(NodeId::new(2), 100));
        // Node 2 refutes in time; node 1 does not.
        assert_eq!(t.apply(up(2, 1, Liveness::Alive), 150), Transition::Refuted);
        let dead = t.sweep_suspects(300, 200);
        assert_eq!(dead, vec![NodeId::new(1)]);
        assert_eq!(t.record(NodeId::new(2)).unwrap().state, Liveness::Alive);
        assert_eq!(t.live_view(), &vec![NodeId::new(2)]);
    }

    #[test]
    fn refute_bumps_past_the_claim() {
        let mut t = table(4);
        assert_eq!(t.my_incarnation(), 0);
        assert_eq!(t.refute(5), 6);
        assert_eq!(t.my_incarnation(), 6);
        // The self rumor is queued for dissemination.
        let ups = t.next_piggyback(8);
        assert_eq!(ups, vec![up(0, 6, Liveness::Alive)]);
    }

    #[test]
    fn piggyback_is_freshest_first_and_retires_at_the_limit() {
        let mut t = MemberTable::new(NodeId::new(0), 8, 2, 64);
        t.apply(up(1, 0, Liveness::Alive), 0);
        t.apply(up(2, 0, Liveness::Alive), 0);
        // Send node-1 and node-2 rumors once.
        assert_eq!(t.next_piggyback(8).len(), 2);
        // Fresh news about 3: it goes first now (fewest transmissions).
        t.apply(up(3, 0, Liveness::Alive), 0);
        let ups = t.next_piggyback(1);
        assert_eq!(ups[0].node, NodeId::new(3));
        // 1 and 2 hit the retransmit limit on this drain and retire.
        assert_eq!(t.next_piggyback(2).len(), 2);
        assert_eq!(t.next_piggyback(8), vec![up(3, 0, Liveness::Alive)]);
        assert_eq!(t.queue_len(), 0);
    }

    #[test]
    fn piggyback_reads_current_records_not_enqueue_time_state() {
        let mut t = table(8);
        t.apply(up(1, 0, Liveness::Alive), 0);
        // Before any drain the record worsens; the rumor must carry Suspect.
        t.apply(up(1, 0, Liveness::Suspect), 5);
        let ups = t.next_piggyback(8);
        assert_eq!(ups, vec![up(1, 0, Liveness::Suspect)]);
    }

    #[test]
    fn queue_cap_evicts_most_transmitted() {
        let mut t = MemberTable::new(NodeId::new(0), 8, 10, 2);
        t.apply(up(1, 0, Liveness::Alive), 0);
        t.apply(up(2, 0, Liveness::Alive), 0);
        t.next_piggyback(1); // node 1 now has sent=1
        t.apply(up(3, 0, Liveness::Alive), 0); // cap 2: evicts node 1
        assert_eq!(t.evictions, 1);
        let ups = t.next_piggyback(8);
        let nodes: Vec<usize> = ups.iter().map(|u| u.node.index()).collect();
        assert!(!nodes.contains(&1));
    }

    #[test]
    fn bootstrap_installs_without_rumors() {
        let mut t = table(4);
        t.bootstrap(NodeId::new(3));
        t.bootstrap(NodeId::new(3));
        assert_eq!(t.live_view(), &vec![NodeId::new(3)]);
        assert_eq!(t.queue_len(), 0);
        assert_eq!(t.counts(), (1, 0, 0, 2));
    }

    #[test]
    fn snapshot_lists_known_records_in_id_order() {
        let mut t = table(6);
        t.apply(up(4, 1, Liveness::Alive), 0);
        t.apply(up(2, 0, Liveness::Dead), 0);
        let snap = t.snapshot(NodeId::new(4));
        let nodes: Vec<usize> = snap.iter().map(|u| u.node.index()).collect();
        assert_eq!(nodes, vec![0, 2], "me and node 2, excluding the asker");
    }
}
