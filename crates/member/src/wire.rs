//! Wire-codec impls for the membership envelope, so [`Member`] runs
//! unchanged on the real-socket host (`gossip-node`).
//!
//! The layout mirrors the modelled sizing exactly: a one-byte tag, the
//! variant's fixed fields, then the piggybacked rumor vector (u32 count +
//! 13 bytes per [`Update`]: u32 id, u64 incarnation, u8 state). The
//! [`payload_bytes`] helper is the byte-length twin of the encoder —
//! pinned equal to `to_wire_bytes().len()` by the property suite — which
//! is what the piggyback budget arithmetic in `swim.rs` relies on to keep
//! every datagram under `budget_bytes` and away from `send_oversize`.
//!
//! The decoder is total: truncated, oversized, bit-flipped and
//! hostile-length input returns [`WireError`], never a panic. Decoding is
//! only the first gate — a structurally valid rumor can still be hostile
//! (subject outside the universe, stale incarnation, self-referential
//! death claim), which [`Member`] rejects and counts before trusting
//! (`member_forged_*`, `member_stale_updates_total`).
//!
//! [`Member`]: crate::Member

use crate::state::{Liveness, Update, UPDATE_WIRE_BYTES};
use crate::swim::MemberMsg;
use gossip_net::{NodeId, WireError, WireMsg, WireReader, WireWriter};

const TAG_PING: u8 = 0;
const TAG_ACK: u8 = 1;
const TAG_PING_REQ: u8 = 2;
const TAG_JOIN: u8 = 3;
const TAG_JOIN_ACK: u8 = 4;
const TAG_LEAVE: u8 = 5;
const TAG_APP: u8 = 6;

impl WireMsg for Update {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u32(self.node.index() as u32);
        w.put_u64(self.incarnation);
        w.put_u8(self.state.to_wire());
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let node = NodeId::new(r.take_u32()? as usize);
        let incarnation = r.take_u64()?;
        let tag = r.take_u8()?;
        let state = Liveness::from_wire(tag).ok_or(WireError::BadTag { tag })?;
        Ok(Update {
            node,
            incarnation,
            state,
        })
    }
}

impl<M: WireMsg> WireMsg for MemberMsg<M> {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            MemberMsg::Ping {
                seq,
                origin,
                updates,
            } => {
                w.put_u8(TAG_PING);
                w.put_u64(*seq);
                origin.encode(w);
                updates.encode(w);
            }
            MemberMsg::Ack {
                seq,
                origin,
                updates,
            } => {
                w.put_u8(TAG_ACK);
                w.put_u64(*seq);
                origin.encode(w);
                updates.encode(w);
            }
            MemberMsg::PingReq {
                seq,
                target,
                updates,
            } => {
                w.put_u8(TAG_PING_REQ);
                w.put_u64(*seq);
                target.encode(w);
                updates.encode(w);
            }
            MemberMsg::Join { updates } => {
                w.put_u8(TAG_JOIN);
                updates.encode(w);
            }
            MemberMsg::JoinAck { updates } => {
                w.put_u8(TAG_JOIN_ACK);
                updates.encode(w);
            }
            MemberMsg::Leave {
                incarnation,
                updates,
            } => {
                w.put_u8(TAG_LEAVE);
                w.put_u64(*incarnation);
                updates.encode(w);
            }
            MemberMsg::App { payload, updates } => {
                w.put_u8(TAG_APP);
                payload.encode(w);
                updates.encode(w);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.take_u8()? {
            TAG_PING => Ok(MemberMsg::Ping {
                seq: r.take_u64()?,
                origin: NodeId::decode(r)?,
                updates: Vec::<Update>::decode(r)?,
            }),
            TAG_ACK => Ok(MemberMsg::Ack {
                seq: r.take_u64()?,
                origin: NodeId::decode(r)?,
                updates: Vec::<Update>::decode(r)?,
            }),
            TAG_PING_REQ => Ok(MemberMsg::PingReq {
                seq: r.take_u64()?,
                target: NodeId::decode(r)?,
                updates: Vec::<Update>::decode(r)?,
            }),
            TAG_JOIN => Ok(MemberMsg::Join {
                updates: Vec::<Update>::decode(r)?,
            }),
            TAG_JOIN_ACK => Ok(MemberMsg::JoinAck {
                updates: Vec::<Update>::decode(r)?,
            }),
            TAG_LEAVE => Ok(MemberMsg::Leave {
                incarnation: r.take_u64()?,
                updates: Vec::<Update>::decode(r)?,
            }),
            TAG_APP => Ok(MemberMsg::App {
                payload: M::decode(r)?,
                updates: Vec::<Update>::decode(r)?,
            }),
            tag => Err(WireError::BadTag { tag }),
        }
    }
}

/// Exact encoded size of `msg` in bytes, given the encoded size of the
/// wrapped payload for [`MemberMsg::App`] (`app_payload_bytes` is ignored
/// for control variants). The size-twin of [`WireMsg::encode`].
pub fn payload_bytes<M: WireMsg>(msg: &MemberMsg<M>, app_payload_bytes: usize) -> usize {
    let updates_bytes = 4 + UPDATE_WIRE_BYTES * msg.updates().len();
    match msg {
        MemberMsg::Ping { .. } | MemberMsg::Ack { .. } | MemberMsg::PingReq { .. } => {
            1 + 8 + 4 + updates_bytes
        }
        MemberMsg::Join { .. } | MemberMsg::JoinAck { .. } => 1 + updates_bytes,
        MemberMsg::Leave { .. } => 1 + 8 + updates_bytes,
        MemberMsg::App { .. } => 1 + app_payload_bytes + updates_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ups() -> Vec<Update> {
        vec![
            Update {
                node: NodeId::new(3),
                incarnation: 7,
                state: Liveness::Suspect,
            },
            Update {
                node: NodeId::new(9),
                incarnation: 0,
                state: Liveness::Alive,
            },
        ]
    }

    fn round_trip(msg: MemberMsg<u64>) {
        let bytes = msg.to_wire_bytes();
        assert_eq!(bytes.len(), payload_bytes(&msg, 8));
        let mut r = WireReader::new(&bytes);
        let back = MemberMsg::<u64>::decode(&mut r).expect("decodes");
        assert_eq!(back, msg);
        assert_eq!(r.remaining(), 0, "decoder consumed exactly the encoding");
    }

    #[test]
    fn every_variant_round_trips_with_exact_sizes() {
        round_trip(MemberMsg::Ping {
            seq: 42,
            origin: NodeId::new(1),
            updates: ups(),
        });
        round_trip(MemberMsg::Ack {
            seq: 42,
            origin: NodeId::new(1),
            updates: Vec::new(),
        });
        round_trip(MemberMsg::PingReq {
            seq: 7,
            target: NodeId::new(5),
            updates: ups(),
        });
        round_trip(MemberMsg::Join { updates: ups() });
        round_trip(MemberMsg::JoinAck { updates: ups() });
        round_trip(MemberMsg::Leave {
            incarnation: 3,
            updates: ups(),
        });
        round_trip(MemberMsg::App {
            payload: 0xDEAD_BEEF_u64,
            updates: ups(),
        });
    }

    #[test]
    fn hostile_liveness_tag_is_rejected() {
        let good = Update {
            node: NodeId::new(1),
            incarnation: 1,
            state: Liveness::Dead,
        };
        let mut bytes = good.to_wire_bytes();
        assert_eq!(bytes.len(), UPDATE_WIRE_BYTES);
        *bytes.last_mut().unwrap() = 9;
        let mut r = WireReader::new(&bytes);
        assert!(Update::decode(&mut r).is_err());
    }
}
