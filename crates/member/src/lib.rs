//! # gossip-member
//!
//! SWIM-style dynamic membership for the gossip stack: join-via-any-seed,
//! periodic probe/ping-req failure detection, Alive/Suspect/Dead records
//! with incarnation-number refutation, and piggybacked rumor
//! dissemination — all as a [`Handler`](gossip_net::Handler) wrapper
//! ([`Member<H>`]) that runs unchanged on every backend: the event
//! driver, the sharded driver (bit-identical `order_hash` across shard
//! counts), and the real-UDP host.
//!
//! The wrapped application protocol keeps calling
//! [`Mailbox::sample_peer`](gossip_net::Mailbox::sample_peer) and gets
//! the **discovered live view** (the [`PeerView`](gossip_net::PeerView)
//! seam); its outgoing messages carry membership rumors within a strict
//! datagram budget. See `DESIGN.md` §7 for the state machine, the
//! piggyback budget rules and how simulated churn maps onto detector
//! events.
//!
//! ```
//! use gossip_member::{Member, MemberConfig};
//! use gossip_net::NodeId;
//!
//! // Wrap any Handler; node 0 is the seed everyone else joins through.
//! let cfg = MemberConfig::with_seeds(vec![NodeId::new(0)]);
//! let _factory = move |_me: NodeId| Member::new(cfg.clone(), Probe::default());
//!
//! #[derive(Default)]
//! struct Probe;
//! impl gossip_net::Handler for Probe {
//!     type Msg = u64;
//!     fn on_start(&mut self, _mb: &mut dyn gossip_net::Mailbox<u64>) {}
//!     fn on_message(
//!         &mut self,
//!         _from: NodeId,
//!         _msg: u64,
//!         _mb: &mut dyn gossip_net::Mailbox<u64>,
//!     ) {
//!     }
//!     fn on_timer(&mut self, _t: gossip_net::TimerId, _mb: &mut dyn gossip_net::Mailbox<u64>) {}
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod state;
pub mod swim;
pub mod wire;

pub use state::{
    supersedes, Liveness, MemberTable, PeerRecord, Transition, Update, UPDATE_WIRE_BYTES,
};
pub use swim::{Member, MemberConfig, MemberMsg, MemberStats, MEMBER_TIMER_RTT, MEMBER_TIMER_TICK};
pub use wire::payload_bytes;
