//! Membership over real UDP: the same [`Member`] wrapper the simulator
//! suites pin, hosted by `gossip-node` on 127.0.0.1 datagrams.
//!
//! Covered here: join-via-seed discovery of a 16-host cluster, the
//! wrapped gossip-max converging over the *discovered* view, failure
//! detection of a killed member within the probe-period bound, graceful
//! leave, the `/status` peer table, and forged membership updates
//! arriving through a real socket — rejected, counted, and harmless.
//!
//! Every test begins with [`sockets_available`] and skips gracefully
//! where loopback binds are forbidden; CI's loopback job probes bind
//! capability first, so a skip there means the runner genuinely has no
//! sockets.

use gossip_drr::handler::{MaxGossipConfig, MaxGossipHandler};
use gossip_member::{Liveness, Member, MemberConfig, MemberMsg, Update};
use gossip_net::{encode_frame, Handler, NodeId, SimConfig};
use gossip_node::LoopbackCluster;
use gossip_obs::Registry;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn sockets_available() -> bool {
    match std::net::UdpSocket::bind(("127.0.0.1", 0)) {
        Ok(_) => true,
        Err(e) => {
            eprintln!("skipping loopback test: UDP bind unavailable ({e})");
            false
        }
    }
}

fn values(n: usize) -> Vec<f64> {
    (0..n).map(|i| ((i * 37) % 1009) as f64).collect()
}

fn max_handler(n: usize, me: NodeId, vals: &[f64]) -> MaxGossipHandler {
    let sim = SimConfig::new(n);
    let config = MaxGossipConfig {
        bits: sim.id_bits() + sim.value_bits(),
        push_interval_us: 1_000,
        fanout: 1,
    };
    MaxGossipHandler::new(me, vals[me.index()], config)
}

type Wrapped = Member<MaxGossipHandler>;

/// Pump every host except `down` (a host never polled is a dead node —
/// its socket still receives, nothing dispatches) until `done` holds.
fn pump_survivors(
    cluster: &mut LoopbackCluster<Wrapped>,
    down: NodeId,
    timeout: Duration,
    mut done: impl FnMut(&LoopbackCluster<Wrapped>) -> bool,
) -> Option<Duration> {
    let started = Instant::now();
    loop {
        if done(cluster) {
            return Some(started.elapsed());
        }
        if started.elapsed() >= timeout {
            return None;
        }
        let mut dispatched = 0;
        for i in 0..cluster.n() {
            let node = NodeId::new(i);
            if node != down {
                dispatched += cluster.poll_node(node);
            }
        }
        dispatched += cluster.pump_status();
        if dispatched == 0 {
            std::thread::sleep(Duration::from_micros(200));
        }
    }
}

#[test]
fn sixteen_hosts_discover_the_cluster_from_one_seed_and_converge() {
    if !sockets_available() {
        return;
    }
    // Only node 0 is known at boot; everyone else joins through it and
    // learns the rest from piggybacked rumors. The wrapped gossip-max,
    // sampling only the discovered view, must still land every node on
    // the exact maximum — the tentpole's acceptance run, on real frames.
    let n = 16;
    let vals = values(n);
    let exact = vals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let member_config =
        MemberConfig::with_seeds(vec![NodeId::new(0)]).with_probe_interval_us(50_000);
    let vals_for_cluster = vals.clone();
    let mut cluster = LoopbackCluster::bind(n, 0x16D, move |me| {
        Member::new(member_config.clone(), max_handler(n, me, &vals_for_cluster))
    })
    .expect("bind loopback cluster");

    let discovered = cluster.run_until(Duration::from_secs(30), |hosts| {
        hosts
            .iter()
            .all(|h| h.handler().is_joined() && h.handler().live_view().len() == n - 1)
    });
    assert!(
        discovered.is_some(),
        "the cluster never fully discovered itself from one seed"
    );

    let converged = cluster.run_until(Duration::from_secs(30), |hosts| {
        hosts
            .iter()
            .all(|h| h.handler().inner().current_max() == exact)
    });
    assert!(
        converged.is_some(),
        "gossip-max over the discovered view never converged"
    );

    // Loss-free loopback: nothing may have been falsely suspected.
    let mut false_suspicions = 0;
    for (_, h) in cluster.iter_handlers() {
        false_suspicions += h.stats().false_suspicions;
    }
    assert_eq!(false_suspicions, 0, "false suspicion on a loss-free wire");
    let totals = cluster.total_stats();
    assert_eq!(totals.decode_errors, 0);
    assert_eq!(
        totals.send_oversize, 0,
        "piggybacking overflowed the datagram budget"
    );
}

#[test]
fn a_killed_member_is_declared_dead_within_three_probe_periods() {
    if !sockets_available() {
        return;
    }
    // Kill one member (stop polling it) and require every survivor to
    // hold a Dead record within the detection bound: one period for the
    // unanswered probe to be judged, one suspect period to expire, one
    // for the sweep — three probe periods, plus scheduling slop.
    let n = 8;
    let vals = values(n);
    let period = Duration::from_millis(150);
    let member_config = MemberConfig {
        suspect_periods: 1,
        probe_fanout: n - 1, // probe everyone every period: tightest tail
        proxies: 2,
        ..MemberConfig::static_full().with_probe_interval_us(period.as_micros() as u64)
    };
    let vals_for_cluster = vals.clone();
    let mut cluster = LoopbackCluster::bind(n, 0xDEAD, move |me| {
        Member::new(member_config.clone(), max_handler(n, me, &vals_for_cluster))
    })
    .expect("bind loopback cluster");

    // Two warmup periods: everyone probing, nobody suspected.
    cluster.run_for(2 * period);
    for (node, h) in cluster.iter_handlers() {
        assert_eq!(
            h.stats().suspicions_local,
            0,
            "node {node:?} suspected someone before the kill"
        );
    }

    let victim = NodeId::new(5);
    let detected = pump_survivors(&mut cluster, victim, 3 * period + period / 2, |c| {
        c.iter_handlers()
            .all(|(node, h)| node == victim || h.state_of(victim) == Some(Liveness::Dead))
    });
    assert!(
        detected.is_some(),
        "the killed member was not declared Dead within three probe periods"
    );

    // The death came from detection, not rumor forgery, and the live
    // views dropped the victim everywhere.
    let mut deaths = 0;
    for (node, h) in cluster.iter_handlers() {
        if node == victim {
            continue;
        }
        deaths += h.stats().deaths_declared + h.stats().deaths_learned;
        assert!(
            !h.live_view().contains(&victim),
            "node {node:?} still samples the dead member"
        );
    }
    assert!(deaths > 0, "nobody recorded the death");
}

#[test]
fn a_graceful_leave_spreads_as_dead_without_any_suspicion() {
    if !sockets_available() {
        return;
    }
    // `--leave` semantics: the departing node announces its own death at
    // a final incarnation; survivors record Dead via the Leave channel —
    // no suspicion, no detection delay, and (per the forgery rules) no
    // piggybacked self-Dead involved.
    let n = 4;
    let vals = values(n);
    let period = Duration::from_millis(150);
    let member_config = MemberConfig {
        probe_fanout: n - 1,
        ..MemberConfig::static_full().with_probe_interval_us(period.as_micros() as u64)
    };
    let vals_for_cluster = vals.clone();
    let mut cluster = LoopbackCluster::bind(n, 0x1EA, move |me| {
        Member::new(member_config.clone(), max_handler(n, me, &vals_for_cluster))
    })
    .expect("bind loopback cluster");
    cluster.run_for(2 * period);

    let leaver = NodeId::new(3);
    // The host-initiated action `examples/node.rs --leave` performs,
    // then the leaver goes silent (no more polling).
    cluster
        .host_mut(leaver)
        .with_handler(|h, mailbox| h.initiate_leave(mailbox));
    let spread = pump_survivors(&mut cluster, leaver, 2 * period, |c| {
        c.iter_handlers()
            .all(|(node, h)| node == leaver || h.state_of(leaver) == Some(Liveness::Dead))
    });
    assert!(
        spread.is_some(),
        "the graceful leave did not reach every survivor"
    );
    let mut leaves = 0;
    for (node, h) in cluster.iter_handlers() {
        if node == leaver {
            continue;
        }
        let s = h.stats();
        leaves += s.leaves_rx;
        assert_eq!(
            s.suspicions_local, 0,
            "node {node:?} suspected the graceful leaver"
        );
        assert_eq!(
            s.forged_self_dead, 0,
            "the Leave channel was mistaken for a forged self-death"
        );
        assert!(
            !h.live_view().contains(&leaver),
            "node {node:?} still samples the leaver"
        );
    }
    assert!(leaves > 0, "nobody received the Leave announcement");
}

#[test]
fn forged_membership_updates_are_rejected_counted_and_harmless() {
    if !sockets_available() {
        return;
    }
    // A hostile peer with real frame-encoding powers tries three forgery
    // shapes against node 0, each riding a well-formed envelope claiming
    // to be node 1: a subject outside the universe, a stale re-assertion,
    // and a self-referential death claim. All three are rejected and
    // counted; none may evict the live node they target.
    let n = 3;
    let vals = values(n);
    let member_config = MemberConfig::static_full().with_probe_interval_us(100_000);
    let vals_for_cluster = vals.clone();
    let mut cluster = LoopbackCluster::bind(n, 0xF06, move |me| {
        Member::new(member_config.clone(), max_handler(n, me, &vals_for_cluster))
    })
    .expect("bind loopback cluster");
    cluster.poll(); // boot
    let target = cluster.host(NodeId::new(0)).local_addr().unwrap();
    let attacker = std::net::UdpSocket::bind(("127.0.0.1", 0)).unwrap();
    let from = NodeId::new(1);

    // An Ack nobody asked for is the quietest carrier: its updates are
    // folded in, its payload matches no pending probe.
    let forge = |updates: Vec<Update>| MemberMsg::<f64>::Ack {
        seq: 0xFFFF,
        origin: NodeId::new(0),
        updates,
    };
    let unknown_subject = forge(vec![Update {
        node: NodeId::new(77),
        incarnation: 3,
        state: Liveness::Alive,
    }]);
    let stale = forge(vec![Update {
        node: NodeId::new(2),
        incarnation: 0,
        state: Liveness::Alive, // already known Alive at 0: no news
    }]);
    let self_dead = forge(vec![Update {
        node: from, // claims *its own sender* is dead — forged by contract
        incarnation: 99,
        state: Liveness::Dead,
    }]);
    for msg in [&unknown_subject, &stale, &self_dead] {
        attacker
            .send_to(&encode_frame(from, msg), target)
            .expect("send forged frame");
    }

    std::thread::sleep(Duration::from_millis(20));
    for _ in 0..50 {
        cluster.poll();
    }

    let handler = cluster.host(NodeId::new(0)).handler();
    let stats = handler.stats();
    assert_eq!(stats.forged_unknown_subject, 1, "subject 77 not rejected");
    assert!(stats.stale_updates >= 1, "stale re-assertion not counted");
    assert_eq!(stats.forged_self_dead, 1, "self-death claim not rejected");
    assert_eq!(
        handler.state_of(from),
        Some(Liveness::Alive),
        "a forged rumor evicted a live node"
    );
    assert_eq!(
        handler.state_of(NodeId::new(2)),
        Some(Liveness::Alive),
        "the stale forgery moved a record"
    );

    // The rejections are visible in the scraped registry, not just the
    // struct — the observability contract of the satellite.
    let mut registry = Registry::new();
    handler.fill_registry(&mut registry);
    assert_eq!(
        registry.counter_value("member_forged_unknown_subject_total", &[]),
        Some(1)
    );
    assert_eq!(
        registry.counter_value("member_forged_self_dead_total", &[]),
        Some(1)
    );
    assert_eq!(registry.gauge_value("member_dead", &[]), Some(0.0));
}

/// Minimal HTTP GET against the cluster status endpoint, pumping the
/// cluster between reads so the single-threaded server makes progress.
fn http_get(cluster: &mut LoopbackCluster<Wrapped>, down: Option<NodeId>, path: &str) -> String {
    let addr = cluster.status_addr().expect("status endpoint bound");
    let stream = TcpStream::connect(addr).expect("connect to status endpoint");
    stream
        .set_read_timeout(Some(Duration::from_millis(5)))
        .expect("read timeout");
    (&stream)
        .write_all(format!("GET {path} HTTP/1.0\r\n\r\n").as_bytes())
        .expect("send request");
    let mut raw = Vec::new();
    let mut buf = [0u8; 4096];
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        for i in 0..cluster.n() {
            let node = NodeId::new(i);
            if Some(node) != down {
                cluster.poll_node(node);
            }
        }
        cluster.pump_status();
        match (&stream).read(&mut buf) {
            Ok(0) => break,
            Ok(k) => raw.extend_from_slice(&buf[..k]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(e) => panic!("read failed: {e}"),
        }
        assert!(Instant::now() < deadline, "status response timed out");
    }
    let text = String::from_utf8(raw).expect("status pages are UTF-8");
    let (_, body) = text.split_once("\r\n\r\n").expect("response has a body");
    body.to_string()
}

#[test]
fn the_status_peer_table_tracks_join_and_death_of_a_member() {
    if !sockets_available() {
        return;
    }
    // The CI smoke in test form: a 3-node cluster where node 2 must *join*
    // (only the seed is known to it), then dies; the `/status` peer table
    // must show it alive after the join and dead within the detection
    // bound after the kill.
    let n = 3;
    let vals = values(n);
    let period = Duration::from_millis(150);
    let seed_node = NodeId::new(0);
    let vals_for_cluster = vals.clone();
    let mut cluster = LoopbackCluster::bind(n, 0x57A7, move |me| {
        // The seed and node 1 know the full universe; node 2 starts knowing
        // only the seed and discovers the rest through Join/JoinAck.
        let base = MemberConfig {
            suspect_periods: 1,
            probe_fanout: n - 1,
            ..MemberConfig::default().with_probe_interval_us(period.as_micros() as u64)
        };
        let config = if me == NodeId::new(2) {
            MemberConfig {
                seeds: vec![seed_node],
                ..base
            }
        } else {
            MemberConfig {
                static_bootstrap: true,
                ..base
            }
        };
        Member::new(config, max_handler(n, me, &vals_for_cluster))
    })
    .expect("bind loopback cluster");
    cluster
        .serve_status(("127.0.0.1", 0))
        .expect("bind status endpoint");

    // Phase 1: the joiner completes the handshake and shows up alive.
    let joined = cluster.run_until(Duration::from_secs(15), |hosts| {
        hosts[2].handler().is_joined() && hosts[2].handler().live_view().len() == n - 1
    });
    assert!(joined.is_some(), "node 2 never joined via the seed");
    let page = http_get(&mut cluster, None, "/status");
    assert!(
        page.contains("member.view: 0:alive 1:alive 2:self"),
        "joiner's own view missing from the page:\n{page}"
    );

    // Phase 2: kill the joiner; the survivors' peer tables must flip its
    // row to dead within the detection bound.
    let victim = NodeId::new(2);
    let detected = pump_survivors(&mut cluster, victim, 3 * period + period / 2, |c| {
        c.iter_handlers()
            .all(|(node, h)| node == victim || h.state_of(victim) == Some(Liveness::Dead))
    });
    assert!(detected.is_some(), "the kill was not detected in time");
    let page = http_get(&mut cluster, Some(victim), "/status");
    for survivor in ["node 0", "node 1"] {
        let row = page
            .lines()
            .find(|l| l.starts_with(survivor) && l.contains("member.view"))
            .unwrap_or_else(|| panic!("{survivor} has no member.view row:\n{page}"));
        assert!(
            row.contains("2:dead"),
            "{survivor}'s peer table does not show the death: {row}"
        );
    }
}

#[test]
fn auth_required_members_reject_forged_frames_at_the_wire_and_still_converge() {
    if !sockets_available() {
        return;
    }
    // The same attacker as the forged-updates suite, against a cluster
    // that requires authentication. The forgeries now die at the frame
    // layer — counted in `auth_reject`, invisible to the membership
    // protocol (its own forgery counters stay at zero) — whichever shape
    // they take: a replayed bare frame that a keyless cluster would have
    // accepted, a tampered tag, a tag cut short, a wrong key. The
    // protocol itself keeps running: the wrapped gossip-max still lands
    // on the exact maximum.
    let n = 3;
    let vals = values(n);
    let exact = vals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let key = gossip_net::AuthKey::from_passphrase("member-hostile-suite");
    let wrong_key = gossip_net::AuthKey::from_passphrase("member-hostile-wrong");
    let member_config = MemberConfig::static_full().with_probe_interval_us(100_000);
    let vals_for_cluster = vals.clone();
    let mut cluster = LoopbackCluster::bind(n, 0xA07, move |me| {
        Member::new(member_config.clone(), max_handler(n, me, &vals_for_cluster))
    })
    .expect("bind loopback cluster")
    .with_auth_key(key.clone());
    cluster.poll(); // boot
    let target = cluster.host(NodeId::new(0)).local_addr().unwrap();
    let attacker = std::net::UdpSocket::bind(("127.0.0.1", 0)).unwrap();
    let from = NodeId::new(1);

    // A self-death forgery: the nastiest row of the keyless suite — here
    // it must not even reach the protocol's forgery counters.
    let forged = MemberMsg::<f64>::Ack {
        seq: 0xFFFF,
        origin: NodeId::new(0),
        updates: vec![Update {
            node: from,
            incarnation: 99,
            state: Liveness::Dead,
        }],
    };
    use gossip_net::{encode_frame_sealed, FRAME_HEADER_BYTES};
    use gossip_obs::TraceCtx;
    let bare = encode_frame(from, &forged);
    let sealed = encode_frame_sealed(from, TraceCtx::NONE, Some(&key), &forged);
    let mut tampered = sealed.clone();
    *tampered.last_mut().unwrap() ^= 0x01;
    let truncated = sealed[..FRAME_HEADER_BYTES + gossip_net::AUTH_TAG_BYTES / 2].to_vec();
    let foreign = encode_frame_sealed(from, TraceCtx::NONE, Some(&wrong_key), &forged);
    for frame in [&bare, &tampered, &truncated, &foreign] {
        attacker.send_to(frame, target).expect("send forged frame");
    }

    std::thread::sleep(Duration::from_millis(20));
    for _ in 0..50 {
        cluster.poll();
    }

    let host = cluster.host(NodeId::new(0));
    assert_eq!(
        host.stats().auth_reject,
        4,
        "every forgery shape counted at the wire"
    );
    assert_eq!(host.stats().decode_errors, 0);
    let handler = host.handler();
    assert_eq!(handler.stats().forged_self_dead, 0, "never reached SWIM");
    assert_eq!(handler.stats().forged_unknown_subject, 0);
    assert_eq!(
        handler.state_of(from),
        Some(Liveness::Alive),
        "a rejected forgery must not move a record"
    );

    // And the authenticated cluster still does its job.
    let converged = cluster.run_until(Duration::from_secs(30), |hosts| {
        hosts
            .iter()
            .all(|h| h.handler().inner().current_max() == exact)
    });
    assert!(
        converged.is_some(),
        "the authenticated cluster failed to converge"
    );
    let total = cluster.total_stats();
    assert_eq!(total.decode_errors, 0, "honest sealed traffic all decoded");
    assert_eq!(
        total.auth_reject, 4,
        "no honest frame was mistaken for a forgery"
    );
}
