//! Property tests for the membership state machine: the precedence
//! algebra that makes every node's view converge.
//!
//! SWIM dissemination gives no ordering guarantees — rumors are
//! duplicated across piggyback batches, reordered by latency and dropped
//! by loss — so the per-record merge must be a join-semilattice: the
//! record a table ends up with can only be the *supremum* of everything
//! it heard under the `(incarnation, state-rank)` order, regardless of
//! arrival order or multiplicity. The cases here generate arbitrary
//! update multisets (including adversarial resurrection attempts no
//! honest node produces) and arbitrary delivery schedules, and check the
//! table against an independently computed supremum oracle.

use gossip_member::{supersedes, Liveness, MemberTable, Transition, Update};
use gossip_net::NodeId;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Universe size. Node 0 is the observing table's own id; generated
/// updates name peers 1..N only (self-rumors are filtered one layer up,
/// in `Member::apply_updates`, where they trigger refutation instead).
const N: usize = 6;

fn table() -> MemberTable {
    MemberTable::new(NodeId::new(0), N, 3, N)
}

/// Decode a flat `u64` into an update; squeezing the triple through one
/// integer strategy keeps the shim's strategy surface simple while still
/// covering incarnation collisions and duplicate subjects densely.
fn decode(raw: u64) -> Update {
    let node = NodeId::new(1 + (raw as usize % (N - 1)));
    let state = match (raw >> 3) % 3 {
        0 => Liveness::Alive,
        1 => Liveness::Suspect,
        _ => Liveness::Dead,
    };
    let incarnation = (raw >> 5) % 4;
    Update {
        node,
        incarnation,
        state,
    }
}

fn apply_all(table: &mut MemberTable, updates: &[Update]) {
    for &u in updates {
        table.apply(u, 0);
    }
}

/// What a table looks like to the rest of the protocol: per-node
/// `(known, state, incarnation)` plus the derived live view. `since_us`
/// and the rumor queue are delivery-schedule artifacts, deliberately
/// excluded — sampling and sweeping read only this.
fn observable(table: &MemberTable) -> (Vec<(bool, Liveness, u64)>, Vec<NodeId>) {
    let records = (0..N)
        .map(|i| {
            let r = table.record(NodeId::new(i)).expect("record in universe");
            (r.known, r.state, r.incarnation)
        })
        .collect();
    (records, table.live_view().to_vec())
}

/// The oracle: each node's supremum update under `(incarnation, rank)`,
/// independent of the table implementation.
fn supremum(updates: &[Update], node: NodeId) -> Option<Update> {
    updates
        .iter()
        .filter(|u| u.node == node)
        .copied()
        .reduce(|best, u| {
            if supersedes(u.state, u.incarnation, best.state, best.incarnation) {
                u
            } else {
                best
            }
        })
}

proptest! {
    #[test]
    fn the_final_view_is_the_supremum_regardless_of_delivery_order(
        raws in proptest::collection::vec(0u64..4096, 0..48),
        order_seed in 0u64..1_000_000,
    ) {
        let updates: Vec<Update> = raws.iter().copied().map(decode).collect();
        let mut reference = table();
        apply_all(&mut reference, &updates);

        // Oracle: a node is known iff anything named it, live iff its
        // supremum is not Dead.
        for i in 1..N {
            let node = NodeId::new(i);
            let r = reference.record(node).expect("in universe");
            match supremum(&updates, node) {
                None => prop_assert!(!r.known, "node {i} known without news"),
                Some(sup) => {
                    prop_assert!(r.known);
                    prop_assert_eq!(r.state, sup.state, "node {}", i);
                    prop_assert_eq!(r.incarnation, sup.incarnation, "node {}", i);
                    prop_assert_eq!(
                        reference.live_view().contains(&node),
                        sup.state != Liveness::Dead,
                        "live view disagrees with the supremum for node {}", i
                    );
                }
            }
        }

        // Any shuffle (with re-deliveries appended — the network dupes)
        // lands on the identical observable state.
        let reference_view = observable(&reference);
        let mut rng = SmallRng::seed_from_u64(order_seed);
        for _ in 0..4 {
            let mut schedule = updates.clone();
            schedule.extend(updates.iter().rev().copied());
            schedule.shuffle(&mut rng);
            let mut shuffled = table();
            apply_all(&mut shuffled, &schedule);
            prop_assert_eq!(observable(&shuffled), reference_view.clone());
        }
    }

    #[test]
    fn no_resurrection_at_or_below_the_fatal_incarnation(
        raws in proptest::collection::vec(0u64..4096, 0..32),
        victim_raw in 0u64..4096,
        attempts in proptest::collection::vec(0u64..4096, 1..16),
    ) {
        // Once Dead at incarnation k, no Alive/Suspect at incarnation <= k
        // may revive the record: the only road back is a genuinely fresh
        // incarnation (the subject's own rejoin), never a replayed rumor.
        let mut t = table();
        apply_all(&mut t, &raws.iter().copied().map(decode).collect::<Vec<_>>());
        let victim = decode(victim_raw).node;
        let fatal = Update { node: victim, incarnation: 4, state: Liveness::Dead };
        t.apply(fatal, 0);
        for raw in attempts {
            let u = decode(raw);
            let replay = Update { node: victim, ..u };
            let transition = t.apply(replay, 0);
            if replay.incarnation <= fatal.incarnation {
                prop_assert_eq!(transition, Transition::Stale);
                let r = t.record(victim).expect("in universe");
                prop_assert_eq!(r.state, Liveness::Dead, "resurrected at inc {}", replay.incarnation);
                prop_assert!(!t.live_view().contains(&victim));
            }
        }
        // The legitimate rejoin path stays open: Alive at a fresh
        // incarnation is a Joined transition.
        let rejoin = Update { node: victim, incarnation: 5, state: Liveness::Alive };
        prop_assert_eq!(t.apply(rejoin, 0), Transition::Joined);
        prop_assert!(t.live_view().contains(&victim));
    }

    #[test]
    fn refutation_always_outranks_the_claim(
        prior in 0u64..8,
        claimed in 0u64..8,
        claim_state_raw in 0u64..2,
    ) {
        // A node refuting a rumor about itself must end Alive at an
        // incarnation past both the claim and its own history, so the
        // fresh self-Alive supersedes the hostile rumor everywhere.
        let mut t = table();
        for inc in 0..prior {
            t.refute(inc);
        }
        let before = t.my_incarnation();
        let new_inc = t.refute(claimed);
        prop_assert_eq!(new_inc, t.my_incarnation());
        prop_assert!(new_inc > claimed, "refutation did not pass the claim");
        prop_assert!(new_inc > before, "refutation did not advance");
        let claim_state = if claim_state_raw == 0 { Liveness::Suspect } else { Liveness::Dead };
        prop_assert!(
            supersedes(Liveness::Alive, new_inc, claim_state, claimed),
            "the refuting Alive must supersede the {claim_state:?} claim"
        );
    }

    #[test]
    fn supersedes_is_the_strict_lexicographic_order(
        a_raw in 0u64..4096,
        b_raw in 0u64..4096,
    ) {
        let (a, b) = (decode(a_raw), decode(b_raw));
        let key = |u: Update| (u.incarnation, u.state.rank());
        let forward = supersedes(a.state, a.incarnation, b.state, b.incarnation);
        prop_assert_eq!(forward, key(a) > key(b));
        // Strictness: never both directions, never self-superseding.
        let backward = supersedes(b.state, b.incarnation, a.state, a.incarnation);
        prop_assert!(!(forward && backward));
        prop_assert!(!supersedes(a.state, a.incarnation, a.state, a.incarnation));
    }
}
