//! The membership determinism suite: wrapping a protocol in [`Member`]
//! must not cost the runtime a single determinism guarantee.
//!
//! The wrapper routes every random draw through [`Mailbox::rng_mut`] and
//! every delayed action through mailbox timers, so the sharded engine's
//! contract extends structurally: the dispatch-order hash, the driver
//! counters and every node's final state — *including* the discovered
//! membership view and the detector counters — are a pure function of the
//! seed, invariant across shard counts (CI pins the ladder via
//! `GOSSIP_TEST_SHARDS`) and across re-runs, with churn turning into
//! observed Suspect/Dead/Join transitions along the way.

use gossip_drr::handler::{MaxGossipConfig, MaxGossipHandler};
use gossip_member::{Member, MemberConfig, MemberStats};
use gossip_net::{NodeId, SimConfig};
use gossip_runtime::{
    AsyncConfig, AsyncEngine, ChurnModel, EventDriver, LatencyModel, ShardedDriver,
};

/// Shard counts exercised by the sharded tests (the same ladder the
/// runtime suite reads; CI pins it via `GOSSIP_TEST_SHARDS`).
fn shard_counts() -> Vec<usize> {
    match std::env::var("GOSSIP_TEST_SHARDS") {
        Ok(raw) => raw
            .split(',')
            .map(|s| {
                s.trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("bad GOSSIP_TEST_SHARDS entry {s:?}"))
            })
            .collect(),
        Err(_) => vec![1, 2, 8],
    }
}

fn values(n: usize) -> Vec<f64> {
    (0..n).map(|i| ((i * 37) % 1009) as f64).collect()
}

fn max_config(n: usize) -> MaxGossipConfig {
    let sim = SimConfig::new(n);
    MaxGossipConfig {
        bits: sim.id_bits() + sim.value_bits(),
        push_interval_us: 1_000,
        fanout: 1,
    }
}

/// A fast detector for virtual time: 5 ms probe periods, one suspect
/// period, everything else default.
fn fast_member() -> MemberConfig {
    MemberConfig {
        suspect_periods: 1,
        ..MemberConfig::static_full().with_probe_interval_us(5_000)
    }
}

/// Everything a membership-wrapped run can disagree on: the dispatch-order
/// hash, the driver counters, the rejoin schedule, the transport totals,
/// and each node's full observable state — the aggregate it computed, its
/// incarnation, its live view, its state counts and every detector
/// counter.
type Fingerprint = (u64, u64, u64, Vec<(u64, NodeId)>, u64, Vec<NodeFingerprint>);
type NodeFingerprint = (
    u64,
    u64,
    Vec<NodeId>,
    (usize, usize, usize, usize),
    MemberStats,
);

fn node_fingerprint(h: &Member<MaxGossipHandler>) -> NodeFingerprint {
    (
        h.inner().current_max().to_bits(),
        h.incarnation(),
        h.live_view().to_vec(),
        h.view_counts(),
        h.stats().clone(),
    )
}

fn churny_member_driver(
    n: usize,
    seed: u64,
    shards: usize,
) -> ShardedDriver<Member<MaxGossipHandler>> {
    let sim = SimConfig::new(n).with_seed(seed).with_loss_prob(0.05);
    let handler_config = max_config(n);
    let vals = values(n);
    let member_config = fast_member();
    let config = AsyncConfig::new(sim)
        .with_latency(LatencyModel::LogNormal {
            median_us: 1_000.0,
            sigma: 0.7,
        })
        .with_link_spread(0.3)
        .with_churn(ChurnModel::per_round(0.01, 0.1).with_min_alive(n / 2));
    ShardedDriver::new(config, shards, move |me| {
        Member::new(
            member_config.clone(),
            MaxGossipHandler::new(me, vals[me.index()], handler_config),
        )
    })
}

fn sharded_fingerprint(driver: &ShardedDriver<Member<MaxGossipHandler>>) -> Fingerprint {
    let m = driver.metrics();
    (
        m.order_hash,
        m.timer_fires,
        m.stale_timer_skips,
        m.rejoin_log.clone(),
        driver.net_metrics().total_messages(),
        driver
            .iter_handlers()
            .map(|(_, h)| node_fingerprint(h))
            .collect(),
    )
}

#[test]
fn membership_keeps_the_order_hash_invariant_across_shard_counts() {
    // The tentpole's acceptance criterion: with the full SWIM layer
    // running — probes, suspicion, refutation, piggybacked rumors — under
    // churn, loss and skewed latency, the sharded dispatch schedule and
    // every node's observable state are bit-identical across shard counts
    // and re-runs.
    let n = 48;
    let run = |shards| {
        let mut driver = churny_member_driver(n, 0x5717, shards);
        driver.run_until(120_000);
        sharded_fingerprint(&driver)
    };
    let counts = shard_counts();
    let reference = run(counts[0]);
    for &shards in &counts {
        assert_eq!(reference, run(shards), "shard count {shards} diverged");
    }
    assert_eq!(reference, run(counts[0]), "re-run moved an event");

    // The run must actually exercise the detector: churn crashes nodes,
    // survivors must notice.
    let suspicions: u64 = reference
        .5
        .iter()
        .map(|f| f.4.suspicions_local + f.4.suspicions_learned)
        .sum();
    assert!(suspicions > 0, "churn produced no observed suspicion");

    // And the seed still steers everything.
    let mut other = churny_member_driver(n, 0x5718, counts[0]);
    other.run_until(120_000);
    assert_ne!(reference.0, sharded_fingerprint(&other).0);
}

#[test]
fn membership_runs_reproduce_on_the_one_queue_driver() {
    // Same property on the EventDriver: a wrapped run is a pure function
    // of the seed.
    let n = 32;
    let run = |seed: u64| {
        let vals = values(n);
        let handler_config = max_config(n);
        let member_config = fast_member();
        let config = AsyncConfig::new(SimConfig::new(n).with_seed(seed).with_loss_prob(0.1))
            .with_latency(LatencyModel::Uniform {
                lo_us: 300,
                hi_us: 2_000,
            })
            .with_churn(ChurnModel::per_round(0.01, 0.1).with_min_alive(n / 2));
        let mut driver = EventDriver::new(AsyncEngine::new(config), move |me| {
            Member::new(
                member_config.clone(),
                MaxGossipHandler::new(me, vals[me.index()], handler_config),
            )
        });
        driver.run_until(100_000);
        let states: Vec<NodeFingerprint> = driver.handlers().iter().map(node_fingerprint).collect();
        (driver.metrics().order_hash, states)
    };
    let a = run(0xF17E);
    assert_eq!(a, run(0xF17E));
    assert_ne!(a.0, run(0xF17F).0);
}

#[test]
fn a_cluster_discovers_itself_from_one_seed_and_the_aggregate_converges() {
    // Join-via-seed bootstrap in the simulator: only node 0 is known at
    // boot, everything else is discovered through Join/JoinAck and
    // piggybacked rumors — and the wrapped gossip-max, sampling only the
    // discovered view, still lands every node on the exact maximum.
    let n = 16;
    let vals = values(n);
    let exact = vals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let handler_config = max_config(n);
    let member_config =
        MemberConfig::with_seeds(vec![NodeId::new(0)]).with_probe_interval_us(5_000);
    let vals_for_driver = vals.clone();
    let mut driver = EventDriver::new(
        AsyncEngine::new(
            AsyncConfig::new(SimConfig::new(n).with_seed(0x1019))
                .with_latency(LatencyModel::Constant(300)),
        ),
        move |me| {
            Member::new(
                member_config.clone(),
                MaxGossipHandler::new(me, vals_for_driver[me.index()], handler_config),
            )
        },
    );
    driver.run_until(200_000);
    for (i, h) in driver.handlers().iter().enumerate() {
        assert!(h.is_joined(), "node {i} never completed the join handshake");
        assert_eq!(
            h.live_view().len(),
            n - 1,
            "node {i} discovered only {:?}",
            h.live_view()
        );
        assert_eq!(h.inner().current_max(), exact, "node {i} not converged");
    }
}

#[test]
fn a_loss_free_run_raises_zero_false_suspicions() {
    // E21's control row, pinned as a test: with no loss, no churn and an
    // RTT far inside the deadline, nothing is ever suspected — let alone
    // falsely.
    let n = 24;
    let vals = values(n);
    let handler_config = max_config(n);
    let member_config = fast_member();
    let mut driver = EventDriver::new(
        AsyncEngine::new(
            AsyncConfig::new(SimConfig::new(n).with_seed(0xC1EA))
                .with_latency(LatencyModel::Constant(300)),
        ),
        move |me| {
            Member::new(
                member_config.clone(),
                MaxGossipHandler::new(me, vals[me.index()], handler_config),
            )
        },
    );
    driver.run_until(150_000);
    for (i, h) in driver.handlers().iter().enumerate() {
        let s = h.stats();
        assert_eq!(s.suspicions_local, 0, "node {i} suspected someone");
        assert_eq!(s.false_suspicions, 0, "node {i} saw a false suspicion");
        assert!(s.probes_sent > 0, "node {i} never probed");
        assert!(s.acks_rx > 0, "node {i} never completed a probe");
        assert_eq!(h.view_counts().1, 0, "node {i} still holds a Suspect");
    }
}
