//! Regression suite for the untrusted digest path: hostile `AeMsg`s that
//! *decode cleanly* — the frame layer cannot reject them — must be
//! dropped and counted by the protocol layer, never panic a node, and
//! never amplify its sends.
//!
//! The bugs pinned here were real: `Store::delta_for` only
//! `debug_assert!`ed digest arity, so in a release build a short hostile
//! digest made a node ship its **entire store** (amplification), a long
//! one was silently truncated, an out-of-range delta origin indexed out
//! of bounds, and a stamp-0 entry violated the store's "0 = absent"
//! invariant. Every message here goes through the real wire
//! encode→decode before it reaches `on_message`, exactly like a datagram.

use gossip_ae::protocol::{AeConfig, AeMsg, AeNode, DigestMode};
use gossip_ae::store::Entry;
use gossip_net::{decode_frame, encode_frame, Mailbox, NodeId, Phase, TimerId};
use rand::rngs::SmallRng;
use rand::SeedableRng;

const N: usize = 8;

/// A recording mailbox: everything the node sends lands in `outbox`.
struct RecordingMailbox {
    me: NodeId,
    now: u64,
    rng: SmallRng,
    outbox: Vec<(NodeId, u32, AeMsg)>,
}

impl RecordingMailbox {
    fn new(me: NodeId) -> Self {
        RecordingMailbox {
            me,
            now: 1_000,
            rng: SmallRng::seed_from_u64(7),
            outbox: Vec::new(),
        }
    }
}

impl Mailbox<AeMsg> for RecordingMailbox {
    fn me(&self) -> NodeId {
        self.me
    }
    fn n(&self) -> usize {
        N
    }
    fn now_us(&self) -> u64 {
        self.now
    }
    fn send(&mut self, to: NodeId, _phase: Phase, bits: u32, msg: AeMsg) {
        self.outbox.push((to, bits, msg));
    }
    fn set_timer(&mut self, _delay_us: u64, _timer: TimerId) {}
    fn cancel_timer(&mut self, _timer: TimerId) {}
    fn rng_mut(&mut self) -> &mut SmallRng {
        &mut self.rng
    }
}

/// A node with a populated store, plus its mailbox.
fn populated_node(mode: DigestMode) -> (AeNode, RecordingMailbox) {
    let config = AeConfig::default().with_digest_mode(mode);
    let mut node = AeNode::new(NodeId::new(0), N, 3, 24, config);
    for i in 0..N {
        node.seed_entry(
            NodeId::new(i),
            Entry {
                stamp: 10 + i as u64,
                value: i as f64,
            },
        );
    }
    (node, RecordingMailbox::new(NodeId::new(0)))
}

/// Ship `msg` through the real wire (encode → decode) into `on_message`.
fn deliver_over_wire(node: &mut AeNode, mailbox: &mut RecordingMailbox, msg: &AeMsg) {
    use gossip_net::Handler;
    let frame = encode_frame(NodeId::new(1), msg);
    let (from, decoded): (NodeId, AeMsg) = decode_frame(&frame).expect("structurally valid");
    node.on_message(from, decoded, mailbox);
}

/// Sparse digests standing in for the old suite's short / long / empty
/// dense digests, plus the shapes only the sparse form can be hostile in.
fn hostile_digests() -> Vec<AeMsg> {
    let short = AeMsg::SynReq {
        n: N as u32 - 1, // "short digest": claims a smaller arity
        digest: vec![(NodeId::new(0), 5)],
    };
    let long = AeMsg::SynReq {
        n: N as u32 + 9, // "long digest": claims a larger arity
        digest: (0..N + 9).map(|i| (NodeId::new(i), 1)).collect(),
    };
    let empty = AeMsg::SynReq {
        n: 0, // "empty digest": zero arity from a different universe
        digest: Vec::new(),
    };
    let out_of_range = AeMsg::SynReq {
        n: N as u32, // right arity, origins beyond it
        digest: vec![(NodeId::new(N + 3), 5)],
    };
    let unsorted = AeMsg::SynReq {
        n: N as u32, // right arity, pairs out of order (breaks the merge walk)
        digest: vec![(NodeId::new(3), 5), (NodeId::new(1), 2)],
    };
    let duplicate = AeMsg::SynReq {
        n: N as u32,
        digest: vec![(NodeId::new(2), 5), (NodeId::new(2), 9)],
    };
    let zero_stamp = AeMsg::SynReq {
        n: N as u32, // stamp 0 is the code for absent; honest senders omit
        digest: vec![(NodeId::new(2), 0)],
    };
    vec![
        short,
        long,
        empty,
        out_of_range,
        unsorted,
        duplicate,
        zero_stamp,
    ]
}

#[test]
fn hostile_digest_arity_is_dropped_counted_and_never_amplifies() {
    for mode in [DigestMode::Dense, DigestMode::Merkle] {
        let (mut node, mut mailbox) = populated_node(mode);
        let hostiles = hostile_digests();
        for msg in &hostiles {
            deliver_over_wire(&mut node, &mut mailbox, msg);
        }
        assert_eq!(
            node.stats.digest_mismatches,
            hostiles.len() as u64,
            "every hostile digest counted ({mode:?})"
        );
        assert!(
            mailbox.outbox.is_empty(),
            "a hostile digest must draw no reply at all ({mode:?}) — a short \
             one used to make the node ship its whole store"
        );
    }
}

#[test]
fn hostile_synack_digests_and_deltas_are_dropped() {
    let (mut node, mut mailbox) = populated_node(DigestMode::Dense);
    let before = node.store().clone();
    // SynAck with a mismatched arity: neither the delta nor the digest may
    // be trusted (the delta could be replayed garbage for another arity).
    deliver_over_wire(
        &mut node,
        &mut mailbox,
        &AeMsg::SynAck {
            n: N as u32 + 1,
            delta: vec![(
                NodeId::new(1),
                Entry {
                    stamp: 99,
                    value: 1.0,
                },
            )],
            digest: Vec::new(),
        },
    );
    assert_eq!(node.stats.digest_mismatches, 1);
    assert_eq!(node.store(), &before, "nothing adopted from a bad arity");
    assert!(mailbox.outbox.is_empty());

    // Deltas with out-of-range origins (used to index out of bounds) and
    // stamp-0 entries (used to trip the store's stamp invariant): dropped
    // pair-by-pair, honest pairs still merge.
    deliver_over_wire(
        &mut node,
        &mut mailbox,
        &AeMsg::Delta {
            delta: vec![
                (
                    NodeId::new(1 << 30),
                    Entry {
                        stamp: 5,
                        value: 0.0,
                    },
                ),
                (
                    NodeId::new(2),
                    Entry {
                        stamp: 0,
                        value: 0.0,
                    },
                ),
                (
                    NodeId::new(3),
                    Entry {
                        stamp: 777,
                        value: 3.5,
                    },
                ),
            ],
        },
    );
    assert_eq!(node.stats.digest_mismatches, 3, "two hostile pairs counted");
    assert_eq!(node.stats.entries_adopted, 1, "the honest pair merged");
    assert_eq!(node.store().get(NodeId::new(3)).unwrap().stamp, 777);
}

#[test]
fn hostile_merkle_legs_are_dropped_in_merkle_mode() {
    let (mut node, mut mailbox) = populated_node(DigestMode::Merkle);
    let before = node.store().clone();
    for msg in [
        AeMsg::MerkleSyn {
            n: N as u32 + 1,
            root: 0xDEAD,
        },
        AeMsg::MerkleProbe {
            n: N as u32 - 1,
            probes: vec![(0, 1)],
        },
        AeMsg::RangeSyn {
            n: N as u32,
            start: N as u32,
            stamps: vec![1],
        },
        AeMsg::RangeSyn {
            n: N as u32,
            start: u32::MAX,
            stamps: vec![1, 2, 3],
        },
        AeMsg::RangeAck {
            n: N as u32,
            start: 4,
            stamps: vec![1; N], // overflows past the end of the store
            delta: Vec::new(),
        },
    ] {
        deliver_over_wire(&mut node, &mut mailbox, &msg);
    }
    assert_eq!(node.stats.digest_mismatches, 5);
    assert_eq!(node.store(), &before);
    assert!(mailbox.outbox.is_empty());
}

#[test]
fn honest_wire_traffic_still_reconciles_after_the_validation() {
    // The validation must not break the protocol it protects: a genuine
    // exchange over the wire codec still converges two nodes.
    use gossip_net::Handler;
    let (mut a, mut mb_a) = populated_node(DigestMode::Dense);
    let config = AeConfig::default();
    let mut b = AeNode::new(NodeId::new(1), N, 3, 24, config);
    let mut mb_b = RecordingMailbox::new(NodeId::new(1));
    b.seed_entry(
        NodeId::new(1),
        Entry {
            stamp: 500,
            value: 4.0,
        },
    );

    // b opens; pump until both outboxes drain.
    let opener = AeMsg::SynReq {
        n: N as u32,
        digest: b.store().sparse_digest(),
    };
    a.on_message(NodeId::new(1), opener, &mut mb_a);
    let mut legs = 0;
    loop {
        let mut moved = false;
        for (to, _, msg) in mb_a.outbox.drain(..).collect::<Vec<_>>() {
            assert_eq!(to, NodeId::new(1));
            let frame = encode_frame(NodeId::new(0), &msg);
            let (from, decoded): (NodeId, AeMsg) = decode_frame(&frame).unwrap();
            b.on_message(from, decoded, &mut mb_b);
            moved = true;
        }
        for (to, _, msg) in mb_b.outbox.drain(..).collect::<Vec<_>>() {
            assert_eq!(to, NodeId::new(0));
            let frame = encode_frame(NodeId::new(1), &msg);
            let (from, decoded): (NodeId, AeMsg) = decode_frame(&frame).unwrap();
            a.on_message(from, decoded, &mut mb_a);
            moved = true;
        }
        legs += 1;
        if !moved || legs > 8 {
            break;
        }
    }
    assert_eq!(a.store(), b.store(), "wire exchange converges");
    assert_eq!(a.store().known(), N);
    assert_eq!(a.stats.digest_mismatches + b.stats.digest_mismatches, 0);
}

/// The auth-mode rows of the hostile matrix: the same forged digests,
/// now arriving as *sealed* frames at an auth-required receiver. Every
/// forgery — tampered tag, tampered payload, truncated tag, wrong key,
/// replayed bare frame — must die at the frame layer with a typed error
/// (what `NodeHost` counts as `auth_reject`), so the protocol's own
/// validation never even runs for them. A frame sealed with the right
/// key still decodes, and the protocol validation behind the auth gate
/// keeps working exactly as the bare suite pins it.
#[test]
fn forged_sealed_frames_fail_authentication_before_any_payload_decodes() {
    use gossip_net::{
        decode_frame_sealed, encode_frame_sealed, AuthKey, WireError, AUTH_TAG_BYTES,
        FRAME_HEADER_BYTES,
    };
    use gossip_obs::TraceCtx;

    let key = AuthKey::from_passphrase("ae-hostile-suite");
    let wrong_key = AuthKey::from_passphrase("ae-hostile-suite-but-wrong");
    let (mut node, mut mailbox) = populated_node(DigestMode::Merkle);
    let before = node.store().clone();
    let attacker = NodeId::new(1);

    for msg in &hostile_digests() {
        let sealed = encode_frame_sealed(attacker, TraceCtx::NONE, Some(&key), msg);

        // Tampered tag byte.
        let mut tampered_tag = sealed.clone();
        tampered_tag[FRAME_HEADER_BYTES] ^= 0x80;
        assert!(matches!(
            decode_frame_sealed::<AeMsg>(&tampered_tag, Some(&key)),
            Err(WireError::BadAuthTag)
        ));

        // Tampered payload byte (the tag no longer covers what arrived).
        let mut tampered_payload = sealed.clone();
        *tampered_payload.last_mut().unwrap() ^= 0x01;
        assert!(matches!(
            decode_frame_sealed::<AeMsg>(&tampered_payload, Some(&key)),
            Err(WireError::BadAuthTag)
        ));

        // Tag truncated mid-way: still an auth failure, not a decode one.
        let truncated = &sealed[..FRAME_HEADER_BYTES + AUTH_TAG_BYTES / 2];
        assert!(matches!(
            decode_frame_sealed::<AeMsg>(truncated, Some(&key)),
            Err(WireError::BadAuthTag)
        ));

        // Sealed under the wrong key.
        let foreign = encode_frame_sealed(attacker, TraceCtx::NONE, Some(&wrong_key), msg);
        assert!(matches!(
            decode_frame_sealed::<AeMsg>(&foreign, Some(&key)),
            Err(WireError::BadAuthTag)
        ));

        // A replayed bare frame — byte-identical to what a keyless
        // cluster would accept — is refused outright when a key is
        // required.
        let bare = encode_frame(attacker, msg);
        assert!(matches!(
            decode_frame_sealed::<AeMsg>(&bare, Some(&key)),
            Err(WireError::AuthRequired)
        ));
    }

    // None of the forgeries reached the protocol: no counter moved, no
    // reply was drawn, nothing was adopted.
    assert_eq!(node.stats.digest_mismatches, 0);
    assert_eq!(node.store(), &before);
    assert!(mailbox.outbox.is_empty());

    // Behind the auth gate the protocol validation is unchanged: the
    // same hostiles sealed with the *right* key decode fine and are then
    // dropped and counted by the digest checks, exactly as the bare
    // suite pins.
    use gossip_net::Handler;
    let hostiles = hostile_digests();
    for msg in &hostiles {
        let sealed = encode_frame_sealed(attacker, TraceCtx::NONE, Some(&key), msg);
        let (from, _ctx, decoded): (NodeId, _, AeMsg) =
            decode_frame_sealed(&sealed, Some(&key)).expect("honestly sealed frame decodes");
        node.on_message(from, decoded, &mut mailbox);
    }
    assert_eq!(node.stats.digest_mismatches, hostiles.len() as u64);
    assert!(mailbox.outbox.is_empty(), "still no amplification");
}
