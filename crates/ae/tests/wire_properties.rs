//! Property suite for the anti-entropy wire encoding: every generated
//! `AeMsg` — classic legs and Merkle descent legs alike — round-trips
//! bit-exactly, the arithmetic size twin (`payload_bytes`) matches the
//! encoder byte for byte, and mangled frames never panic the decoder —
//! the node host must survive arbitrary datagrams.

use gossip_ae::protocol::AeMsg;
use gossip_ae::store::Entry;
use gossip_ae::wire::payload_bytes;
use gossip_net::{decode_frame, encode_frame, NodeId, WireMsg, WireReader};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Decode a packed `u64` into one delta pair (stamps ≥ 1, like honest
/// origins; values cover negatives and fractions).
fn pair(z: u64) -> (NodeId, Entry) {
    (
        NodeId((z % 97) as u32),
        Entry {
            stamp: 1 + (z >> 8) % 1_000_000,
            value: ((z as i64) as f64) / 3.0,
        },
    )
}

/// Decode a packed `u64` into one sparse-digest pair. No honesty
/// constraints (sortedness, range) — the codec must carry hostile shapes
/// verbatim; it is the protocol layer that rejects them.
fn digest_pair(z: u64) -> (NodeId, u64) {
    (NodeId((z % 131) as u32), z >> 7)
}

/// One message of every variant, built from the generated raw material.
fn messages(raws: &[u64], digest_raws: &[u64]) -> Vec<AeMsg> {
    let delta: Vec<(NodeId, Entry)> = raws.iter().copied().map(pair).collect();
    let digest: Vec<(NodeId, u64)> = digest_raws.iter().copied().map(digest_pair).collect();
    let probes: Vec<(u32, u64)> = digest_raws.iter().map(|&z| ((z % 511) as u32, z)).collect();
    let stamps: Vec<u64> = digest_raws.iter().map(|&z| z % 9).collect();
    let n = 1 + (raws.first().copied().unwrap_or(7) % (1 << 20)) as u32;
    vec![
        AeMsg::SynReq {
            n,
            digest: digest.clone(),
        },
        AeMsg::SynAck {
            n,
            delta: delta.clone(),
            digest,
        },
        AeMsg::Delta {
            delta: delta.clone(),
        },
        AeMsg::MerkleSyn {
            n,
            root: raws.iter().fold(0x5EED, |h, &z| h ^ z),
        },
        AeMsg::MerkleProbe { n, probes },
        AeMsg::RangeSyn {
            n,
            start: n / 2,
            stamps: stamps.clone(),
        },
        AeMsg::RangeAck {
            n,
            start: n / 2,
            stamps,
            delta,
        },
    ]
}

proptest! {
    #[test]
    fn every_leg_round_trips_and_sizes_agree(
        raws in proptest::collection::vec(0u64..=u64::MAX, 0..48),
        digest_raws in proptest::collection::vec(0u64..=u64::MAX, 0..64),
    ) {
        for msg in messages(&raws, &digest_raws) {
            let bytes = msg.to_wire_bytes();
            prop_assert_eq!(bytes.len(), payload_bytes(&msg), "size twin diverged");
            let mut r = WireReader::new(&bytes);
            prop_assert_eq!(AeMsg::decode(&mut r).unwrap(), msg);
            prop_assert_eq!(r.remaining(), 0);
        }
    }

    #[test]
    fn framed_legs_round_trip(
        raws in proptest::collection::vec(0u64..=u64::MAX, 0..16),
        from in 0u32..1024,
    ) {
        for msg in messages(&raws, &[0, 3, 0, 9]) {
            let frame = encode_frame(NodeId(from), &msg);
            let (sender, decoded): (NodeId, AeMsg) = decode_frame(&frame).unwrap();
            prop_assert_eq!(sender, NodeId(from));
            prop_assert_eq!(decoded, msg);
        }
    }

    #[test]
    fn mangled_ae_frames_never_panic(
        raws in proptest::collection::vec(0u64..=u64::MAX, 0..16),
        seed in 0u64..=u64::MAX,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        for msg in messages(&raws, &[1, 0, 2]) {
            let frame = encode_frame(NodeId(3), &msg);
            // Truncations.
            for _ in 0..4 {
                let cut = rng.gen_range(0..frame.len());
                prop_assert!(decode_frame::<AeMsg>(&frame[..cut]).is_err());
            }
            // Bit flips: Ok-with-different-content or Err, never a panic.
            for _ in 0..8 {
                let mut mangled = frame.clone();
                let bit = rng.gen_range(0..mangled.len() * 8);
                mangled[bit / 8] ^= 1 << (bit % 8);
                let _ = decode_frame::<AeMsg>(&mangled);
            }
        }
    }
}
