//! Property suite for the anti-entropy wire encoding: every generated
//! `AeMsg` round-trips bit-exactly, and mangled frames never panic the
//! decoder — the node host must survive arbitrary datagrams.

use gossip_ae::protocol::AeMsg;
use gossip_ae::store::Entry;
use gossip_net::{decode_frame, encode_frame, NodeId, WireMsg, WireReader};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Decode a packed `u64` into one delta pair (stamps ≥ 1, like honest
/// origins; values cover negatives and fractions).
fn pair(z: u64) -> (NodeId, Entry) {
    (
        NodeId((z % 97) as u32),
        Entry {
            stamp: 1 + (z >> 8) % 1_000_000,
            value: ((z as i64) as f64) / 3.0,
        },
    )
}

fn messages(raws: &[u64], digest: &[u64]) -> Vec<AeMsg> {
    let delta: Vec<(NodeId, Entry)> = raws.iter().copied().map(pair).collect();
    vec![
        AeMsg::SynReq {
            digest: digest.to_vec(),
        },
        AeMsg::SynAck {
            delta: delta.clone(),
            digest: digest.to_vec(),
        },
        AeMsg::Delta { delta },
    ]
}

proptest! {
    #[test]
    fn every_leg_round_trips(
        raws in proptest::collection::vec(0u64..=u64::MAX, 0..48),
        digest in proptest::collection::vec(0u64..=u64::MAX, 0..64),
    ) {
        for msg in messages(&raws, &digest) {
            let bytes = msg.to_wire_bytes();
            let mut r = WireReader::new(&bytes);
            prop_assert_eq!(AeMsg::decode(&mut r).unwrap(), msg);
            prop_assert_eq!(r.remaining(), 0);
        }
    }

    #[test]
    fn framed_legs_round_trip(
        raws in proptest::collection::vec(0u64..=u64::MAX, 0..16),
        from in 0u32..1024,
    ) {
        for msg in messages(&raws, &[0, 3, 0, 9]) {
            let frame = encode_frame(NodeId(from), &msg);
            let (sender, decoded): (NodeId, AeMsg) = decode_frame(&frame).unwrap();
            prop_assert_eq!(sender, NodeId(from));
            prop_assert_eq!(decoded, msg);
        }
    }

    #[test]
    fn mangled_ae_frames_never_panic(
        raws in proptest::collection::vec(0u64..=u64::MAX, 0..16),
        seed in 0u64..=u64::MAX,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        for msg in messages(&raws, &[1, 0, 2]) {
            let frame = encode_frame(NodeId(3), &msg);
            // Truncations.
            for _ in 0..4 {
                let cut = rng.gen_range(0..frame.len());
                prop_assert!(decode_frame::<AeMsg>(&frame[..cut]).is_err());
            }
            // Bit flips: Ok-with-different-content or Err, never a panic.
            for _ in 0..8 {
                let mut mangled = frame.clone();
                let bit = rng.gen_range(0..mangled.len() * 8);
                mangled[bit / 8] ^= 1 << (bit % 8);
                let _ = decode_frame::<AeMsg>(&mangled);
            }
        }
    }
}
