//! Determinism suite for the anti-entropy layer: Merkle-mode runs are a
//! pure function of the seed, bit-identical across shard counts, and the
//! digest mode changes cost — never the dispatch schedule's integrity.
//!
//! Honors `GOSSIP_TEST_SHARDS` (comma-separated shard counts) like the
//! runtime determinism suite, so CI's matrix re-runs this ladder with an
//! uneven count in the mix.

use gossip_ae::{ae_driver, ae_sharded_driver, AeConfig, AeNodeStats, DigestMode, SignalModel};
use gossip_net::SimConfig;
use gossip_runtime::{AsyncConfig, ChurnModel, LatencyModel};

/// The shard ladder: `GOSSIP_TEST_SHARDS` or {1, 2, 8}.
fn shard_counts() -> Vec<usize> {
    match std::env::var("GOSSIP_TEST_SHARDS") {
        Ok(raw) => raw
            .split(',')
            .map(|s| {
                s.trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("bad GOSSIP_TEST_SHARDS entry {s:?}"))
            })
            .collect(),
        Err(_) => vec![1, 2, 8],
    }
}

fn merkle_config() -> AeConfig {
    AeConfig::default()
        .with_signal(SignalModel::uniform(0.0, 10_000.0).with_drift_per_s(1_000.0))
        .with_digest_mode(DigestMode::Merkle)
        .with_merkle_fallback_slots(8)
}

fn engine_config(seed: u64) -> AsyncConfig {
    AsyncConfig::new(
        SimConfig::new(96)
            .with_seed(seed)
            .with_loss_prob(0.02)
            .with_value_range(10_000.0),
    )
    .with_latency(LatencyModel::Uniform {
        lo_us: 200,
        hi_us: 1_200,
    })
    .with_churn(ChurnModel::per_round(0.01, 0.2))
}

/// One node's contribution to a fingerprint: index, protocol stats, store
/// stamps, estimate bit pattern.
type NodeRow = (usize, AeNodeStats, Vec<u64>, u64);
/// Everything a run exposes: the dispatch-order hash plus per-node rows.
type RunFingerprint = (u64, Vec<NodeRow>);

/// Everything a run exposes, fingerprinted: dispatch order, final store
/// contents (as bit patterns), estimates, and the per-node stats that the
/// descent's message pattern shapes.
fn fingerprint(
    order_hash: u64,
    handlers: impl Iterator<Item = (gossip_net::NodeId, AeNodeStats, Vec<u64>, u64)>,
) -> RunFingerprint {
    (
        order_hash,
        handlers
            .map(|(node, stats, stamps, est)| (node.index(), stats, stamps, est))
            .collect(),
    )
}

fn sharded_run(shards: usize, seed: u64) -> RunFingerprint {
    let mut d = ae_sharded_driver(engine_config(seed), merkle_config(), shards);
    d.run_until(180_000);
    let now = d.now_us();
    let rows: Vec<_> = d
        .iter_handlers()
        .map(|(node, h)| {
            (
                node,
                h.stats,
                h.store().digest(),
                h.estimate(now).unwrap_or(f64::NAN).to_bits(),
            )
        })
        .collect();
    fingerprint(d.order_hash(), rows.into_iter())
}

#[test]
fn merkle_mode_order_hash_is_shard_count_invariant() {
    let counts = shard_counts();
    let reference = sharded_run(counts[0], 17);
    for &shards in &counts[1..] {
        assert_eq!(
            reference,
            sharded_run(shards, 17),
            "merkle-mode run diverged at {shards} shards"
        );
    }
    // Descent traffic actually happened (the invariance is not vacuous):
    // entries were adopted and nothing hostile was counted.
    let adopted: u64 = reference
        .1
        .iter()
        .map(|(_, s, _, _)| s.entries_adopted)
        .sum();
    assert!(adopted > 0, "exchanges adopted entries");
    let mismatches: u64 = reference
        .1
        .iter()
        .map(|(_, s, _, _)| s.digest_mismatches)
        .sum();
    assert_eq!(mismatches, 0, "honest traffic is never dropped");
}

#[test]
fn merkle_mode_runs_reproduce_bit_for_bit_and_differ_across_seeds() {
    let run = |seed| {
        let mut d = ae_driver(engine_config(seed), merkle_config());
        d.run_until(150_000);
        let stores: Vec<Vec<u64>> = d.handlers().iter().map(|h| h.store().digest()).collect();
        (d.metrics().order_hash, stores)
    };
    assert_eq!(run(9), run(9));
    assert_ne!(run(9).0, run(10).0, "different seeds schedule differently");
}

#[test]
fn dense_and_merkle_modes_schedule_differently_but_converge_identically() {
    // Different digest modes send different message patterns — the order
    // hash must differ (the fingerprint is honest) — while a quiesced
    // static-signal run converges to the same stores either way.
    let run = |mode: DigestMode| {
        let config = AsyncConfig::new(
            SimConfig::new(64)
                .with_seed(5)
                .with_loss_prob(0.02)
                .with_value_range(10_000.0),
        )
        .with_latency(LatencyModel::Constant(500));
        let ae = AeConfig::default()
            .with_update_us(0)
            .with_digest_mode(mode)
            .with_merkle_fallback_slots(8);
        let mut d = ae_driver(config, ae);
        d.run_until(200_000);
        let stores: Vec<Vec<u64>> = d.handlers().iter().map(|h| h.store().digest()).collect();
        (d.metrics().order_hash, stores)
    };
    let (dense_hash, dense_stores) = run(DigestMode::Dense);
    let (merkle_hash, merkle_stores) = run(DigestMode::Merkle);
    assert_ne!(dense_hash, merkle_hash);
    assert_eq!(dense_stores, merkle_stores);
    for stamps in &merkle_stores {
        assert!(stamps.iter().all(|&s| s > 0), "fully reconciled");
    }
}
