//! Deployability: the anti-entropy node, unchanged, on real UDP sockets.
//!
//! The same `AeNode` the simulated suites pin — digest/delta
//! reconciliation, max-stamp merge, freshness windows — hosted by
//! `gossip-node` over 127.0.0.1 datagrams. With a static (drift-free)
//! signal, full reconciliation gives every replica the identical store
//! *values*, so the estimate must agree with the `EventDriver` run of the
//! identical configuration bit for bit (stamps differ — real clocks —
//! but values and therefore means do not). Skips gracefully where
//! loopback binds are forbidden.

use gossip_ae::protocol::{ae_driver, AeConfig, AeNode};
use gossip_ae::signal::SignalModel;
use gossip_net::{NodeId, SimConfig};
use gossip_node::LoopbackCluster;
use gossip_runtime::{AsyncConfig, LatencyModel};
use std::time::Duration;

fn sockets_available() -> bool {
    match std::net::UdpSocket::bind(("127.0.0.1", 0)) {
        Ok(_) => true,
        Err(e) => {
            eprintln!("skipping loopback test: UDP bind unavailable ({e})");
            false
        }
    }
}

#[test]
fn anti_entropy_reconciles_over_real_udp_and_matches_the_simulator() {
    if !sockets_available() {
        return;
    }
    let n = 10;
    let seed = 11;
    let sim = SimConfig::new(n).with_seed(seed).with_value_range(10_000.0);
    // Static signal, no expiry: the converged estimate is the mean of the
    // n per-node base levels — a pure function of the signal model, which
    // both execution backends share.
    let ae = AeConfig::default()
        .with_tick_us(2_000)
        .with_update_us(0)
        .with_expiry_us(0)
        .with_signal(SignalModel::uniform(0.0, 10_000.0));

    // Simulator run of the identical configuration.
    let mut driver = ae_driver(
        AsyncConfig::new(sim.clone()).with_latency(LatencyModel::Constant(400)),
        ae,
    );
    driver.run_until(200_000);
    for (i, h) in driver.handlers().iter().enumerate() {
        assert_eq!(h.store().known(), n, "simulated node {i} not reconciled");
    }
    let sim_estimate = driver.handlers()[0].estimate(driver.now_us()).unwrap();

    // The same AeNode over real sockets.
    let id_bits = sim.id_bits();
    let value_bits = sim.value_bits();
    let mut cluster = LoopbackCluster::bind(n, seed, move |me| {
        AeNode::new(me, n, id_bits, value_bits, ae)
    })
    .expect("bind loopback cluster");
    let elapsed = cluster.run_until(Duration::from_secs(30), |hosts| {
        hosts.iter().all(|h| h.handler().store().known() == n)
    });
    assert!(
        elapsed.is_some(),
        "real-socket anti-entropy must fully reconcile"
    );
    for (node, h) in cluster.iter_handlers() {
        let est = h.estimate(u64::MAX).expect("reconciled node estimates");
        assert_eq!(
            est.to_bits(),
            sim_estimate.to_bits(),
            "node {node:?}: real-socket estimate {est} vs simulated {sim_estimate}"
        );
    }

    // Three-leg exchanges really crossed the wire.
    let totals = cluster.total_stats();
    assert!(totals.bytes_sent > 0);
    assert_eq!(totals.decode_errors, 0, "every AeMsg frame decodes");
    let ticks: u64 = cluster.iter_handlers().map(|(_, h)| h.stats.syn_sent).sum();
    assert!(ticks > 0, "exchanges were initiated");
}

#[test]
fn a_late_joiner_pulls_the_whole_state_over_the_wire() {
    if !sockets_available() {
        return;
    }
    // The rejoin story on real sockets: node 9's host is created but not
    // pumped until the rest have fully reconciled among themselves; once
    // it joins the pump loop, anti-entropy fills its empty store.
    let n = 10;
    let late = NodeId::new(n - 1);
    let sim = SimConfig::new(n).with_seed(5).with_value_range(10_000.0);
    let ae = AeConfig::default()
        .with_tick_us(2_000)
        .with_update_us(0)
        .with_expiry_us(0);
    let id_bits = sim.id_bits();
    let value_bits = sim.value_bits();
    let mut cluster =
        LoopbackCluster::bind(n, 5, move |me| AeNode::new(me, n, id_bits, value_bits, ae))
            .expect("bind loopback cluster");

    // Phase 1: everyone but the late joiner. Its host is never pumped, so
    // its handler never runs and it knows nothing; peers' sends to it sit
    // in its socket buffer — indistinguishable from a node that is down.
    let phase1_deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        for i in 0..n - 1 {
            cluster.poll_node(NodeId::new(i));
        }
        let early_done = cluster
            .hosts()
            .iter()
            .take(n - 1)
            .all(|h| h.handler().store().known() >= n - 1);
        if early_done {
            break;
        }
        assert!(
            std::time::Instant::now() < phase1_deadline,
            "the early cohort must reconcile by itself"
        );
        std::thread::sleep(Duration::from_micros(200));
    }
    assert_eq!(cluster.host(late).handler().store().known(), 0);

    // Phase 2: the late joiner starts participating (the cluster pump
    // polls every host, including the previously idle one).
    let caught_up = cluster.run_until(Duration::from_secs(30), |hosts| {
        hosts.iter().all(|h| h.handler().store().known() == n)
    });
    assert!(
        caught_up.is_some(),
        "anti-entropy must pull the late joiner to full state"
    );
}
