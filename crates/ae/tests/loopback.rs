//! Deployability: the anti-entropy node, unchanged, on real UDP sockets.
//!
//! The same `AeNode` the simulated suites pin — digest/delta
//! reconciliation, max-stamp merge, freshness windows — hosted by
//! `gossip-node` over 127.0.0.1 datagrams. With a static (drift-free)
//! signal, full reconciliation gives every replica the identical store
//! *values*, so the estimate must agree with the `EventDriver` run of the
//! identical configuration bit for bit (stamps differ — real clocks —
//! but values and therefore means do not). Skips gracefully where
//! loopback binds are forbidden.

use gossip_ae::protocol::{ae_driver, AeConfig, AeMsg, AeNode, DigestMode};
use gossip_ae::signal::SignalModel;
use gossip_ae::store::Entry;
use gossip_ae::wire::payload_bytes;
use gossip_net::{NodeId, SimConfig, FRAME_HEADER_BYTES, MAX_PAYLOAD_BYTES};
use gossip_node::LoopbackCluster;
use gossip_runtime::{AsyncConfig, LatencyModel};
use std::time::Duration;

fn sockets_available() -> bool {
    match std::net::UdpSocket::bind(("127.0.0.1", 0)) {
        Ok(_) => true,
        Err(e) => {
            eprintln!("skipping loopback test: UDP bind unavailable ({e})");
            false
        }
    }
}

#[test]
fn anti_entropy_reconciles_over_real_udp_and_matches_the_simulator() {
    if !sockets_available() {
        return;
    }
    let n = 10;
    let seed = 11;
    let sim = SimConfig::new(n).with_seed(seed).with_value_range(10_000.0);
    // Static signal, no expiry: the converged estimate is the mean of the
    // n per-node base levels — a pure function of the signal model, which
    // both execution backends share.
    let ae = AeConfig::default()
        .with_tick_us(2_000)
        .with_update_us(0)
        .with_expiry_us(0)
        .with_signal(SignalModel::uniform(0.0, 10_000.0));

    // Simulator run of the identical configuration.
    let mut driver = ae_driver(
        AsyncConfig::new(sim.clone()).with_latency(LatencyModel::Constant(400)),
        ae,
    );
    driver.run_until(200_000);
    for (i, h) in driver.handlers().iter().enumerate() {
        assert_eq!(h.store().known(), n, "simulated node {i} not reconciled");
    }
    let sim_estimate = driver.handlers()[0].estimate(driver.now_us()).unwrap();

    // The same AeNode over real sockets.
    let id_bits = sim.id_bits();
    let value_bits = sim.value_bits();
    let mut cluster = LoopbackCluster::bind(n, seed, move |me| {
        AeNode::new(me, n, id_bits, value_bits, ae)
    })
    .expect("bind loopback cluster");
    let elapsed = cluster.run_until(Duration::from_secs(30), |hosts| {
        hosts.iter().all(|h| h.handler().store().known() == n)
    });
    assert!(
        elapsed.is_some(),
        "real-socket anti-entropy must fully reconcile"
    );
    for (node, h) in cluster.iter_handlers() {
        let est = h.estimate(u64::MAX).expect("reconciled node estimates");
        assert_eq!(
            est.to_bits(),
            sim_estimate.to_bits(),
            "node {node:?}: real-socket estimate {est} vs simulated {sim_estimate}"
        );
    }

    // Three-leg exchanges really crossed the wire.
    let totals = cluster.total_stats();
    assert!(totals.bytes_sent > 0);
    assert_eq!(totals.decode_errors, 0, "every AeMsg frame decodes");
    let ticks: u64 = cluster.iter_handlers().map(|(_, h)| h.stats.syn_sent).sum();
    assert!(ticks > 0, "exchanges were initiated");
}

#[test]
fn modelled_digest_accounting_agrees_with_the_wire() {
    if !sockets_available() {
        return;
    }
    // The satellite bugfix pinned end to end: the model charges one
    // (origin, stamp) pair per *known* origin, and the wire now encodes
    // exactly those pairs — so a fresh node's opener is a handful of
    // bytes, not n stamps. Only node 0 is pumped: its store stays at
    // known = 1 (its own entry), so every datagram it emits is the same
    // one-pair SynReq and both ledgers are exactly predictable.
    let n = 10;
    let ae = AeConfig::default()
        .with_tick_us(2_000)
        .with_update_us(0)
        .with_expiry_us(0);
    let sim = SimConfig::new(n);
    let id_bits = sim.id_bits();
    let value_bits = sim.value_bits();
    let mut cluster =
        LoopbackCluster::bind(n, 23, move |me| AeNode::new(me, n, id_bits, value_bits, ae))
            .expect("bind loopback cluster");

    let deadline = std::time::Instant::now() + Duration::from_secs(20);
    while cluster.host(NodeId::new(0)).stats().datagrams_sent < 3 {
        cluster.poll_node(NodeId::new(0));
        assert!(
            std::time::Instant::now() < deadline,
            "node 0 must tick and send"
        );
        std::thread::sleep(Duration::from_micros(100));
    }
    let host = cluster.host(NodeId::new(0));
    let stats = host.stats();

    // What every one of those datagrams must have been: a SynReq with one
    // digest pair.
    let expected = AeMsg::SynReq {
        n: n as u32,
        digest: host.handler().store().sparse_digest(),
    };
    assert_eq!(host.handler().store().known(), 1, "nothing answered yet");
    let frame_bytes = (FRAME_HEADER_BYTES + payload_bytes(&expected)) as u64;
    assert_eq!(frame_bytes, 12 + 21, "one pair = 21 payload bytes");
    assert_eq!(
        stats.bytes_sent,
        frame_bytes * stats.datagrams_sent,
        "wire bytes are exactly the sparse encoding, datagram for datagram"
    );
    // And the modelled ledger charged the same sparse shape: tag + arity
    // + one (id_bits + stamp) pair per send.
    let modelled_bits = u64::from(8 + 32 + (id_bits + gossip_ae::STAMP_BITS));
    assert_eq!(
        host.metrics().total_bits(),
        modelled_bits * stats.datagrams_sent,
        "modelled bits count the same pairs the wire shipped"
    );
}

/// Store arity for the at-scale tests: a *full* flat digest at this n is
/// ~144 KB of payload — far beyond one datagram — while every Merkle-mode
/// message stays bounded. 16 real sockets carry it; the store arity is
/// what stresses the digests, not the socket count.
const BIG_ORIGINS: usize = 12_000;
const BIG_HOSTS: usize = 16;

/// A node of the at-scale cluster: its own entry plus a deterministic
/// shard of synthetic origins (origin o lives at host o mod BIG_HOSTS),
/// so the union over hosts covers all BIG_ORIGINS and full convergence
/// means every host holds every origin.
fn big_node(me: NodeId, mode: DigestMode) -> AeNode {
    let sim = SimConfig::new(BIG_ORIGINS).with_value_range(10_000.0);
    let ae = AeConfig::default()
        .with_tick_us(2_000)
        .with_update_us(0)
        .with_expiry_us(0)
        .with_digest_mode(mode)
        .with_merkle_fallback_slots(32);
    let mut node = AeNode::new(me, BIG_ORIGINS, sim.id_bits(), sim.value_bits(), ae);
    for origin in (BIG_HOSTS..BIG_ORIGINS).filter(|o| o % BIG_HOSTS == me.index()) {
        node.seed_entry(
            NodeId::new(origin),
            Entry {
                stamp: 1 + origin as u64,
                value: (origin as f64) * 0.5,
            },
        );
    }
    node
}

#[test]
fn merkle_mode_converges_where_a_dense_digest_cannot_fit_a_datagram() {
    if !sockets_available() {
        return;
    }
    // The premise, asserted: the flat digest of a full store at this
    // arity does not fit one UDP datagram even in sparse form.
    let full_digest = AeMsg::SynReq {
        n: BIG_ORIGINS as u32,
        digest: (0..BIG_ORIGINS).map(|i| (NodeId::new(i), 1)).collect(),
    };
    assert!(
        payload_bytes(&full_digest) > MAX_PAYLOAD_BYTES,
        "premise: a full dense digest at n = {BIG_ORIGINS} exceeds a datagram"
    );

    let mut cluster = LoopbackCluster::bind(BIG_HOSTS, 31, |me| big_node(me, DigestMode::Merkle))
        .expect("bind loopback cluster");
    let elapsed = cluster.run_until(Duration::from_secs(120), |hosts| {
        hosts
            .iter()
            .all(|h| h.handler().store().known() == BIG_ORIGINS)
    });
    assert!(
        elapsed.is_some(),
        "merkle anti-entropy must fully reconcile {BIG_ORIGINS} origins over UDP"
    );

    let totals = cluster.total_stats();
    assert_eq!(
        totals.send_oversize, 0,
        "no merkle message outgrows a datagram"
    );
    assert_eq!(totals.decode_errors, 0, "every descent frame decodes");
    let mismatches: u64 = cluster
        .iter_handlers()
        .map(|(_, h)| h.stats.digest_mismatches)
        .sum();
    assert_eq!(mismatches, 0, "honest traffic is never dropped");

    // Full reconciliation ⇒ identical estimates, bit for bit.
    let reference = cluster
        .host(NodeId::new(0))
        .handler()
        .estimate(u64::MAX)
        .expect("reconciled node estimates");
    for (node, h) in cluster.iter_handlers() {
        let est = h.estimate(u64::MAX).expect("reconciled");
        assert_eq!(est.to_bits(), reference.to_bits(), "node {node:?} differs");
    }
}

#[test]
fn dense_mode_jams_on_oversize_digests_at_the_same_scale() {
    if !sockets_available() {
        return;
    }
    // The same cluster in dense mode: digests grow with the store, cross
    // the datagram ceiling mid-run, and from then on the exchange legs
    // are dropped *before* the kernel — counted as send_oversize (the
    // satellite bugfix: previously this was an encode panic or a raw OS
    // error masquerading as loss). The cluster must fail to converge.
    let mut cluster = LoopbackCluster::bind(BIG_HOSTS, 31, |me| big_node(me, DigestMode::Dense))
        .expect("bind loopback cluster");
    let converged = cluster.run_until(Duration::from_secs(8), |hosts| {
        hosts
            .iter()
            .all(|h| h.handler().store().known() == BIG_ORIGINS)
    });
    assert!(
        converged.is_none(),
        "a dense digest beyond one datagram cannot fully reconcile"
    );
    let totals = cluster.total_stats();
    assert!(
        totals.send_oversize > 0,
        "oversize digests were detected and counted at the sender"
    );
    assert!(
        cluster
            .iter_handlers()
            .all(|(_, h)| h.store().known() < BIG_ORIGINS),
        "no host can assemble the full store through jammed digests"
    );
}

#[test]
fn a_late_joiner_pulls_the_whole_state_over_the_wire() {
    if !sockets_available() {
        return;
    }
    // The rejoin story on real sockets: node 9's host is created but not
    // pumped until the rest have fully reconciled among themselves; once
    // it joins the pump loop, anti-entropy fills its empty store.
    let n = 10;
    let late = NodeId::new(n - 1);
    let sim = SimConfig::new(n).with_seed(5).with_value_range(10_000.0);
    let ae = AeConfig::default()
        .with_tick_us(2_000)
        .with_update_us(0)
        .with_expiry_us(0);
    let id_bits = sim.id_bits();
    let value_bits = sim.value_bits();
    let mut cluster =
        LoopbackCluster::bind(n, 5, move |me| AeNode::new(me, n, id_bits, value_bits, ae))
            .expect("bind loopback cluster");

    // Phase 1: everyone but the late joiner. Its host is never pumped, so
    // its handler never runs and it knows nothing; peers' sends to it sit
    // in its socket buffer — indistinguishable from a node that is down.
    let phase1_deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        for i in 0..n - 1 {
            cluster.poll_node(NodeId::new(i));
        }
        let early_done = cluster
            .hosts()
            .iter()
            .take(n - 1)
            .all(|h| h.handler().store().known() >= n - 1);
        if early_done {
            break;
        }
        assert!(
            std::time::Instant::now() < phase1_deadline,
            "the early cohort must reconcile by itself"
        );
        std::thread::sleep(Duration::from_micros(200));
    }
    assert_eq!(cluster.host(late).handler().store().known(), 0);

    // Phase 2: the late joiner starts participating (the cluster pump
    // polls every host, including the previously idle one).
    let caught_up = cluster.run_until(Duration::from_secs(30), |hosts| {
        hosts.iter().all(|h| h.handler().store().known() == n)
    });
    assert!(
        caught_up.is_some(),
        "anti-entropy must pull the late joiner to full state"
    );
}
