//! Property tests for the digest/delta merge: the algebra that makes
//! anti-entropy converge.
//!
//! The reconciliation of `gossip-ae` is correct only if merging entry sets
//! is **idempotent** (re-delivering a delta changes nothing),
//! **commutative/associative** (delivery order cannot matter) and
//! **convergent** (replicas that saw the same entries — in any order, any
//! multiplicity, any grouping into deltas — hold identical stores). Those
//! are exactly the freedoms the network has: anti-entropy messages are
//! duplicated across exchanges, reordered by per-link latency, and dropped
//! by loss. The cases here generate arbitrary entry sets (including
//! adversarial stamp collisions that honest origins never produce) and
//! arbitrary delivery schedules.

use gossip_ae::{Entry, Store};
use gossip_net::NodeId;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

const N: usize = 8;

/// Decode a flat `u64` into an `(origin, entry)` triple; squeezing the
/// whole triple through one integer strategy keeps the shim's strategy
/// surface simple while still covering stamp collisions (stamps in 1..=4)
/// and duplicate origins densely. Collisions may carry *different values*
/// — adversarial input no honest origin produces — which the merge's
/// deterministic tiebreak must still keep order-free.
fn decode(raw: u64) -> (NodeId, Entry) {
    let origin = NodeId::new((raw % N as u64) as usize);
    let stamp = 1 + (raw >> 3) % 4;
    let value = ((raw >> 5) % 16) as f64 - 8.0;
    (origin, Entry { stamp, value })
}

/// Decode under the *honest-origin* invariant: an origin stamps only its
/// own key with strictly advancing local time, so a given `(origin, stamp)`
/// names exactly one value, ever. Digest exchange relies on this — digests
/// carry stamps only, so same-stamp-different-value forks (which only
/// byzantine origins could create) are indistinguishable to it.
fn decode_honest(raw: u64) -> (NodeId, Entry) {
    let (origin, entry) = decode(raw);
    let value = (origin.index() as f64) * 100.0 + entry.stamp as f64;
    (origin, Entry { value, ..entry })
}

fn store_after<'a>(deliveries: impl IntoIterator<Item = &'a (NodeId, Entry)>) -> Store {
    let mut store = Store::new(N);
    for &(origin, entry) in deliveries {
        store.merge(origin, entry);
    }
    store
}

proptest! {
    #[test]
    fn merge_is_idempotent(raws in proptest::collection::vec(0u64..4096, 0..40)) {
        let deliveries: Vec<_> = raws.iter().copied().map(decode).collect();
        let mut store = store_after(&deliveries);
        let once = store.clone();
        // Re-deliver everything (twice, even) — nothing may change.
        prop_assert_eq!(store.merge_delta(&deliveries), 0);
        prop_assert_eq!(store.merge_delta(&deliveries), 0);
        prop_assert_eq!(&store, &once);
    }

    #[test]
    fn merge_is_commutative_under_arbitrary_delivery_orders(
        raws in proptest::collection::vec(0u64..4096, 0..40),
        order_seed in 0u64..1_000_000,
    ) {
        let deliveries: Vec<_> = raws.iter().copied().map(decode).collect();
        let reference = store_after(&deliveries);
        let mut rng = SmallRng::seed_from_u64(order_seed);
        for _ in 0..4 {
            let mut shuffled = deliveries.clone();
            shuffled.shuffle(&mut rng);
            prop_assert_eq!(store_after(&shuffled), reference.clone());
        }
    }

    #[test]
    fn merge_is_associative_over_delta_groupings(
        raws in proptest::collection::vec(0u64..4096, 0..40),
        split in 0usize..41,
    ) {
        let deliveries: Vec<_> = raws.iter().copied().map(decode).collect();
        let split = split.min(deliveries.len());
        // One batch vs two sub-batches vs entry-at-a-time.
        let mut grouped = Store::new(N);
        grouped.merge_delta(&deliveries);
        let mut two = Store::new(N);
        two.merge_delta(&deliveries[..split]);
        two.merge_delta(&deliveries[split..]);
        prop_assert_eq!(&grouped, &two);
        prop_assert_eq!(&grouped, &store_after(&deliveries));
    }

    #[test]
    fn replicas_converge_through_digest_exchange(
        raws_a in proptest::collection::vec(0u64..4096, 0..30),
        raws_b in proptest::collection::vec(0u64..4096, 0..30),
    ) {
        // Two replicas with arbitrary honest histories run one full
        // push-pull exchange; they must end identical, and the result must
        // equal the order-free union of both histories.
        let mut a = store_after(&raws_a.iter().copied().map(decode_honest).collect::<Vec<_>>());
        let mut b = store_after(&raws_b.iter().copied().map(decode_honest).collect::<Vec<_>>());
        let union = store_after(
            &raws_a.iter().chain(&raws_b).copied().map(decode_honest).collect::<Vec<_>>(),
        );
        let to_a = b.delta_for(&a.digest());
        a.merge_delta(&to_a);
        let to_b = a.delta_for(&b.digest());
        b.merge_delta(&to_b);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(&a, &union);
        // And the exchange is now quiescent in both directions.
        prop_assert!(a.delta_for(&b.digest()).is_empty());
        prop_assert!(b.delta_for(&a.digest()).is_empty());
    }

    #[test]
    fn digest_never_undersells_the_store(
        raws in proptest::collection::vec(0u64..4096, 0..40),
    ) {
        let store = store_after(&raws.iter().copied().map(decode).collect::<Vec<_>>());
        let digest = store.digest();
        prop_assert_eq!(digest.len(), N);
        for (i, &claimed) in digest.iter().enumerate() {
            match store.get(NodeId::new(i)) {
                Some(entry) => prop_assert_eq!(claimed, entry.stamp),
                None => prop_assert_eq!(claimed, 0),
            }
        }
        // A replica's delta against its own digest is empty (no self-repair).
        prop_assert!(store.delta_for(&digest).is_empty());
    }
}
