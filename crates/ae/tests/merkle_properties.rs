//! Property suite for the Merkle descent: reconciling two arbitrary
//! replicas through the hash-tree protocol — under **arbitrary delivery
//! orders**, like the existing Store CRDT suite — must land both on
//! exactly the store that the classic dense digest/delta exchange (and
//! the order-free union) produces. The digest mode may change the cost of
//! reconciliation, never its result.

use gossip_ae::merkle::{reconcile, DigestTree};
use gossip_ae::protocol::AeMsg;
use gossip_ae::store::{Entry, Store};
use gossip_net::NodeId;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Store arity: big enough for a four-level tree at span 4, small enough
/// to collide origins densely.
const N: usize = 96;

/// Decode a flat `u64` into an honest `(origin, entry)`: an origin stamps
/// only its own key, and a given `(origin, stamp)` names exactly one
/// value (the invariant every digest exchange relies on).
fn decode_honest(raw: u64) -> (NodeId, Entry) {
    let origin = NodeId::new((raw % N as u64) as usize);
    let stamp = 1 + (raw >> 5) % 6;
    let value = (origin.index() as f64) * 100.0 + stamp as f64;
    (origin, Entry { stamp, value })
}

fn replica(raws: &[u64], span: usize) -> (Store, DigestTree) {
    let mut store = Store::new(N);
    for &raw in raws {
        let (origin, entry) = decode_honest(raw);
        store.merge(origin, entry);
    }
    let tree = DigestTree::new(&store, span);
    (store, tree)
}

/// The dense reference: one full three-leg digest/delta exchange.
fn dense_exchange(mut a: Store, mut b: Store) -> (Store, Store) {
    let to_b = a.delta_for(&b.digest());
    b.merge_delta(&to_b);
    let to_a = b.delta_for(&a.digest());
    a.merge_delta(&to_a);
    // b answered a's digest *before* a's repair landed, so close the loop
    // once more — the tick-driven protocol's next exchange.
    let to_b = a.delta_for(&b.digest());
    b.merge_delta(&to_b);
    (a, b)
}

/// Pump Merkle reconciliation between two replicas with messages
/// delivered in an arbitrary (seeded) order, re-opening each "tick" until
/// quiescent. Returns the number of opener rounds it took.
fn merkle_pump(
    a: &mut (Store, DigestTree),
    b: &mut (Store, DigestTree),
    span: usize,
    order_seed: u64,
) -> usize {
    let mut rng = SmallRng::seed_from_u64(order_seed);
    for round in 1..=32 {
        // Both sides open, like two ticking nodes.
        let mut queue: Vec<(bool, AeMsg)> = vec![
            (
                false,
                AeMsg::MerkleSyn {
                    n: N as u32,
                    root: a.1.root(),
                },
            ),
            (
                true,
                AeMsg::MerkleSyn {
                    n: N as u32,
                    root: b.1.root(),
                },
            ),
        ];
        let mut progressed = false;
        while !queue.is_empty() {
            // Arbitrary delivery order: pop a random in-flight message.
            let pick = rng.gen_range(0..queue.len());
            let (to_a, msg) = queue.swap_remove(pick);
            let target = if to_a { &mut *a } else { &mut *b };
            let handled = reconcile(&mut target.0, Some(&mut target.1), span, &msg);
            assert_eq!(handled.invalid, 0, "honest traffic is never dropped");
            progressed |= handled.adopted > 0 || !handled.replies.is_empty();
            queue.extend(handled.replies.into_iter().map(|m| (!to_a, m)));
        }
        if a.0 == b.0 && a.1.root() == b.1.root() {
            return round;
        }
        assert!(
            progressed,
            "stores differ but the exchange went quiet — descent is stuck"
        );
    }
    panic!("merkle reconciliation did not converge within 32 opener rounds");
}

proptest! {
    #[test]
    fn merkle_descent_converges_to_the_dense_fixed_point(
        raws_a in proptest::collection::vec(0u64..=u64::MAX, 0..60),
        raws_b in proptest::collection::vec(0u64..=u64::MAX, 0..60),
        span in 1usize..=16,
        order_seed in 0u64..=u64::MAX,
    ) {
        let mut a = replica(&raws_a, span);
        let mut b = replica(&raws_b, span);

        // The dense reference result and the order-free union.
        let (dense_a, dense_b) = dense_exchange(a.0.clone(), b.0.clone());
        prop_assert_eq!(&dense_a, &dense_b);
        let union = {
            let mut u = a.0.clone();
            u.merge_from(&b.0);
            u
        };
        prop_assert_eq!(&dense_a, &union);

        merkle_pump(&mut a, &mut b, span, order_seed);
        prop_assert_eq!(&a.0, &b.0, "merkle replicas agree");
        prop_assert_eq!(&a.0, &union, "…on exactly the dense/union result");

        // Trees were maintained incrementally through every adoption:
        // they must equal a from-scratch rebuild.
        prop_assert_eq!(&a.1, &DigestTree::new(&a.0, span));
        prop_assert_eq!(&b.1, &DigestTree::new(&b.0, span));

        // And the converged pair is quiescent: the next opener from
        // either side draws no reply.
        let (root_a, root_b) = (a.1.root(), b.1.root());
        for (store, tree, peer_root) in [
            (&mut a.0, &mut a.1, root_b),
            (&mut b.0, &mut b.1, root_a),
        ] {
            let handled = reconcile(
                store,
                Some(tree),
                span,
                &AeMsg::MerkleSyn { n: N as u32, root: peer_root },
            );
            prop_assert!(handled.replies.is_empty());
            prop_assert_eq!(handled.adopted, 0);
        }
    }

    #[test]
    fn identical_replicas_reconcile_in_one_constant_size_leg(
        raws in proptest::collection::vec(0u64..=u64::MAX, 0..60),
        span in 1usize..=16,
    ) {
        let mut a = replica(&raws, span);
        let b = replica(&raws, span);
        let handled = reconcile(
            &mut a.0,
            Some(&mut a.1),
            span,
            &AeMsg::MerkleSyn { n: N as u32, root: b.1.root() },
        );
        prop_assert!(handled.replies.is_empty(), "steady state is silence");
        prop_assert_eq!(handled.adopted, 0);
    }
}
