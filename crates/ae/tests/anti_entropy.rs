//! The E17 acceptance scenario as a test: under ongoing churn, a rejoined
//! node's estimate recovers to within 1% within a bounded number of
//! anti-entropy ticks — and the whole measurement is a pure function of
//! the seed, invariant under sweep-runner thread counts.

use gossip_ae::{
    ae_driver, AeConfig, AeNode, RecoveryOutcome, RecoveryTracker, SignalModel,
    RECOVERY_BOUND_TICKS,
};
use gossip_net::SimConfig;
use gossip_runtime::{AsyncConfig, ChurnModel, EventDriver, LatencyModel, SweepRunner};

const N: usize = 96;
const TICKS: u64 = 100;

fn scenario(seed: u64, crash_rate: f64) -> (EventDriver<AeNode>, AeConfig) {
    let engine = AsyncConfig::new(
        SimConfig::new(N)
            .with_seed(seed)
            .with_loss_prob(0.02)
            .with_value_range(10_000.0),
    )
    .with_latency(LatencyModel::LogNormal {
        median_us: 800.0,
        sigma: 0.6,
    })
    .with_link_spread(0.2)
    .with_churn(ChurnModel::per_round(crash_rate, 0.25).with_min_alive(N / 2));
    let ae = AeConfig::default()
        .with_signal(SignalModel::uniform(0.0, 10_000.0).with_drift_per_s(1_000.0));
    (ae_driver(engine, ae), ae)
}

/// Run the scenario for `TICKS` ticks, observing recoveries every tick.
fn run(seed: u64, crash_rate: f64) -> (Vec<(usize, u64, Option<u64>)>, u64) {
    let (mut driver, ae) = scenario(seed, crash_rate);
    let mut tracker = RecoveryTracker::new(0.01, ae.expiry_us);
    for k in 1..=TICKS {
        driver.run_until(k * ae.tick_us);
        tracker.observe(&driver);
    }
    let records = tracker
        .finish()
        .into_iter()
        .map(|r| {
            let recovered = match r.outcome {
                RecoveryOutcome::Recovered { ticks } => Some(ticks),
                _ => None,
            };
            (r.node.index(), r.rejoined_at_us, recovered)
        })
        .collect();
    (records, driver.metrics().order_hash)
}

#[test]
fn rejoiners_recover_within_the_tick_bound_under_ongoing_churn() {
    let (records, _) = run(42, 0.01);
    let mut measurable = 0;
    for &(node, rejoined_at, recovered) in &records {
        // Only rejoins with the full bound's worth of run left are
        // measurable; later ones may simply have run out of tape (they are
        // `Unresolved`, not failures).
        let remaining_ticks = TICKS.saturating_sub(rejoined_at / AeConfig::default().tick_us);
        if remaining_ticks < RECOVERY_BOUND_TICKS {
            continue;
        }
        // A `None` here is a node that crashed again before recovering —
        // churn's prerogative, not a protocol failure.
        if let Some(ticks) = recovered {
            measurable += 1;
            assert!(
                ticks <= RECOVERY_BOUND_TICKS,
                "node {node} rejoined at {rejoined_at}µs took {ticks} ticks"
            );
        }
    }
    assert!(
        measurable >= 3,
        "scenario produced only {measurable} measurable recoveries"
    );
}

#[test]
fn recovery_measurements_reproduce_bit_for_bit() {
    assert_eq!(run(7, 0.01), run(7, 0.01));
    let (_, hash_a) = run(7, 0.01);
    let (_, hash_b) = run(8, 0.01);
    assert_ne!(hash_a, hash_b, "different seeds schedule differently");
}

#[test]
fn sweeping_the_scenario_is_thread_count_invariant() {
    let seeds = SweepRunner::trial_seeds(0xE17, 6);
    let rates = [0.005, 0.02];
    let sweep = |threads| {
        SweepRunner::with_threads(threads).run_grid(&rates, &seeds, |&rate, seed| run(seed, rate))
    };
    let one = sweep(1);
    assert_eq!(one, sweep(2));
    assert_eq!(one, sweep(8));
}
