//! Wire-codec impls for the anti-entropy messages, so [`AeNode`] runs
//! unchanged on the real-socket host (`gossip-node`).
//!
//! The layout mirrors the modelled sizing of [`AeMsg`]: a one-byte tag,
//! then the digest
//! and/or delta. A digest travels as a dense `Vec<u64>` of per-origin
//! stamps (`0` = absent), a delta as `(origin, stamp, value)` triples —
//! exactly the fields `digest_bits`/`delta_bits` charge for, so the
//! simulator's byte accounting and the real wire agree up to header
//! overhead.
//!
//! [`AeNode`]: crate::protocol::AeNode

use crate::protocol::AeMsg;
use crate::store::Entry;
use gossip_net::{NodeId, WireError, WireMsg, WireReader, WireWriter};

impl WireMsg for Entry {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u64(self.stamp);
        w.put_f64(self.value);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Entry {
            stamp: r.take_u64()?,
            value: r.take_f64()?,
        })
    }
}

const TAG_SYN_REQ: u8 = 0;
const TAG_SYN_ACK: u8 = 1;
const TAG_DELTA: u8 = 2;

impl WireMsg for AeMsg {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            AeMsg::SynReq { digest } => {
                w.put_u8(TAG_SYN_REQ);
                digest.encode(w);
            }
            AeMsg::SynAck { delta, digest } => {
                w.put_u8(TAG_SYN_ACK);
                delta.encode(w);
                digest.encode(w);
            }
            AeMsg::Delta { delta } => {
                w.put_u8(TAG_DELTA);
                delta.encode(w);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.take_u8()? {
            TAG_SYN_REQ => Ok(AeMsg::SynReq {
                digest: Vec::decode(r)?,
            }),
            TAG_SYN_ACK => Ok(AeMsg::SynAck {
                delta: Vec::<(NodeId, Entry)>::decode(r)?,
                digest: Vec::decode(r)?,
            }),
            TAG_DELTA => Ok(AeMsg::Delta {
                delta: Vec::<(NodeId, Entry)>::decode(r)?,
            }),
            tag => Err(WireError::BadTag { tag }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(msg: &AeMsg) -> AeMsg {
        let bytes = msg.to_wire_bytes();
        let mut r = WireReader::new(&bytes);
        let decoded = AeMsg::decode(&mut r).expect("decodes");
        assert_eq!(r.remaining(), 0, "decode consumes everything");
        decoded
    }

    fn entry(stamp: u64, value: f64) -> Entry {
        Entry { stamp, value }
    }

    #[test]
    fn all_three_legs_round_trip() {
        let digest = vec![0u64, 5, 0, 12];
        let delta = vec![
            (NodeId::new(1), entry(5, 1.25)),
            (NodeId::new(3), entry(12, -7.5)),
        ];
        for msg in [
            AeMsg::SynReq {
                digest: digest.clone(),
            },
            AeMsg::SynAck {
                delta: delta.clone(),
                digest: digest.clone(),
            },
            AeMsg::Delta {
                delta: delta.clone(),
            },
            AeMsg::SynReq { digest: Vec::new() },
            AeMsg::Delta { delta: Vec::new() },
        ] {
            assert_eq!(round_trip(&msg), msg);
        }
    }

    #[test]
    fn unknown_tags_are_rejected() {
        let mut bytes = AeMsg::SynReq { digest: vec![1] }.to_wire_bytes();
        bytes[0] = 9;
        assert_eq!(
            AeMsg::decode(&mut WireReader::new(&bytes)),
            Err(WireError::BadTag { tag: 9 })
        );
    }

    #[test]
    fn truncation_never_panics() {
        let msg = AeMsg::SynAck {
            delta: vec![(NodeId::new(2), entry(9, 3.0))],
            digest: vec![0, 9],
        };
        let bytes = msg.to_wire_bytes();
        for cut in 0..bytes.len() {
            assert!(AeMsg::decode(&mut WireReader::new(&bytes[..cut])).is_err());
        }
    }
}
