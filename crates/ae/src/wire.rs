//! Wire-codec impls for the anti-entropy messages, so [`AeNode`] runs
//! unchanged on the real-socket host (`gossip-node`).
//!
//! The layout mirrors the modelled sizing of [`AeMsg`]: a one-byte tag,
//! then exactly the fields `AeNode`'s bit accounting charges for. A flat
//! digest travels **sparse** — the store arity, then one
//! `(origin, stamp)` pair per known origin — matching the model's
//! `8 + 32 + known·(id_bits + STAMP_BITS)` (the dense `Vec<u64>` form an
//! earlier revision shipped charged sparse but encoded all n stamps, so
//! the model and the wire disagreed for every sparse store: early ticks,
//! rejoiners). Deltas are `(origin, stamp, value)` triples; the Merkle
//! legs carry root hashes, `(tree index, hash)` probe pairs and per-slot
//! range stamps. [`payload_bytes`] is the exact byte-length twin of the
//! encoder, pinned equal to `to_wire_bytes().len()` by the property
//! suite, so tests and experiments can reason about datagram budgets
//! without encoding.
//!
//! The decoder is total (property-pinned): truncated, oversized,
//! bit-flipped and hostile-length input returns [`WireError`], never a
//! panic. Decoding is only the first gate — a structurally valid message
//! can still carry a hostile digest (wrong arity, unsorted pairs,
//! out-of-range origins), which [`AeNode`] validates and counts before
//! trusting (see `AeNodeStats::digest_mismatches`).
//!
//! [`AeNode`]: crate::protocol::AeNode
//! [`STAMP_BITS`]: crate::store::STAMP_BITS

use crate::protocol::AeMsg;
use crate::store::Entry;
use gossip_net::{NodeId, WireError, WireMsg, WireReader, WireWriter};

impl WireMsg for Entry {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u64(self.stamp);
        w.put_f64(self.value);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Entry {
            stamp: r.take_u64()?,
            value: r.take_f64()?,
        })
    }
}

const TAG_SYN_REQ: u8 = 0;
const TAG_SYN_ACK: u8 = 1;
const TAG_DELTA: u8 = 2;
const TAG_MERKLE_SYN: u8 = 3;
const TAG_MERKLE_PROBE: u8 = 4;
const TAG_RANGE_SYN: u8 = 5;
const TAG_RANGE_ACK: u8 = 6;

impl WireMsg for AeMsg {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            AeMsg::SynReq { n, digest } => {
                w.put_u8(TAG_SYN_REQ);
                w.put_u32(*n);
                digest.encode(w);
            }
            AeMsg::SynAck { n, delta, digest } => {
                w.put_u8(TAG_SYN_ACK);
                w.put_u32(*n);
                delta.encode(w);
                digest.encode(w);
            }
            AeMsg::Delta { delta } => {
                w.put_u8(TAG_DELTA);
                delta.encode(w);
            }
            AeMsg::MerkleSyn { n, root } => {
                w.put_u8(TAG_MERKLE_SYN);
                w.put_u32(*n);
                w.put_u64(*root);
            }
            AeMsg::MerkleProbe { n, probes } => {
                w.put_u8(TAG_MERKLE_PROBE);
                w.put_u32(*n);
                probes.encode(w);
            }
            AeMsg::RangeSyn { n, start, stamps } => {
                w.put_u8(TAG_RANGE_SYN);
                w.put_u32(*n);
                w.put_u32(*start);
                stamps.encode(w);
            }
            AeMsg::RangeAck {
                n,
                start,
                stamps,
                delta,
            } => {
                w.put_u8(TAG_RANGE_ACK);
                w.put_u32(*n);
                w.put_u32(*start);
                stamps.encode(w);
                delta.encode(w);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.take_u8()? {
            TAG_SYN_REQ => Ok(AeMsg::SynReq {
                n: r.take_u32()?,
                digest: Vec::<(NodeId, u64)>::decode(r)?,
            }),
            TAG_SYN_ACK => Ok(AeMsg::SynAck {
                n: r.take_u32()?,
                delta: Vec::<(NodeId, Entry)>::decode(r)?,
                digest: Vec::<(NodeId, u64)>::decode(r)?,
            }),
            TAG_DELTA => Ok(AeMsg::Delta {
                delta: Vec::<(NodeId, Entry)>::decode(r)?,
            }),
            TAG_MERKLE_SYN => Ok(AeMsg::MerkleSyn {
                n: r.take_u32()?,
                root: r.take_u64()?,
            }),
            TAG_MERKLE_PROBE => Ok(AeMsg::MerkleProbe {
                n: r.take_u32()?,
                probes: Vec::<(u32, u64)>::decode(r)?,
            }),
            TAG_RANGE_SYN => Ok(AeMsg::RangeSyn {
                n: r.take_u32()?,
                start: r.take_u32()?,
                stamps: Vec::<u64>::decode(r)?,
            }),
            TAG_RANGE_ACK => Ok(AeMsg::RangeAck {
                n: r.take_u32()?,
                start: r.take_u32()?,
                stamps: Vec::<u64>::decode(r)?,
                delta: Vec::<(NodeId, Entry)>::decode(r)?,
            }),
            tag => Err(WireError::BadTag { tag }),
        }
    }
}

/// Exact encoded payload size of `msg`, computed from its counts without
/// encoding: `payload_bytes(m) == m.to_wire_bytes().len()` for every
/// message (property-pinned). The arithmetic twin the datagram-budget
/// assertions and E20's in-vitro byte measurements use.
pub fn payload_bytes(msg: &AeMsg) -> usize {
    const VEC_LEN: usize = 4; // Vec<T> length prefix
    const PAIR: usize = 4 + 8; // (NodeId, u64) — digest pairs and probes
    const DELTA_ENTRY: usize = 4 + 8 + 8; // (NodeId, Entry{stamp, value})
    match msg {
        AeMsg::SynReq { digest, .. } => 1 + 4 + VEC_LEN + digest.len() * PAIR,
        AeMsg::SynAck { delta, digest, .. } => {
            1 + 4 + VEC_LEN + delta.len() * DELTA_ENTRY + VEC_LEN + digest.len() * PAIR
        }
        AeMsg::Delta { delta } => 1 + VEC_LEN + delta.len() * DELTA_ENTRY,
        AeMsg::MerkleSyn { .. } => 1 + 4 + 8,
        AeMsg::MerkleProbe { probes, .. } => 1 + 4 + VEC_LEN + probes.len() * PAIR,
        AeMsg::RangeSyn { stamps, .. } => 1 + 4 + 4 + VEC_LEN + stamps.len() * 8,
        AeMsg::RangeAck { stamps, delta, .. } => {
            1 + 4 + 4 + VEC_LEN + stamps.len() * 8 + VEC_LEN + delta.len() * DELTA_ENTRY
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(msg: &AeMsg) -> AeMsg {
        let bytes = msg.to_wire_bytes();
        assert_eq!(bytes.len(), payload_bytes(msg), "size twin agrees");
        let mut r = WireReader::new(&bytes);
        let decoded = AeMsg::decode(&mut r).expect("decodes");
        assert_eq!(r.remaining(), 0, "decode consumes everything");
        decoded
    }

    fn entry(stamp: u64, value: f64) -> Entry {
        Entry { stamp, value }
    }

    #[test]
    fn every_leg_round_trips() {
        let digest = vec![(NodeId::new(1), 5u64), (NodeId::new(3), 12)];
        let delta = vec![
            (NodeId::new(1), entry(5, 1.25)),
            (NodeId::new(3), entry(12, -7.5)),
        ];
        for msg in [
            AeMsg::SynReq {
                n: 4,
                digest: digest.clone(),
            },
            AeMsg::SynAck {
                n: 4,
                delta: delta.clone(),
                digest: digest.clone(),
            },
            AeMsg::Delta {
                delta: delta.clone(),
            },
            AeMsg::SynReq {
                n: 4,
                digest: Vec::new(),
            },
            AeMsg::Delta { delta: Vec::new() },
            AeMsg::MerkleSyn {
                n: 1 << 20,
                root: u64::MAX,
            },
            AeMsg::MerkleProbe {
                n: 64,
                probes: vec![(1, 0xDEAD), (2, 0xBEEF)],
            },
            AeMsg::RangeSyn {
                n: 64,
                start: 32,
                stamps: vec![0, 7, 0, 9],
            },
            AeMsg::RangeAck {
                n: 64,
                start: 32,
                stamps: vec![1, 0, 3, 0],
                delta,
            },
        ] {
            assert_eq!(round_trip(&msg), msg);
        }
    }

    #[test]
    fn unknown_tags_are_rejected() {
        let mut bytes = AeMsg::MerkleSyn { n: 4, root: 9 }.to_wire_bytes();
        bytes[0] = 9;
        assert_eq!(
            AeMsg::decode(&mut WireReader::new(&bytes)),
            Err(WireError::BadTag { tag: 9 })
        );
    }

    #[test]
    fn truncation_never_panics() {
        for msg in [
            AeMsg::SynAck {
                n: 3,
                delta: vec![(NodeId::new(2), entry(9, 3.0))],
                digest: vec![(NodeId::new(1), 9)],
            },
            AeMsg::RangeAck {
                n: 8,
                start: 4,
                stamps: vec![1, 2],
                delta: vec![(NodeId::new(5), entry(2, 0.5))],
            },
            AeMsg::MerkleProbe {
                n: 8,
                probes: vec![(0, 1)],
            },
        ] {
            let bytes = msg.to_wire_bytes();
            for cut in 0..bytes.len() {
                assert!(AeMsg::decode(&mut WireReader::new(&bytes[..cut])).is_err());
            }
        }
    }

    #[test]
    fn digests_cost_bytes_only_for_known_origins() {
        // The satellite bugfix in one assertion: the wire size of a digest
        // is a function of what the replica *knows*, not of n — a
        // rejoiner's opener is 9 bytes whether the network has ten nodes
        // or a million.
        let rejoiner = AeMsg::SynReq {
            n: 1_000_000,
            digest: Vec::new(),
        };
        assert_eq!(payload_bytes(&rejoiner), 9);
        let one_known = AeMsg::SynReq {
            n: 1_000_000,
            digest: vec![(NodeId::new(123_456), 7)],
        };
        assert_eq!(payload_bytes(&one_known), 9 + 12);
    }
}
