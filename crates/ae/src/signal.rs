//! The changing input signal that continuous aggregation tracks.
//!
//! One-shot protocols aggregate a frozen value vector; the anti-entropy
//! layer instead tracks a **moving** per-node signal. [`SignalModel`] is a
//! closed-form signal — a deterministic per-node base level plus a global
//! linear drift — so any observer (a node, the experiment harness, a test)
//! can evaluate the true value of any node at any virtual instant without
//! sharing state, and the exact network-wide mean is available at every
//! sampling point for staleness measurement.

use gossip_net::NodeId;
use serde::{Deserialize, Serialize};

/// A deterministic per-node signal: `value(i, t) = base(i) + drift · t`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SignalModel {
    /// Lower bound of the per-node base level.
    pub lo: f64,
    /// Upper bound (exclusive) of the per-node base level.
    pub hi: f64,
    /// Global drift in value units per virtual second; every node's signal
    /// moves at this rate, so the true mean moves at it too and stale
    /// entries are wrong by `drift · age`.
    pub drift_per_s: f64,
}

impl SignalModel {
    /// Bases uniform in `[lo, hi)`, no drift.
    pub fn uniform(lo: f64, hi: f64) -> Self {
        assert!(lo < hi, "signal range must be non-empty ({lo}..{hi})");
        SignalModel {
            lo,
            hi,
            drift_per_s: 0.0,
        }
    }

    /// Add a global drift (value units per virtual second).
    pub fn with_drift_per_s(mut self, drift: f64) -> Self {
        assert!(drift.is_finite(), "drift must be finite");
        self.drift_per_s = drift;
        self
    }

    /// The node's base level: a [`mix64`](gossip_net::mix64) hash of the id
    /// mapped into `[lo, hi)` — stable for the whole run, independent of
    /// any RNG stream.
    pub fn base(&self, node: NodeId) -> f64 {
        let z = gossip_net::mix64((node.index() as u64).wrapping_add(0x9E37_79B9_7F4A_7C15));
        let unit = (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.lo + (self.hi - self.lo) * unit
    }

    /// The node's true signal value at virtual instant `t_us`.
    pub fn value(&self, node: NodeId, t_us: u64) -> f64 {
        self.base(node) + self.drift_per_s * (t_us as f64 / 1e6)
    }

    /// Exact mean of the signal over `nodes` at instant `t_us` (`None` for
    /// an empty set).
    pub fn true_mean(&self, nodes: impl IntoIterator<Item = NodeId>, t_us: u64) -> Option<f64> {
        let mut sum = 0.0;
        let mut count = 0usize;
        for v in nodes {
            sum += self.value(v, t_us);
            count += 1;
        }
        (count > 0).then(|| sum / count as f64)
    }
}

impl Default for SignalModel {
    fn default() -> Self {
        SignalModel::uniform(0.0, 10_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bases_are_stable_spread_and_in_range() {
        let s = SignalModel::uniform(100.0, 200.0);
        let mut distinct = std::collections::HashSet::new();
        for i in 0..500 {
            let b = s.base(NodeId::new(i));
            assert!((100.0..200.0).contains(&b), "base {b} out of range");
            assert_eq!(b, s.base(NodeId::new(i)), "stable per node");
            distinct.insert(b.to_bits());
        }
        assert!(distinct.len() > 490, "hash spreads the bases");
    }

    #[test]
    fn drift_moves_value_and_mean_linearly() {
        let s = SignalModel::uniform(0.0, 10.0).with_drift_per_s(6.0);
        let v = NodeId::new(3);
        assert_eq!(s.value(v, 0), s.base(v));
        let dv = s.value(v, 500_000) - s.value(v, 0);
        assert!((dv - 3.0).abs() < 1e-9, "0.5 s × 6/s = 3, got {dv}");
        let nodes = || (0..8).map(NodeId::new);
        let m0 = s.true_mean(nodes(), 0).unwrap();
        let m1 = s.true_mean(nodes(), 1_000_000).unwrap();
        assert!((m1 - m0 - 6.0).abs() < 1e-9);
        assert_eq!(s.true_mean(std::iter::empty(), 0), None);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_range_rejected() {
        let _ = SignalModel::uniform(5.0, 5.0);
    }
}
