//! # gossip-ae
//!
//! Event-driven **anti-entropy** for continuous aggregation.
//!
//! The one-shot DRR-gossip/push-sum chain computes an aggregate once and
//! stops: a node that churned away mid-run and rejoined holds nothing
//! (`NaN` in the reports) and stays that way forever. This crate closes the
//! gap with a protocol that never stops — the shape of the ciruela gossip
//! emulator (interval-driven ticks) built on the workspace's event-driven
//! protocol API:
//!
//! * [`Store`]: a per-origin max-timestamp replicated map — idempotent,
//!   commutative, convergent merge (the CRDT that makes "eventually every
//!   replica agrees" a theorem rather than a hope).
//! * [`AeNode`]: a [`Handler`] that on every tick
//!   reconciles with one random peer via digest exchange and delta repair
//!   ([`AeMsg`]), and on every update re-stamps its own entry from the
//!   moving [`SignalModel`]. Estimates are means over *fresh* entries, so
//!   crashed origins age out instead of biasing the aggregate forever.
//! * [`merkle`]: hash-tree digests ([`DigestTree`]) and the descent
//!   reconciliation engine — [`DigestMode::Merkle`] swaps the O(n) flat
//!   digest for an O(log n) root-hash exchange whose every message stays
//!   datagram-sized at any n (what lets the socket host run anti-entropy
//!   at the scales the sharded engine simulates).
//! * [`ae_driver`]: hosts one `AeNode` per node on the discrete-event
//!   [`AsyncEngine`](gossip_runtime::AsyncEngine) — latency, loss, churn
//!   and bandwidth are the engine's, determinism is the driver's, and a
//!   rejoiner restarts with an empty store exactly as the failure model
//!   demands (anti-entropy is what fills it back up).
//!
//! Treating the repeated local averaging as a fixed-point iteration (the
//! proximal-point reading of Chen–Teboulle in the related-work notes), each
//! reconciliation is a contraction toward the replicated fixed point; churn
//! and loss perturb it, and the periodic ticks restore it — which is why
//! the `anti_entropy` experiment (E17) can bound rejoin recovery in ticks.
//!
//! ```
//! use gossip_ae::{ae_driver, AeConfig};
//! use gossip_net::SimConfig;
//! use gossip_runtime::{AsyncConfig, ChurnModel};
//!
//! let engine = AsyncConfig::new(SimConfig::new(64).with_seed(7))
//!     .with_churn(ChurnModel::per_round(0.01, 0.2));
//! let mut driver = ae_driver(engine, AeConfig::default());
//! driver.run_until(100_000); // 100 virtual ms of continuous aggregation
//! let now = driver.now_us();
//! let informed = driver
//!     .handlers()
//!     .iter()
//!     .filter(|node| node.estimate(now).is_some())
//!     .count();
//! assert!(informed > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod merkle;
pub mod protocol;
pub mod recovery;
pub mod signal;
pub mod store;
pub mod wire;

pub use merkle::{reconcile, DigestTree, Handled, PROBE_BATCH};
pub use protocol::{
    ae_driver, ae_sharded_driver, AeConfig, AeMsg, AeNode, AeNodeStats, DigestMode, TIMER_TICK,
    TIMER_UPDATE,
};
pub use recovery::{
    reference_store, RecoveryOutcome, RecoveryRecord, RecoveryTracker, RECOVERY_BOUND_TICKS,
};
pub use signal::SignalModel;
pub use store::{sparse_digest_well_formed, Digest, Entry, SparseDigest, Store, STAMP_BITS};
pub use wire::payload_bytes;

// The building blocks the subsystem is made of, re-exported so dependents
// of the anti-entropy layer see one coherent API.
pub use gossip_net::{Handler, Mailbox, TimerId};
pub use gossip_runtime::{DriverMetrics, EventDriver, ShardedDriver};
