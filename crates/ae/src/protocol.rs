//! The anti-entropy protocol: periodic digest exchange with delta repair.
//!
//! Every node runs an [`AeNode`] under the event-driven driver. On its
//! anti-entropy tick it picks a uniformly random peer and starts a
//! push-pull exchange (the classic three-way reconciliation):
//!
//! 1. `A → B` [`AeMsg::SynReq`] — A's digest (per-origin max stamps).
//! 2. `B → A` [`AeMsg::SynAck`] — the entries B holds that A's digest
//!    lacks, plus B's own digest.
//! 3. `A → B` [`AeMsg::Delta`] — the entries A holds that B's digest
//!    lacks (omitted when B is already current).
//!
//! Any message may be lost; the exchange is stateless on both sides, so a
//! dropped leg costs nothing but the next tick. On its update tick a node
//! re-stamps its own entry with the current signal value, which is what
//! turns one-shot aggregation into **continuous** aggregation: estimates
//! track the input as it drifts, stale entries age out (see
//! [`Store::mean_fresh`]), and a churned-and-rejoined node — restarted
//! with an empty store — pulls the whole state back within a few ticks.

use crate::signal::SignalModel;
use crate::store::{Digest, Entry, Store, STAMP_BITS};
use gossip_net::{stagger_us, Handler, Mailbox, NodeId, Phase, TimerId};
use gossip_runtime::{AsyncConfig, AsyncEngine, EventDriver, ShardedDriver};
use serde::{Deserialize, Serialize};

/// The anti-entropy tick timer.
pub const TIMER_TICK: TimerId = TimerId(0);
/// The local signal-update timer.
pub const TIMER_UPDATE: TimerId = TimerId(1);

/// Parameters of the anti-entropy layer.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct AeConfig {
    /// Anti-entropy exchange interval (µs). Each node starts one exchange
    /// per tick, at a deterministic per-node phase offset (no thundering
    /// herd).
    pub tick_us: u64,
    /// Local signal re-stamp interval (µs); `0` freezes the signal after
    /// the initial stamp.
    pub update_us: u64,
    /// Entries older than this (µs) are excluded from
    /// [`AeNode::estimate`]; `0` disables expiry. Should comfortably
    /// exceed `update_us` plus a few ticks of propagation, or live
    /// origins flicker out of the aggregate between refreshes.
    pub expiry_us: u64,
    /// Peers contacted per tick.
    pub fanout: usize,
    /// The input signal being aggregated.
    pub signal: SignalModel,
}

impl AeConfig {
    /// Set the anti-entropy interval (µs).
    pub fn with_tick_us(mut self, tick_us: u64) -> Self {
        assert!(tick_us >= 1, "tick interval must be at least 1µs");
        self.tick_us = tick_us;
        self
    }

    /// Set the signal-update interval (µs, `0` = static signal).
    pub fn with_update_us(mut self, update_us: u64) -> Self {
        self.update_us = update_us;
        self
    }

    /// Set the estimate freshness window (µs, `0` = never expire).
    pub fn with_expiry_us(mut self, expiry_us: u64) -> Self {
        self.expiry_us = expiry_us;
        self
    }

    /// Set the per-tick fanout.
    pub fn with_fanout(mut self, fanout: usize) -> Self {
        assert!(fanout >= 1, "fanout must be at least 1");
        self.fanout = fanout;
        self
    }

    /// Set the signal model.
    pub fn with_signal(mut self, signal: SignalModel) -> Self {
        self.signal = signal;
        self
    }
}

impl Default for AeConfig {
    /// 4 ms ticks, 16 ms signal refresh, 80 ms freshness window, fanout 1 —
    /// proportioned like the ciruela emulator's interval gossip (ticks a
    /// few latency medians apart).
    fn default() -> Self {
        AeConfig {
            tick_us: 4_000,
            update_us: 16_000,
            expiry_us: 80_000,
            fanout: 1,
            signal: SignalModel::default(),
        }
    }
}

/// The three-way reconciliation messages.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum AeMsg {
    /// Exchange opener: the initiator's digest.
    SynReq {
        /// Per-origin max stamps of the initiator.
        digest: Digest,
    },
    /// The responder's repair: entries the initiator lacks, plus the
    /// responder's digest so the initiator can repair it in turn.
    SynAck {
        /// Entries the initiator's digest was missing.
        delta: Vec<(NodeId, Entry)>,
        /// Per-origin max stamps of the responder.
        digest: Digest,
    },
    /// The initiator's counter-repair (third leg; only sent when needed).
    Delta {
        /// Entries the responder's digest was missing.
        delta: Vec<(NodeId, Entry)>,
    },
}

/// Per-node protocol counters (diagnostics; not part of the wire state).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AeNodeStats {
    /// Anti-entropy ticks fired.
    pub ticks: u64,
    /// Exchanges initiated (`SynReq`s sent).
    pub syn_sent: u64,
    /// Entries adopted from peers' deltas.
    pub entries_adopted: u64,
    /// Local signal re-stamps.
    pub self_updates: u64,
}

/// One node of the anti-entropy layer. Implements [`Handler`]; host it with
/// [`ae_driver`] (or any [`EventDriver`]).
#[derive(Clone, Debug)]
pub struct AeNode {
    me: NodeId,
    id_bits: u32,
    value_bits: u32,
    config: AeConfig,
    store: Store,
    /// Diagnostic counters.
    pub stats: AeNodeStats,
}

impl AeNode {
    /// A node with an empty store (what a fresh boot — or a rejoiner —
    /// knows: nothing). `id_bits`/`value_bits` size the modelled wire
    /// messages.
    pub fn new(me: NodeId, n: usize, id_bits: u32, value_bits: u32, config: AeConfig) -> Self {
        AeNode {
            me,
            id_bits,
            value_bits,
            config,
            store: Store::new(n),
            stats: AeNodeStats::default(),
        }
    }

    /// The node's replicated store.
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// The node's current estimate of the network-wide signal mean: the
    /// mean over fresh entries (see [`AeConfig::expiry_us`]). `None` before
    /// the first stamp — which cannot happen after `on_start` ran.
    pub fn estimate(&self, now_us: u64) -> Option<f64> {
        self.store.mean_fresh(now_us, self.config.expiry_us)
    }

    /// Re-stamp this node's own entry with the signal's current value.
    fn refresh_own(&mut self, now_us: u64) {
        let entry = Entry {
            stamp: now_us.max(1),
            value: self.config.signal.value(self.me, now_us),
        };
        self.store.merge(self.me, entry);
    }

    fn digest_bits(&self, digest: &Digest) -> u32 {
        // Tag byte + one (origin, stamp) pair per known origin; absent
        // origins compress to nothing on a real wire.
        let known = digest.iter().filter(|&&s| s > 0).count() as u32;
        8 + known * (self.id_bits + STAMP_BITS)
    }

    fn delta_bits(&self, delta: &[(NodeId, Entry)]) -> u32 {
        8 + delta.len() as u32 * (self.id_bits + STAMP_BITS + self.value_bits)
    }
}

impl Handler for AeNode {
    type Msg = AeMsg;

    fn on_start(&mut self, mailbox: &mut dyn Mailbox<AeMsg>) {
        self.refresh_own(mailbox.now_us());
        mailbox.set_timer(stagger_us(self.me, self.config.tick_us, 0xA17), TIMER_TICK);
        if self.config.update_us > 0 {
            mailbox.set_timer(
                stagger_us(self.me, self.config.update_us, 0x5D7),
                TIMER_UPDATE,
            );
        }
    }

    fn on_timer(&mut self, timer: TimerId, mailbox: &mut dyn Mailbox<AeMsg>) {
        match timer {
            TIMER_TICK => {
                self.stats.ticks += 1;
                // One digest serves every fanout target: the store cannot
                // change between the sends of one tick.
                let digest = self.store.digest();
                let bits = self.digest_bits(&digest);
                for _ in 0..self.config.fanout {
                    let peer = mailbox.sample_peer();
                    mailbox.send(
                        peer,
                        Phase::AntiEntropy,
                        bits,
                        AeMsg::SynReq {
                            digest: digest.clone(),
                        },
                    );
                    self.stats.syn_sent += 1;
                }
                mailbox.set_timer(self.config.tick_us, TIMER_TICK);
            }
            TIMER_UPDATE => {
                self.stats.self_updates += 1;
                self.refresh_own(mailbox.now_us());
                mailbox.set_timer(self.config.update_us, TIMER_UPDATE);
            }
            other => debug_assert!(false, "unknown timer {other}"),
        }
    }

    fn on_message(&mut self, from: NodeId, msg: AeMsg, mailbox: &mut dyn Mailbox<AeMsg>) {
        match msg {
            AeMsg::SynReq { digest } => {
                let delta = self.store.delta_for(&digest);
                let mine = self.store.digest();
                let bits = self.delta_bits(&delta) + self.digest_bits(&mine);
                mailbox.send(
                    from,
                    Phase::AntiEntropy,
                    bits,
                    AeMsg::SynAck {
                        delta,
                        digest: mine,
                    },
                );
            }
            AeMsg::SynAck { delta, digest } => {
                self.stats.entries_adopted += self.store.merge_delta(&delta) as u64;
                let back = self.store.delta_for(&digest);
                if !back.is_empty() {
                    let bits = self.delta_bits(&back);
                    mailbox.send(from, Phase::AntiEntropy, bits, AeMsg::Delta { delta: back });
                }
            }
            AeMsg::Delta { delta } => {
                self.stats.entries_adopted += self.store.merge_delta(&delta) as u64;
            }
        }
    }
}

/// Host the anti-entropy layer on an [`AsyncEngine`]: one [`AeNode`] per
/// node, rejoiners restarting empty (the driver's incarnation contract).
/// The driver's churn window is aligned with the anti-entropy tick, so the
/// engine's per-round churn probabilities read as per-*tick* probabilities.
pub fn ae_driver(engine_config: AsyncConfig, ae_config: AeConfig) -> EventDriver<AeNode> {
    let n = engine_config.sim.n;
    let id_bits = engine_config.sim.id_bits();
    let value_bits = engine_config.sim.value_bits();
    EventDriver::new(AsyncEngine::new(engine_config), move |me| {
        AeNode::new(me, n, id_bits, value_bits, ae_config)
    })
    .with_window_us(ae_config.tick_us)
}

/// Host the anti-entropy layer on the **sharded** engine: the node space
/// split into `shards` shards with per-shard event queues and per-node RNG
/// streams (see `gossip_runtime::shard`), so the same [`AeNode`] handler
/// scales to n ≥ 10⁶. The churn window is the anti-entropy tick, exactly
/// like [`ae_driver`]. Runs are shard-count invariant, but *not*
/// bit-comparable with `ae_driver` runs — the two execution models consume
/// different RNG streams.
pub fn ae_sharded_driver(
    engine_config: AsyncConfig,
    ae_config: AeConfig,
    shards: usize,
) -> ShardedDriver<AeNode> {
    let n = engine_config.sim.n;
    let id_bits = engine_config.sim.id_bits();
    let value_bits = engine_config.sim.value_bits();
    ShardedDriver::new(engine_config, shards, move |me| {
        AeNode::new(me, n, id_bits, value_bits, ae_config)
    })
    .with_window_us(ae_config.tick_us)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_net::{SimConfig, Transport};
    use gossip_runtime::{ChurnModel, LatencyModel};

    fn driver(n: usize, seed: u64, loss: f64, churn: ChurnModel) -> EventDriver<AeNode> {
        let config = AsyncConfig::new(
            SimConfig::new(n)
                .with_seed(seed)
                .with_loss_prob(loss)
                .with_value_range(10_000.0),
        )
        .with_latency(LatencyModel::Uniform {
            lo_us: 200,
            hi_us: 1_200,
        })
        .with_churn(churn);
        ae_driver(config, AeConfig::default())
    }

    fn max_error(driver: &EventDriver<AeNode>, at_us: u64) -> f64 {
        let signal = driver.handlers()[0].config.signal;
        let alive: Vec<NodeId> = driver.engine().alive_nodes().collect();
        let truth = signal.true_mean(alive.iter().copied(), at_us).unwrap();
        alive
            .iter()
            .map(|&v| {
                let est = driver.handler(v).estimate(at_us);
                est.map_or(f64::INFINITY, |e| ((e - truth) / truth).abs())
            })
            .fold(0.0, f64::max)
    }

    #[test]
    fn every_node_converges_to_the_true_mean() {
        let mut d = driver(48, 3, 0.02, ChurnModel::none());
        d.run_until(200_000);
        let err = max_error(&d, 200_000);
        assert!(err < 1e-9, "static signal fully reconciles, err = {err}");
        // Everyone knows everyone.
        for h in d.handlers() {
            assert_eq!(h.store().known(), 48);
        }
    }

    #[test]
    fn estimates_track_a_drifting_signal() {
        let n = 32;
        let config = AsyncConfig::new(SimConfig::new(n).with_seed(5).with_value_range(10_000.0))
            .with_latency(LatencyModel::Constant(500));
        let ae = AeConfig::default()
            .with_update_us(8_000)
            .with_signal(SignalModel::uniform(0.0, 10_000.0).with_drift_per_s(5_000.0));
        let mut d = ae_driver(config, ae);
        d.run_until(400_000);
        // Truth moved by 2000 units (0.4 s × 5000/s); estimates follow
        // within the staleness of one update interval of drift.
        let signal = ae.signal;
        let truth = signal.true_mean((0..n).map(NodeId::new), 400_000).unwrap();
        for (i, h) in d.handlers().iter().enumerate() {
            let est = h.estimate(400_000).expect("estimate exists");
            let err = ((est - truth) / truth).abs();
            assert!(err < 0.02, "node {i}: est {est} vs truth {truth}");
        }
    }

    #[test]
    fn a_rejoiner_recovers_from_an_empty_store() {
        // Churn on: nodes crash mid-run and rejoin with nothing, while the
        // protocol keeps running. Recovery is judged against the *reference
        // estimate* — the mean a fully-synced replica (the union of all
        // alive stores) holds — because under ongoing churn the ground
        // truth moves with membership faster than any protocol without a
        // failure detector can track.
        let mut d = driver(64, 11, 0.02, ChurnModel::per_round(0.01, 0.15));
        d.run_until(270_000);
        let now = d.now_us();
        let rejoins = d.metrics().rejoin_log.len();
        assert!(rejoins > 0, "churn produced rejoins");

        // The union of all alive stores: what anti-entropy is converging to
        // (the same reference RecoveryTracker and E17 measure against).
        let reference = crate::recovery::reference_store(&d);
        let expiry = AeConfig::default().expiry_us;
        let truth = reference.mean_fresh(now, expiry).expect("reference known");

        // Every alive node that has had ≥ 15 ticks since its last rejoin
        // (or since boot) must sit within 1% of the reference.
        let grace = 15 * AeConfig::default().tick_us;
        let mut last_rejoin = vec![0u64; 64];
        for &(t, node) in &d.metrics().rejoin_log {
            last_rejoin[node.index()] = t;
        }
        let mut checked = 0;
        for v in d.engine().alive_nodes() {
            if now - last_rejoin[v.index()] < grace {
                continue;
            }
            let est = d.handler(v).estimate(now).expect("settled node informed");
            let err = ((est - truth) / truth).abs();
            assert!(err < 0.01, "node {v:?}: est {est} vs reference {truth}");
            checked += 1;
        }
        assert!(checked > 32, "most of the network is settled ({checked})");
    }

    #[test]
    fn sharded_host_reconciles_and_is_shard_count_invariant() {
        // The anti-entropy handler, unchanged, on the sharded engine: a
        // static signal must still fully reconcile, and the run — order
        // hash, store contents, estimates — must not depend on the shard
        // count.
        let build = |shards| {
            let config = AsyncConfig::new(
                SimConfig::new(48)
                    .with_seed(3)
                    .with_loss_prob(0.02)
                    .with_value_range(10_000.0),
            )
            .with_latency(LatencyModel::Uniform {
                lo_us: 200,
                hi_us: 1_200,
            })
            .with_churn(ChurnModel::per_round(0.005, 0.15));
            ae_sharded_driver(config, AeConfig::default(), shards)
        };
        let run = |shards| {
            let mut d = build(shards);
            d.run_until(200_000);
            let estimates: Vec<u64> = d
                .iter_handlers()
                .map(|(_, h)| h.estimate(200_000).unwrap_or(f64::NAN).to_bits())
                .collect();
            let known: Vec<usize> = d.iter_handlers().map(|(_, h)| h.store().known()).collect();
            (d.order_hash(), estimates, known)
        };
        let reference = run(1);
        assert_eq!(reference, run(2), "2 shards diverged");
        assert_eq!(reference, run(8), "8 shards diverged");

        // And without churn the static signal fully reconciles.
        let config = AsyncConfig::new(
            SimConfig::new(48)
                .with_seed(3)
                .with_loss_prob(0.02)
                .with_value_range(10_000.0),
        )
        .with_latency(LatencyModel::Uniform {
            lo_us: 200,
            hi_us: 1_200,
        });
        let mut d = ae_sharded_driver(config, AeConfig::default(), 8);
        d.run_until(200_000);
        let signal = d.handler(NodeId::new(0)).config.signal;
        let truth = signal.true_mean((0..48).map(NodeId::new), 200_000).unwrap();
        for (node, h) in d.iter_handlers() {
            assert_eq!(h.store().known(), 48, "node {node:?} store incomplete");
            let est = h.estimate(200_000).expect("informed");
            assert!(
                ((est - truth) / truth).abs() < 1e-9,
                "node {node:?}: est {est} vs truth {truth}"
            );
        }
    }

    #[test]
    fn exchange_is_loss_tolerant() {
        let mut d = driver(32, 7, 0.3, ChurnModel::none());
        d.run_until(300_000);
        let err = max_error(&d, 300_000);
        assert!(
            err < 1e-9,
            "30% loss only slows reconciliation, err = {err}"
        );
    }

    #[test]
    fn message_sizes_scale_with_content() {
        let n = 16;
        let node = AeNode::new(NodeId::new(0), n, 4, 24, AeConfig::default());
        let empty: Digest = vec![0; n];
        assert_eq!(node.digest_bits(&empty), 8, "empty digest is just a tag");
        let full: Digest = vec![1; n];
        assert_eq!(node.digest_bits(&full), 8 + 16 * (4 + STAMP_BITS));
        let delta = vec![(
            NodeId::new(1),
            Entry {
                stamp: 1,
                value: 2.0,
            },
        )];
        assert_eq!(node.delta_bits(&delta), 8 + (4 + STAMP_BITS + 24));
    }

    #[test]
    fn runs_reproduce_bit_for_bit() {
        let run = |seed| {
            let mut d = driver(40, seed, 0.05, ChurnModel::per_round(0.02, 0.2));
            d.run_until(120_000);
            let stores: Vec<Store> = d.handlers().iter().map(|h| h.store().clone()).collect();
            (
                stores,
                d.metrics().order_hash,
                d.engine().metrics().total_messages(),
                Transport::alive_count(d.engine()),
            )
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9).1, run(10).1);
    }
}
