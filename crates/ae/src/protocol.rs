//! The anti-entropy protocol: periodic digest exchange with delta repair.
//!
//! Every node runs an [`AeNode`] under the event-driven driver. On its
//! anti-entropy tick it picks a uniformly random peer and starts a
//! push-pull exchange. In [`DigestMode::Dense`], that is the classic
//! three-way reconciliation:
//!
//! 1. `A → B` [`AeMsg::SynReq`] — A's digest (per-origin max stamps,
//!    carried sparse: one `(origin, stamp)` pair per known origin).
//! 2. `B → A` [`AeMsg::SynAck`] — the entries B holds that A's digest
//!    lacks, plus B's own digest.
//! 3. `A → B` [`AeMsg::Delta`] — the entries A holds that B's digest
//!    lacks (omitted when B is already current).
//!
//! In [`DigestMode::Merkle`] the opener is a constant-size root hash and
//! the exchange descends a digest tree instead, repairing only the
//! subtrees that differ — O(log n) steady-state bits and no message that
//! grows with n (see [`crate::merkle`] for the descent).
//!
//! Any message may be lost; the exchange is stateless on both sides, so a
//! dropped leg costs nothing but the next tick. On its update tick a node
//! re-stamps its own entry with the current signal value, which is what
//! turns one-shot aggregation into **continuous** aggregation: estimates
//! track the input as it drifts, stale entries age out (see
//! [`Store::mean_fresh`]), and a churned-and-rejoined node — restarted
//! with an empty store — pulls the whole state back within a few ticks.

use crate::merkle::{reconcile, DigestTree};
use crate::signal::SignalModel;
use crate::store::{Entry, SparseDigest, Store, STAMP_BITS};
use gossip_net::{stagger_us, Handler, Mailbox, NodeId, Phase, TimerId};
use gossip_runtime::{AsyncConfig, AsyncEngine, EventDriver, ShardedDriver};
use serde::{Deserialize, Serialize};

/// The anti-entropy tick timer.
pub const TIMER_TICK: TimerId = TimerId(0);
/// The local signal-update timer.
pub const TIMER_UPDATE: TimerId = TimerId(1);

/// How a node summarises its store for reconciliation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum DigestMode {
    /// The classic flat digest: every exchange opens with one
    /// `(origin, stamp)` pair per known origin — O(n) bits per exchange,
    /// and beyond ~5,500 known origins the opener no longer fits one UDP
    /// datagram.
    #[default]
    Dense,
    /// Merkle digest trees (see [`crate::merkle`]): exchanges open with a
    /// constant-size root hash and descend only into mismatching subtrees,
    /// so the steady-state cost is O(log n) and **every** message stays
    /// within a bounded number of
    /// [`merkle_fallback_slots`](AeConfig::merkle_fallback_slots)-sized
    /// ranges — datagram-safe at any n.
    Merkle,
}

/// Parameters of the anti-entropy layer.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct AeConfig {
    /// Anti-entropy exchange interval (µs). Each node starts one exchange
    /// per tick, at a deterministic per-node phase offset (no thundering
    /// herd).
    pub tick_us: u64,
    /// Local signal re-stamp interval (µs); `0` freezes the signal after
    /// the initial stamp.
    pub update_us: u64,
    /// Entries older than this (µs) are excluded from
    /// [`AeNode::estimate`]; `0` disables expiry. Should comfortably
    /// exceed `update_us` plus a few ticks of propagation, or live
    /// origins flicker out of the aggregate between refreshes.
    pub expiry_us: u64,
    /// Peers contacted per tick.
    pub fanout: usize,
    /// The input signal being aggregated.
    pub signal: SignalModel,
    /// Digest representation for exchanges (dense flat digests by
    /// default; [`DigestMode::Merkle`] for O(log n) hash-tree digests).
    pub digest_mode: DigestMode,
    /// In Merkle mode, subtrees of at most this many slots stop the hash
    /// descent and fall back to a dense per-slot range digest (where one
    /// small range is cheaper to ship than to keep probing). Also the
    /// digest tree's leaf span, and the widest range repair a node will
    /// *accept* — so, like the store arity, it must agree across a
    /// cluster (a mismatched peer's range legs are counted as digest
    /// mismatches and dropped). Ignored in dense mode.
    pub merkle_fallback_slots: usize,
}

impl AeConfig {
    /// Set the anti-entropy interval (µs).
    pub fn with_tick_us(mut self, tick_us: u64) -> Self {
        assert!(tick_us >= 1, "tick interval must be at least 1µs");
        self.tick_us = tick_us;
        self
    }

    /// Set the signal-update interval (µs, `0` = static signal).
    pub fn with_update_us(mut self, update_us: u64) -> Self {
        self.update_us = update_us;
        self
    }

    /// Set the estimate freshness window (µs, `0` = never expire).
    pub fn with_expiry_us(mut self, expiry_us: u64) -> Self {
        self.expiry_us = expiry_us;
        self
    }

    /// Set the per-tick fanout.
    pub fn with_fanout(mut self, fanout: usize) -> Self {
        assert!(fanout >= 1, "fanout must be at least 1");
        self.fanout = fanout;
        self
    }

    /// Set the signal model.
    pub fn with_signal(mut self, signal: SignalModel) -> Self {
        self.signal = signal;
        self
    }

    /// Set the digest representation.
    pub fn with_digest_mode(mut self, digest_mode: DigestMode) -> Self {
        self.digest_mode = digest_mode;
        self
    }

    /// Set the Merkle descent's dense-fallback subtree size (slots).
    pub fn with_merkle_fallback_slots(mut self, slots: usize) -> Self {
        assert!(slots >= 1, "fallback must cover at least one slot");
        self.merkle_fallback_slots = slots;
        self
    }
}

impl Default for AeConfig {
    /// 4 ms ticks, 16 ms signal refresh, 80 ms freshness window, fanout 1 —
    /// proportioned like the ciruela emulator's interval gossip (ticks a
    /// few latency medians apart).
    fn default() -> Self {
        AeConfig {
            tick_us: 4_000,
            update_us: 16_000,
            expiry_us: 80_000,
            fanout: 1,
            signal: SignalModel::default(),
            digest_mode: DigestMode::Dense,
            merkle_fallback_slots: 32,
        }
    }
}

/// The reconciliation messages: the classic three-way flat-digest legs
/// plus the Merkle descent legs (see [`crate::merkle`]).
///
/// Every digest-bearing variant carries the sender's store arity `n` and
/// is validated against the receiver's own arity before anything is
/// trusted: `AeMsg` arrives over real sockets, where a short digest is an
/// amplification lever (it makes the responder ship its whole store) and
/// a long or ill-ranged one would index out of bounds. Mismatches are
/// dropped and counted in [`AeNodeStats::digest_mismatches`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum AeMsg {
    /// Flat-digest exchange opener: the initiator's digest, in sparse
    /// `(origin, stamp)` form — exactly the pairs the modelled
    /// `digest_bits` accounting charges for, and exactly what the wire
    /// encodes (absent origins cost nothing in either).
    SynReq {
        /// The initiator's store arity (validated by the receiver).
        n: u32,
        /// `(origin, max stamp)` per origin the initiator holds.
        digest: SparseDigest,
    },
    /// The responder's repair: entries the initiator lacks, plus the
    /// responder's digest so the initiator can repair it in turn.
    SynAck {
        /// The responder's store arity (validated by the receiver).
        n: u32,
        /// Entries the initiator's digest was missing.
        delta: Vec<(NodeId, Entry)>,
        /// `(origin, max stamp)` per origin the responder holds.
        digest: SparseDigest,
    },
    /// The counter-repair leg (flat and Merkle modes both end ranges with
    /// it; only sent when needed).
    Delta {
        /// Entries the peer's digest was missing.
        delta: Vec<(NodeId, Entry)>,
    },
    /// Merkle exchange opener: the initiator's root hash. Identical
    /// replicas answer with silence — this one constant-size message *is*
    /// the steady-state exchange.
    MerkleSyn {
        /// The initiator's store arity (validated by the receiver).
        n: u32,
        /// The initiator's digest-tree root hash.
        root: u64,
    },
    /// One level of the descent: subtree hashes the sender holds for tree
    /// nodes on the mismatch frontier. The receiver compares each against
    /// its own tree and answers mismatches with deeper probes or range
    /// fallbacks.
    MerkleProbe {
        /// The sender's store arity (validated by the receiver).
        n: u32,
        /// `(tree node index, sender's subtree hash)` pairs, at most
        /// [`crate::merkle::PROBE_BATCH`] per message.
        probes: Vec<(u32, u64)>,
    },
    /// Dense fallback for one mismatching leaf range: the sender's
    /// per-slot stamps for `[start, start + stamps.len())`.
    RangeSyn {
        /// The sender's store arity (validated by the receiver).
        n: u32,
        /// First slot of the range.
        start: u32,
        /// Per-slot stamps (`0` = absent), one per slot in the range.
        stamps: Vec<u64>,
    },
    /// The range repair: entries of the range the [`RangeSyn`](Self::RangeSyn)
    /// sender lacked, plus the responder's own stamps for the range so the
    /// initiator can counter-repair with a [`Delta`](Self::Delta).
    RangeAck {
        /// The responder's store arity (validated by the receiver).
        n: u32,
        /// First slot of the range.
        start: u32,
        /// The responder's per-slot stamps for the range.
        stamps: Vec<u64>,
        /// Entries the range-syn's stamps were missing.
        delta: Vec<(NodeId, Entry)>,
    },
}

/// Per-node protocol counters (diagnostics; not part of the wire state).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AeNodeStats {
    /// Anti-entropy ticks fired.
    pub ticks: u64,
    /// Exchanges initiated (`SynReq`s sent).
    pub syn_sent: u64,
    /// Entries adopted from peers' deltas.
    pub entries_adopted: u64,
    /// Local signal re-stamps.
    pub self_updates: u64,
    /// Malformed reconciliation input dropped: digest arity mismatches,
    /// out-of-range or unsorted digest pairs, out-of-range delta origins,
    /// zero stamps, probe indices outside the tree. Hostile or
    /// version-skewed traffic lands here instead of panicking the node or
    /// amplifying its sends.
    pub digest_mismatches: u64,
}

/// One node of the anti-entropy layer. Implements [`Handler`]; host it with
/// [`ae_driver`] (or any [`EventDriver`]).
#[derive(Clone, Debug)]
pub struct AeNode {
    me: NodeId,
    id_bits: u32,
    value_bits: u32,
    config: AeConfig,
    store: Store,
    /// The digest tree, maintained incrementally on every adoption
    /// (`Some` iff `config.digest_mode` is [`DigestMode::Merkle`]).
    tree: Option<DigestTree>,
    /// Diagnostic counters.
    pub stats: AeNodeStats,
    /// Anti-entropy ticks since the last adoption from a peer: the
    /// convergence lag. A node that keeps ticking without adopting is
    /// either converged or partitioned; the staleness histogram below
    /// tells the two apart.
    ticks_since_adopt: u64,
    /// Wall/virtual time of the last adoption (`None` before the first).
    last_adopt_us: Option<u64>,
    /// Distribution of entry staleness (`now - stamp`, µs) over every
    /// known entry, sampled once per tick. Converged stores cluster at
    /// the update cadence; a stale node grows a long tail.
    staleness: gossip_obs::Histogram,
}

impl AeNode {
    /// A node with an empty store (what a fresh boot — or a rejoiner —
    /// knows: nothing). `id_bits`/`value_bits` size the modelled wire
    /// messages.
    pub fn new(me: NodeId, n: usize, id_bits: u32, value_bits: u32, config: AeConfig) -> Self {
        let store = Store::new(n);
        let tree = match config.digest_mode {
            DigestMode::Dense => None,
            DigestMode::Merkle => Some(DigestTree::new(&store, config.merkle_fallback_slots)),
        };
        AeNode {
            me,
            id_bits,
            value_bits,
            config,
            store,
            tree,
            stats: AeNodeStats::default(),
            ticks_since_adopt: 0,
            last_adopt_us: None,
            staleness: gossip_obs::Histogram::new(),
        }
    }

    /// Ticks fired since the last adoption from a peer (the convergence
    /// lag surfaced as `ae_convergence_lag`).
    pub fn convergence_lag(&self) -> u64 {
        self.ticks_since_adopt
    }

    /// The node's replicated store.
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// Inject one entry directly into the store (digest tree kept
    /// current). Bootstrap/test plumbing — a deployment that warm-starts a
    /// node from a checkpoint does exactly this; live reconciliation never
    /// needs it. Panics on an out-of-range origin or a zero stamp.
    pub fn seed_entry(&mut self, origin: NodeId, entry: Entry) {
        assert!(origin.index() < self.store.n(), "origin outside the store");
        assert!(entry.stamp >= 1, "stamp 0 is the digest code for absent");
        if self.store.merge(origin, entry) {
            if let Some(tree) = &mut self.tree {
                tree.refresh(origin, &self.store);
            }
        }
    }

    /// The node's current estimate of the network-wide signal mean: the
    /// mean over fresh entries (see [`AeConfig::expiry_us`]). `None` before
    /// the first stamp — which cannot happen after `on_start` ran.
    pub fn estimate(&self, now_us: u64) -> Option<f64> {
        self.store.mean_fresh(now_us, self.config.expiry_us)
    }

    /// Re-stamp this node's own entry with the signal's current value.
    fn refresh_own(&mut self, now_us: u64) {
        let entry = Entry {
            stamp: now_us.max(1),
            value: self.config.signal.value(self.me, now_us),
        };
        if self.store.merge(self.me, entry) {
            if let Some(tree) = &mut self.tree {
                tree.refresh(self.me, &self.store);
            }
        }
    }

    /// Modelled wire size of a digest: tag byte + arity + one
    /// `(origin, stamp)` pair per pair actually carried — the sparse form
    /// both the model and the real wire use, so the two agree pair for
    /// pair (the loopback suite pins the byte-level counterpart).
    fn digest_bits(&self, digest: &SparseDigest) -> u32 {
        8 + 32 + digest.len() as u32 * (self.id_bits + STAMP_BITS)
    }

    fn delta_bits(&self, delta: &[(NodeId, Entry)]) -> u32 {
        8 + delta.len() as u32 * (self.id_bits + STAMP_BITS + self.value_bits)
    }

    /// Honest modelled bits for any leg of either protocol: every field
    /// the wire encodes is charged — tags and arities at their wire width,
    /// origins at the model's `id_bits`, stamps at [`STAMP_BITS`], values
    /// at `value_bits`, tree-node indices and hashes at their wire widths.
    fn msg_bits(&self, msg: &AeMsg) -> u32 {
        match msg {
            AeMsg::SynReq { digest, .. } => self.digest_bits(digest),
            AeMsg::SynAck { delta, digest, .. } => {
                self.delta_bits(delta) + self.digest_bits(digest)
            }
            AeMsg::Delta { delta } => self.delta_bits(delta),
            AeMsg::MerkleSyn { .. } => 8 + 32 + 64,
            AeMsg::MerkleProbe { probes, .. } => 8 + 32 + probes.len() as u32 * (32 + 64),
            AeMsg::RangeSyn { stamps, .. } => 8 + 32 + 32 + stamps.len() as u32 * STAMP_BITS,
            AeMsg::RangeAck { stamps, delta, .. } => {
                8 + 32
                    + 32
                    + stamps.len() as u32 * STAMP_BITS
                    + delta.len() as u32 * (self.id_bits + STAMP_BITS + self.value_bits)
            }
        }
    }

    /// The exchange opener this node's digest mode sends on its tick.
    fn opener(&self) -> AeMsg {
        let n = self.store.n() as u32;
        match &self.tree {
            None => AeMsg::SynReq {
                n,
                digest: self.store.sparse_digest(),
            },
            Some(tree) => AeMsg::MerkleSyn {
                n,
                root: tree.root(),
            },
        }
    }
}

impl Handler for AeNode {
    type Msg = AeMsg;

    fn on_start(&mut self, mailbox: &mut dyn Mailbox<AeMsg>) {
        self.refresh_own(mailbox.now_us());
        mailbox.set_timer(stagger_us(self.me, self.config.tick_us, 0xA17), TIMER_TICK);
        if self.config.update_us > 0 {
            mailbox.set_timer(
                stagger_us(self.me, self.config.update_us, 0x5D7),
                TIMER_UPDATE,
            );
        }
    }

    fn on_timer(&mut self, timer: TimerId, mailbox: &mut dyn Mailbox<AeMsg>) {
        match timer {
            TIMER_TICK => {
                self.stats.ticks += 1;
                self.ticks_since_adopt += 1;
                let now_us = mailbox.now_us();
                for i in 0..self.store.n() {
                    if let Some(entry) = self.store.get(NodeId::new(i)) {
                        self.staleness.record(now_us.saturating_sub(entry.stamp));
                    }
                }
                // One opener serves every fanout target: the store cannot
                // change between the sends of one tick.
                let opener = self.opener();
                let bits = self.msg_bits(&opener);
                for _ in 0..self.config.fanout {
                    let peer = mailbox.sample_peer();
                    mailbox.send(peer, Phase::AntiEntropy, bits, opener.clone());
                    self.stats.syn_sent += 1;
                }
                mailbox.set_timer(self.config.tick_us, TIMER_TICK);
            }
            TIMER_UPDATE => {
                self.stats.self_updates += 1;
                self.refresh_own(mailbox.now_us());
                mailbox.set_timer(self.config.update_us, TIMER_UPDATE);
            }
            other => debug_assert!(false, "unknown timer {other}"),
        }
    }

    fn on_message(&mut self, from: NodeId, msg: AeMsg, mailbox: &mut dyn Mailbox<AeMsg>) {
        // Validation, merging and reply construction all live in the
        // reconciliation engine (`crate::merkle::reconcile`); this
        // callback is the I/O shim: fold the counters, charge honest
        // modelled bits per reply, ship.
        let handled = reconcile(
            &mut self.store,
            self.tree.as_mut(),
            self.config.merkle_fallback_slots,
            &msg,
        );
        self.stats.entries_adopted += handled.adopted as u64;
        self.stats.digest_mismatches += handled.invalid as u64;
        if handled.adopted > 0 {
            self.ticks_since_adopt = 0;
            self.last_adopt_us = Some(mailbox.now_us());
        }
        for reply in handled.replies {
            let bits = self.msg_bits(&reply);
            mailbox.send(from, Phase::AntiEntropy, bits, reply);
        }
    }

    fn fill_registry(&self, registry: &mut gossip_obs::Registry) {
        registry.add_counter(
            "ae_ticks_total",
            "Anti-entropy ticks fired",
            &[],
            self.stats.ticks,
        );
        registry.add_counter(
            "ae_syn_sent_total",
            "Anti-entropy exchanges initiated",
            &[],
            self.stats.syn_sent,
        );
        registry.add_counter(
            "ae_entries_adopted_total",
            "Entries adopted from peers' deltas",
            &[],
            self.stats.entries_adopted,
        );
        registry.add_counter(
            "ae_self_updates_total",
            "Local signal re-stamps",
            &[],
            self.stats.self_updates,
        );
        registry.add_counter(
            "ae_digest_mismatches_total",
            "Malformed reconciliation input dropped",
            &[],
            self.stats.digest_mismatches,
        );
        registry.add_gauge(
            "ae_store_known",
            "Origins with a known entry, summed over local handlers",
            &[],
            self.store.known() as f64,
        );
        registry.add_gauge(
            "ae_convergence_lag",
            "Anti-entropy ticks since the last adoption from a peer",
            &[],
            self.ticks_since_adopt as f64,
        );
        registry.add_gauge(
            "ae_last_adopt_us",
            "Timestamp of the last adoption from a peer (µs; 0 before the first)",
            &[],
            self.last_adopt_us.unwrap_or(0) as f64,
        );
        registry.merge_histogram(
            "ae_staleness_age_us",
            "Entry staleness (now - stamp, µs) over known entries, sampled per tick",
            &[],
            &self.staleness,
        );
    }

    fn status_lines(&self, now_us: u64) -> Vec<(String, String)> {
        let mut lines = vec![
            (
                "ae.store".to_string(),
                format!("{}/{} origins known", self.store.known(), self.store.n()),
            ),
            (
                "ae.estimate".to_string(),
                match self.estimate(now_us) {
                    Some(e) => format!("{e:.3}"),
                    None => "-".to_string(),
                },
            ),
            (
                "ae.ticks".to_string(),
                format!(
                    "{} ({} exchanges, {} adoptions)",
                    self.stats.ticks, self.stats.syn_sent, self.stats.entries_adopted
                ),
            ),
            (
                "ae.convergence".to_string(),
                match self.last_adopt_us {
                    Some(at) => format!(
                        "lag {} ticks, last adoption {:.1}s ago",
                        self.ticks_since_adopt,
                        now_us.saturating_sub(at) as f64 / 1e6
                    ),
                    None => format!("lag {} ticks, no adoptions yet", self.ticks_since_adopt),
                },
            ),
        ];
        if self.stats.digest_mismatches > 0 {
            lines.push((
                "ae.digest_mismatches".to_string(),
                self.stats.digest_mismatches.to_string(),
            ));
        }
        lines
    }
}

/// Host the anti-entropy layer on an [`AsyncEngine`]: one [`AeNode`] per
/// node, rejoiners restarting empty (the driver's incarnation contract).
/// The driver's churn window is aligned with the anti-entropy tick, so the
/// engine's per-round churn probabilities read as per-*tick* probabilities.
pub fn ae_driver(engine_config: AsyncConfig, ae_config: AeConfig) -> EventDriver<AeNode> {
    let n = engine_config.sim.n;
    let id_bits = engine_config.sim.id_bits();
    let value_bits = engine_config.sim.value_bits();
    EventDriver::new(AsyncEngine::new(engine_config), move |me| {
        AeNode::new(me, n, id_bits, value_bits, ae_config)
    })
    .with_window_us(ae_config.tick_us)
}

/// Host the anti-entropy layer on the **sharded** engine: the node space
/// split into `shards` shards with per-shard event queues and per-node RNG
/// streams (see `gossip_runtime::shard`), so the same [`AeNode`] handler
/// scales to n ≥ 10⁶. The churn window is the anti-entropy tick, exactly
/// like [`ae_driver`]. Runs are shard-count invariant, but *not*
/// bit-comparable with `ae_driver` runs — the two execution models consume
/// different RNG streams.
pub fn ae_sharded_driver(
    engine_config: AsyncConfig,
    ae_config: AeConfig,
    shards: usize,
) -> ShardedDriver<AeNode> {
    let n = engine_config.sim.n;
    let id_bits = engine_config.sim.id_bits();
    let value_bits = engine_config.sim.value_bits();
    ShardedDriver::new(engine_config, shards, move |me| {
        AeNode::new(me, n, id_bits, value_bits, ae_config)
    })
    .with_window_us(ae_config.tick_us)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_net::{SimConfig, Transport};
    use gossip_runtime::{ChurnModel, LatencyModel};

    fn driver(n: usize, seed: u64, loss: f64, churn: ChurnModel) -> EventDriver<AeNode> {
        let config = AsyncConfig::new(
            SimConfig::new(n)
                .with_seed(seed)
                .with_loss_prob(loss)
                .with_value_range(10_000.0),
        )
        .with_latency(LatencyModel::Uniform {
            lo_us: 200,
            hi_us: 1_200,
        })
        .with_churn(churn);
        ae_driver(config, AeConfig::default())
    }

    fn max_error(driver: &EventDriver<AeNode>, at_us: u64) -> f64 {
        let signal = driver.handlers()[0].config.signal;
        let alive: Vec<NodeId> = driver.engine().alive_nodes().collect();
        let truth = signal.true_mean(alive.iter().copied(), at_us).unwrap();
        alive
            .iter()
            .map(|&v| {
                let est = driver.handler(v).estimate(at_us);
                est.map_or(f64::INFINITY, |e| ((e - truth) / truth).abs())
            })
            .fold(0.0, f64::max)
    }

    #[test]
    fn every_node_converges_to_the_true_mean() {
        let mut d = driver(48, 3, 0.02, ChurnModel::none());
        d.run_until(200_000);
        let err = max_error(&d, 200_000);
        assert!(err < 1e-9, "static signal fully reconciles, err = {err}");
        // Everyone knows everyone.
        for h in d.handlers() {
            assert_eq!(h.store().known(), 48);
        }
    }

    #[test]
    fn estimates_track_a_drifting_signal() {
        let n = 32;
        let config = AsyncConfig::new(SimConfig::new(n).with_seed(5).with_value_range(10_000.0))
            .with_latency(LatencyModel::Constant(500));
        let ae = AeConfig::default()
            .with_update_us(8_000)
            .with_signal(SignalModel::uniform(0.0, 10_000.0).with_drift_per_s(5_000.0));
        let mut d = ae_driver(config, ae);
        d.run_until(400_000);
        // Truth moved by 2000 units (0.4 s × 5000/s); estimates follow
        // within the staleness of one update interval of drift.
        let signal = ae.signal;
        let truth = signal.true_mean((0..n).map(NodeId::new), 400_000).unwrap();
        for (i, h) in d.handlers().iter().enumerate() {
            let est = h.estimate(400_000).expect("estimate exists");
            let err = ((est - truth) / truth).abs();
            assert!(err < 0.02, "node {i}: est {est} vs truth {truth}");
        }
    }

    #[test]
    fn a_rejoiner_recovers_from_an_empty_store() {
        // Churn on: nodes crash mid-run and rejoin with nothing, while the
        // protocol keeps running. Recovery is judged against the *reference
        // estimate* — the mean a fully-synced replica (the union of all
        // alive stores) holds — because under ongoing churn the ground
        // truth moves with membership faster than any protocol without a
        // failure detector can track.
        let mut d = driver(64, 11, 0.02, ChurnModel::per_round(0.01, 0.15));
        d.run_until(270_000);
        let now = d.now_us();
        let rejoins = d.metrics().rejoin_log.len();
        assert!(rejoins > 0, "churn produced rejoins");

        // The union of all alive stores: what anti-entropy is converging to
        // (the same reference RecoveryTracker and E17 measure against).
        let reference = crate::recovery::reference_store(&d);
        let expiry = AeConfig::default().expiry_us;
        let truth = reference.mean_fresh(now, expiry).expect("reference known");

        // Every alive node that has had ≥ 15 ticks since its last rejoin
        // (or since boot) must sit within 1% of the reference.
        let grace = 15 * AeConfig::default().tick_us;
        let mut last_rejoin = vec![0u64; 64];
        for &(t, node) in &d.metrics().rejoin_log {
            last_rejoin[node.index()] = t;
        }
        let mut checked = 0;
        for v in d.engine().alive_nodes() {
            if now - last_rejoin[v.index()] < grace {
                continue;
            }
            let est = d.handler(v).estimate(now).expect("settled node informed");
            let err = ((est - truth) / truth).abs();
            assert!(err < 0.01, "node {v:?}: est {est} vs reference {truth}");
            checked += 1;
        }
        assert!(checked > 32, "most of the network is settled ({checked})");
    }

    #[test]
    fn sharded_host_reconciles_and_is_shard_count_invariant() {
        // The anti-entropy handler, unchanged, on the sharded engine: a
        // static signal must still fully reconcile, and the run — order
        // hash, store contents, estimates — must not depend on the shard
        // count.
        let build = |shards| {
            let config = AsyncConfig::new(
                SimConfig::new(48)
                    .with_seed(3)
                    .with_loss_prob(0.02)
                    .with_value_range(10_000.0),
            )
            .with_latency(LatencyModel::Uniform {
                lo_us: 200,
                hi_us: 1_200,
            })
            .with_churn(ChurnModel::per_round(0.005, 0.15));
            ae_sharded_driver(config, AeConfig::default(), shards)
        };
        let run = |shards| {
            let mut d = build(shards);
            d.run_until(200_000);
            let estimates: Vec<u64> = d
                .iter_handlers()
                .map(|(_, h)| h.estimate(200_000).unwrap_or(f64::NAN).to_bits())
                .collect();
            let known: Vec<usize> = d.iter_handlers().map(|(_, h)| h.store().known()).collect();
            (d.order_hash(), estimates, known)
        };
        let reference = run(1);
        assert_eq!(reference, run(2), "2 shards diverged");
        assert_eq!(reference, run(8), "8 shards diverged");

        // And without churn the static signal fully reconciles.
        let config = AsyncConfig::new(
            SimConfig::new(48)
                .with_seed(3)
                .with_loss_prob(0.02)
                .with_value_range(10_000.0),
        )
        .with_latency(LatencyModel::Uniform {
            lo_us: 200,
            hi_us: 1_200,
        });
        let mut d = ae_sharded_driver(config, AeConfig::default(), 8);
        d.run_until(200_000);
        let signal = d.handler(NodeId::new(0)).config.signal;
        let truth = signal.true_mean((0..48).map(NodeId::new), 200_000).unwrap();
        for (node, h) in d.iter_handlers() {
            assert_eq!(h.store().known(), 48, "node {node:?} store incomplete");
            let est = h.estimate(200_000).expect("informed");
            assert!(
                ((est - truth) / truth).abs() < 1e-9,
                "node {node:?}: est {est} vs truth {truth}"
            );
        }
    }

    #[test]
    fn exchange_is_loss_tolerant() {
        let mut d = driver(32, 7, 0.3, ChurnModel::none());
        d.run_until(300_000);
        let err = max_error(&d, 300_000);
        assert!(
            err < 1e-9,
            "30% loss only slows reconciliation, err = {err}"
        );
    }

    #[test]
    fn message_sizes_scale_with_content() {
        let n = 16;
        let node = AeNode::new(NodeId::new(0), n, 4, 24, AeConfig::default());
        let empty: SparseDigest = Vec::new();
        assert_eq!(
            node.digest_bits(&empty),
            8 + 32,
            "empty digest is tag + arity"
        );
        let full: SparseDigest = (0..n).map(|i| (NodeId::new(i), 1)).collect();
        assert_eq!(node.digest_bits(&full), 8 + 32 + 16 * (4 + STAMP_BITS));
        let delta = vec![(
            NodeId::new(1),
            Entry {
                stamp: 1,
                value: 2.0,
            },
        )];
        assert_eq!(node.delta_bits(&delta), 8 + (4 + STAMP_BITS + 24));
        // The Merkle legs: constant opener, per-pair probes, per-slot
        // ranges — none of them a function of n.
        assert_eq!(node.msg_bits(&AeMsg::MerkleSyn { n: 16, root: 0 }), 104);
        assert_eq!(
            node.msg_bits(&AeMsg::MerkleProbe {
                n: 16,
                probes: vec![(1, 2), (2, 3)],
            }),
            8 + 32 + 2 * 96
        );
        assert_eq!(
            node.msg_bits(&AeMsg::RangeSyn {
                n: 16,
                start: 0,
                stamps: vec![1, 0, 2],
            }),
            8 + 64 + 3 * STAMP_BITS
        );
        assert_eq!(
            node.msg_bits(&AeMsg::RangeAck {
                n: 16,
                start: 0,
                stamps: vec![1, 0, 2],
                delta: delta.clone(),
            }),
            8 + 64 + 3 * STAMP_BITS + (4 + STAMP_BITS + 24)
        );
    }

    #[test]
    fn merkle_mode_reconciles_and_matches_dense_results() {
        // The same configuration in both digest modes, with a *static*
        // signal (the two modes send different message counts, so the
        // engine's loss/latency draws diverge — only the quiesced fixed
        // point is mode-independent): both must fully reconcile to
        // identical stores, boot stamps and all.
        let build = |mode| {
            let config = AsyncConfig::new(
                SimConfig::new(48)
                    .with_seed(3)
                    .with_loss_prob(0.02)
                    .with_value_range(10_000.0),
            )
            .with_latency(LatencyModel::Uniform {
                lo_us: 200,
                hi_us: 1_200,
            });
            ae_driver(
                config,
                AeConfig::default()
                    .with_update_us(0)
                    .with_digest_mode(mode)
                    .with_merkle_fallback_slots(8),
            )
        };
        let run = |mode| {
            let mut d = build(mode);
            d.run_until(200_000);
            let stores: Vec<Store> = d.handlers().iter().map(|h| h.store().clone()).collect();
            let mismatches: u64 = d.handlers().iter().map(|h| h.stats.digest_mismatches).sum();
            let bits = d.engine().metrics().total_bits();
            (stores, mismatches, bits)
        };
        let (dense_stores, dense_mismatches, dense_bits) = run(DigestMode::Dense);
        let (merkle_stores, merkle_mismatches, merkle_bits) = run(DigestMode::Merkle);
        for s in &merkle_stores {
            assert_eq!(s.known(), 48, "merkle mode fully reconciles");
        }
        assert_eq!(
            dense_stores, merkle_stores,
            "digest mode changes cost, not outcome"
        );
        assert_eq!(dense_mismatches, 0);
        assert_eq!(merkle_mismatches, 0, "honest traffic is never dropped");
        assert!(
            merkle_bits < dense_bits,
            "hash descent beats flat digests even at n = 48 \
             (merkle {merkle_bits} vs dense {dense_bits} bits)"
        );
    }

    #[test]
    fn merkle_mode_rejoiners_recover_from_an_empty_store() {
        // The E17 churn scenario with hash-tree digests: rejoiners restart
        // with an empty store *and a blank tree* and must still pull the
        // state back (the factory rebuilds both — the driver's
        // fresh-incarnation contract).
        let config = AsyncConfig::new(
            SimConfig::new(64)
                .with_seed(11)
                .with_loss_prob(0.02)
                .with_value_range(10_000.0),
        )
        .with_latency(LatencyModel::Uniform {
            lo_us: 200,
            hi_us: 1_200,
        })
        .with_churn(ChurnModel::per_round(0.01, 0.15));
        let ae = AeConfig::default()
            .with_digest_mode(DigestMode::Merkle)
            .with_merkle_fallback_slots(8);
        let mut d = ae_driver(config, ae);
        d.run_until(270_000);
        let now = d.now_us();
        assert!(!d.metrics().rejoin_log.is_empty(), "churn produced rejoins");
        let reference = crate::recovery::reference_store(&d);
        let truth = reference.mean_fresh(now, ae.expiry_us).expect("known");
        let grace = 15 * ae.tick_us;
        let mut last_rejoin = vec![0u64; 64];
        for &(t, node) in &d.metrics().rejoin_log {
            last_rejoin[node.index()] = t;
        }
        let mut checked = 0;
        for v in d.engine().alive_nodes() {
            if now - last_rejoin[v.index()] < grace {
                continue;
            }
            let est = d.handler(v).estimate(now).expect("settled node informed");
            assert!(
                ((est - truth) / truth).abs() < 0.01,
                "node {v:?}: est {est} vs reference {truth}"
            );
            checked += 1;
        }
        assert!(checked > 32, "most of the network is settled ({checked})");
    }

    #[test]
    fn runs_reproduce_bit_for_bit() {
        let run = |seed| {
            let mut d = driver(40, seed, 0.05, ChurnModel::per_round(0.02, 0.2));
            d.run_until(120_000);
            let stores: Vec<Store> = d.handlers().iter().map(|h| h.store().clone()).collect();
            (
                stores,
                d.metrics().order_hash,
                d.engine().metrics().total_messages(),
                Transport::alive_count(d.engine()),
            )
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9).1, run(10).1);
    }
}
