//! Rejoin-recovery measurement: how many anti-entropy ticks a rejoiner
//! needs before its estimate is usable again.
//!
//! A rejoiner restarts with an empty store, so its estimate starts as its
//! own value alone and converges as reconciliation pulls state back in.
//! [`RecoveryTracker`] watches a driver at a fixed sampling cadence (one
//! call to [`RecoveryTracker::observe`] per anti-entropy tick) and records,
//! for every rejoin the churn model produced, the tick count until the
//! node's estimate came within a relative threshold of the **reference
//! estimate** — the mean a fully-synced replica holds (the union of all
//! alive stores). Recovery is judged against the reference rather than the
//! moving ground truth because membership detection is not anti-entropy's
//! job: without a failure detector *no* replica can track who is alive, but
//! every replica can and must converge to what the network collectively
//! knows. Ground-truth staleness is reported separately by the E17
//! experiment.

use crate::protocol::AeNode;
use crate::store::Store;
use gossip_net::{NodeId, Transport};
use gossip_runtime::EventDriver;

/// The claimed rejoin-recovery bound, in anti-entropy ticks: the E17
/// acceptance criterion asserts every measurable rejoin re-enters the
/// threshold band within this many ticks, and the experiment counts a
/// rejoin still unresolved after this many observed ticks against the
/// protocol. One constant so the asserted bound and the published
/// "recovered" denominator cannot drift apart. Empirically recovery takes
/// ~2.5 ticks; the headroom absorbs unlucky peer choices and message loss.
pub const RECOVERY_BOUND_TICKS: u64 = 25;

/// What became of one tracked rejoin.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecoveryOutcome {
    /// The estimate entered the threshold band after this many observed
    /// ticks.
    Recovered {
        /// Ticks from the rejoin to the first in-band sample.
        ticks: u64,
    },
    /// The node crashed again before recovering (unmeasurable).
    CrashedAgain {
        /// Ticks observed before the crash.
        after_ticks: u64,
    },
    /// The run ended first (unmeasurable if short, damning if long).
    Unresolved {
        /// Ticks observed until the end of the run.
        ticks_observed: u64,
    },
}

/// One rejoin and its outcome.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RecoveryRecord {
    /// The node that rejoined.
    pub node: NodeId,
    /// The boundary instant of the rejoin (µs).
    pub rejoined_at_us: u64,
    /// How the recovery went.
    pub outcome: RecoveryOutcome,
}

/// The fully-synced reference: the union (CRDT join) of every alive
/// node's store. One `O(n)` slot scan per alive node — `O(n · alive)` per
/// call, which is the inherent cost of an exact union; the tracker only
/// pays it on ticks with a recovery in flight.
pub fn reference_store(driver: &EventDriver<AeNode>) -> Store {
    let n = driver.engine().config().n;
    let mut reference = Store::new(n);
    for v in driver.engine().alive_nodes() {
        reference.merge_from(driver.handler(v).store());
    }
    reference
}

/// Watches rejoins across sampling points. See the module docs.
#[derive(Clone, Debug)]
pub struct RecoveryTracker {
    threshold: f64,
    expiry_us: u64,
    /// Rejoins consumed from the driver's log so far.
    seen_rejoins: usize,
    /// In-flight recoveries: `(node, rejoined_at, ticks_observed)`.
    pending: Vec<(NodeId, u64, u64)>,
    records: Vec<RecoveryRecord>,
}

impl RecoveryTracker {
    /// Track recoveries to within `threshold` relative error of the
    /// reference estimate, using `expiry_us` freshness (match the
    /// protocol's [`AeConfig::expiry_us`](crate::AeConfig::expiry_us)).
    pub fn new(threshold: f64, expiry_us: u64) -> Self {
        assert!(threshold > 0.0, "threshold must be positive");
        RecoveryTracker {
            threshold,
            expiry_us,
            seen_rejoins: 0,
            pending: Vec::new(),
            records: Vec::new(),
        }
    }

    /// Take one sample; call at every anti-entropy tick. Consumes new
    /// rejoins from the driver's log, ages the pending ones, and settles
    /// those that recovered or crashed again.
    pub fn observe(&mut self, driver: &EventDriver<AeNode>) {
        let now = driver.now_us();
        let log = &driver.metrics().rejoin_log;
        while self.seen_rejoins < log.len() {
            let (at, node) = log[self.seen_rejoins];
            self.seen_rejoins += 1;
            // A re-rejoin of a node we were tracking: the earlier attempt
            // ended in a crash (settle it), and tracking restarts.
            if let Some(i) = self.pending.iter().position(|&(v, _, _)| v == node) {
                let (_, rejoined_at, ticks) = self.pending.swap_remove(i);
                self.records.push(RecoveryRecord {
                    node,
                    rejoined_at_us: rejoined_at,
                    outcome: RecoveryOutcome::CrashedAgain { after_ticks: ticks },
                });
            }
            self.pending.push((node, at, 0));
        }
        if self.pending.is_empty() {
            return;
        }
        let reference = reference_store(driver).mean_fresh(now, self.expiry_us);
        let mut i = 0;
        while i < self.pending.len() {
            let (node, rejoined_at, ref mut ticks) = self.pending[i];
            if !driver.is_alive(node) {
                let after_ticks = *ticks;
                self.pending.swap_remove(i);
                self.records.push(RecoveryRecord {
                    node,
                    rejoined_at_us: rejoined_at,
                    outcome: RecoveryOutcome::CrashedAgain { after_ticks },
                });
                continue;
            }
            *ticks += 1;
            let recovered = match (driver.handler(node).estimate(now), reference) {
                (Some(est), Some(truth)) if truth != 0.0 => {
                    ((est - truth) / truth).abs() <= self.threshold
                }
                (Some(est), Some(truth)) => (est - truth).abs() <= self.threshold,
                _ => false,
            };
            if recovered {
                let ticks = *ticks;
                self.pending.swap_remove(i);
                self.records.push(RecoveryRecord {
                    node,
                    rejoined_at_us: rejoined_at,
                    outcome: RecoveryOutcome::Recovered { ticks },
                });
                continue;
            }
            i += 1;
        }
    }

    /// End the observation: unresolved rejoins are settled as such, and the
    /// full record list is returned in settlement order.
    pub fn finish(mut self) -> Vec<RecoveryRecord> {
        for (node, rejoined_at, ticks) in self.pending.drain(..) {
            self.records.push(RecoveryRecord {
                node,
                rejoined_at_us: rejoined_at,
                outcome: RecoveryOutcome::Unresolved {
                    ticks_observed: ticks,
                },
            });
        }
        self.records
    }

    /// Records settled so far (recovered or crashed again).
    pub fn records(&self) -> &[RecoveryRecord] {
        &self.records
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{ae_driver, AeConfig};
    use gossip_net::SimConfig;
    use gossip_runtime::{AsyncConfig, ChurnModel, LatencyModel};

    #[test]
    fn tracker_settles_every_rejoin_exactly_once() {
        let config = AsyncConfig::new(SimConfig::new(48).with_seed(13).with_loss_prob(0.02))
            .with_latency(LatencyModel::Uniform {
                lo_us: 200,
                hi_us: 1_200,
            })
            .with_churn(ChurnModel::per_round(0.02, 0.25).with_min_alive(24));
        let ae = AeConfig::default();
        let mut driver = ae_driver(config, ae);
        let mut tracker = RecoveryTracker::new(0.01, ae.expiry_us);
        for k in 1..=80 {
            driver.run_until(k * ae.tick_us);
            tracker.observe(&driver);
        }
        let total_rejoins = driver.metrics().rejoin_log.len();
        assert!(total_rejoins > 0, "churn produced rejoins");
        let records = tracker.finish();
        assert_eq!(records.len(), total_rejoins, "every rejoin settled once");
        let recovered: Vec<u64> = records
            .iter()
            .filter_map(|r| match r.outcome {
                RecoveryOutcome::Recovered { ticks } => Some(ticks),
                _ => None,
            })
            .collect();
        assert!(!recovered.is_empty(), "some rejoiners had time to recover");
        assert!(
            recovered.iter().all(|&t| t >= 1),
            "recovery takes at least one observed tick"
        );
    }

    #[test]
    fn reference_store_is_the_union_of_alive_stores() {
        let config = AsyncConfig::new(SimConfig::new(16).with_seed(3));
        // Freeze the signal so the state can quiesce: with updates on, the
        // newest stamps are always still in flight somewhere and no store
        // ever exactly equals the union.
        let ae = AeConfig::default().with_update_us(0);
        let mut driver = ae_driver(config, ae);
        driver.run_until(60_000);
        let reference = reference_store(&driver);
        // Fully reconciled network: every alive store equals the union.
        for v in driver.engine().alive_nodes() {
            assert_eq!(driver.handler(v).store(), &reference);
        }
        assert_eq!(reference.known(), 16);
    }
}
