//! Merkle-style digest trees: O(log n) anti-entropy digests.
//!
//! The dense digest exchange is O(n) stamps per exchange *even when nothing
//! changed* — at n ≥ ~5,500 a digest no longer fits one UDP datagram, so
//! the socket host cannot run anti-entropy at the scales the sharded
//! engine simulates. This module replaces the flat digest with a hash tree
//! and a multi-round **descent**:
//!
//! 1. **Root exchange** — the initiator sends [`AeMsg::MerkleSyn`]: its
//!    tree's root hash (plus the store arity, validated like every other
//!    digest). Identical replicas answer with silence: the steady-state
//!    exchange is one constant-size datagram.
//! 2. **Subtree probes** — on a root mismatch the responder answers with
//!    [`AeMsg::MerkleProbe`]: the hashes of the mismatching node's two
//!    children. The receiver compares each against its own tree and
//!    descends another level for the ones that differ. Each probe leg
//!    narrows the difference by one level, so a single stale entry is
//!    located in ⌈log₂(n / fallback)⌉ legs of ~2 hashes each.
//! 3. **Leaf-range fallback** — once a mismatching subtree spans at most
//!    [`AeConfig::merkle_fallback_slots`](crate::AeConfig) slots, hashes
//!    stop paying for themselves and the classic dense exchange finishes
//!    the job, restricted to that range: [`AeMsg::RangeSyn`] carries the
//!    range's per-slot stamps, [`AeMsg::RangeAck`] answers with the
//!    entries the sender lacked plus the responder's own range stamps, and
//!    the ordinary [`AeMsg::Delta`] third leg repairs the reverse
//!    direction. Because every repair travels in fallback-sized ranges,
//!    **no message grows with n** — a rejoiner's full re-sync crosses the
//!    wire as many datagram-sized range repairs instead of one impossible
//!    65 KB+ delta.
//!
//! Every leg is stateless, so the protocol inherits the dense exchange's
//! loss story: a dropped leg costs nothing but the next tick's root
//! exchange. Hashes are 64-bit [`mix64`] folds — collision-*resistant*
//! against drift and churn, not against an adversary crafting preimages
//! (the socket host is simulation-grade and unauthenticated either way;
//! see `DESIGN.md` §6).
//!
//! [`DigestTree`] is maintained **incrementally**: adopting an entry
//! recomputes one leaf (a `fallback_slots`-wide scan) and its root path —
//! O(span + log n) per adoption, not O(n) per exchange.

use crate::protocol::AeMsg;
use crate::store::{sparse_digest_well_formed, Entry, Store};
use gossip_net::{mix64, NodeId};

/// Hash of a subtree that covers no slots (padding beyond `n` in the
/// power-of-two leaf layer). Constant on both sides, so padding never
/// triggers a descent.
const EMPTY_HASH: u64 = 0;

/// Seed of a leaf-hash fold (distinct from [`EMPTY_HASH`] so "leaf with no
/// entries" and "padding" still compare equal only to themselves).
const LEAF_SEED: u64 = 0x9E37_79B9_7F4A_7C15;

/// Largest number of `(node index, hash)` pairs one [`AeMsg::MerkleProbe`]
/// carries; wider probe fronts split across messages so no descent leg can
/// outgrow a datagram (512 × 12 B ≈ 6 KB of payload).
pub const PROBE_BATCH: usize = 512;

/// An incrementally-maintained hash tree over a [`Store`]'s slots.
///
/// Leaves cover `leaf_span` consecutive slots each; the leaf layer is
/// padded to a power of two (padding hashes to a constant) and parents
/// combine child hashes position-sensitively. Equal stamp vectors ⇒ equal
/// trees, and — modulo 64-bit hash collisions — differing stamp vectors
/// differ along every root-to-difference path, which is what the descent
/// walks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DigestTree {
    n: usize,
    leaf_span: usize,
    /// Number of leaves (power of two ≥ ⌈n / leaf_span⌉).
    leaves: usize,
    /// Implicit binary heap: root at 0, children of `i` at `2i+1`, `2i+2`,
    /// leaves at `leaves-1 ..`.
    hashes: Vec<u64>,
}

impl DigestTree {
    /// Build the tree for `store`, with leaves of `leaf_span` slots.
    pub fn new(store: &Store, leaf_span: usize) -> Self {
        assert!(leaf_span >= 1, "leaf span must be at least 1 slot");
        let n = store.n();
        let leaves = n.div_ceil(leaf_span).next_power_of_two().max(1);
        let mut tree = DigestTree {
            n,
            leaf_span,
            leaves,
            hashes: vec![EMPTY_HASH; 2 * leaves - 1],
        };
        tree.rebuild(store);
        tree
    }

    /// Number of tree nodes (what a probe's node index must stay below).
    pub fn len(&self) -> usize {
        self.hashes.len()
    }

    /// Whether the tree has no nodes (never — a tree always has a root).
    pub fn is_empty(&self) -> bool {
        self.hashes.is_empty()
    }

    /// The root hash — the whole store's digest, 8 bytes.
    pub fn root(&self) -> u64 {
        self.hashes[0]
    }

    /// The hash of tree node `idx`.
    pub fn hash(&self, idx: usize) -> u64 {
        self.hashes[idx]
    }

    /// Whether `idx` is in the leaf layer.
    pub fn is_leaf(&self, idx: usize) -> bool {
        idx >= self.leaves - 1
    }

    /// The slot range `(start, len)` tree node `idx` covers, clamped to
    /// the store: padding subtrees report `len == 0`.
    pub fn slot_range(&self, idx: usize) -> (usize, usize) {
        debug_assert!(idx < self.hashes.len());
        let (mut first, mut last) = (idx, idx);
        while first < self.leaves - 1 {
            first = 2 * first + 1;
            last = 2 * last + 2;
        }
        let start = (first - (self.leaves - 1)) * self.leaf_span;
        let end = ((last - (self.leaves - 1)) + 1) * self.leaf_span;
        let start = start.min(self.n);
        (start, end.min(self.n) - start)
    }

    /// Recompute every hash from `store` (initialisation, bulk loads).
    pub fn rebuild(&mut self, store: &Store) {
        debug_assert_eq!(store.n(), self.n, "tree built over a different arity");
        for leaf in 0..self.leaves {
            let idx = self.leaves - 1 + leaf;
            self.hashes[idx] = self.leaf_hash(leaf, store);
        }
        for idx in (0..self.leaves - 1).rev() {
            self.hashes[idx] = combine(self.hashes[2 * idx + 1], self.hashes[2 * idx + 2]);
        }
    }

    /// Re-hash the leaf covering `origin` and its root path — call after
    /// every adopted entry. O(leaf_span + log n).
    pub fn refresh(&mut self, origin: NodeId, store: &Store) {
        debug_assert_eq!(store.n(), self.n, "tree built over a different arity");
        let leaf = origin.index() / self.leaf_span;
        let mut idx = self.leaves - 1 + leaf;
        self.hashes[idx] = self.leaf_hash(leaf, store);
        while idx > 0 {
            idx = (idx - 1) / 2;
            self.hashes[idx] = combine(self.hashes[2 * idx + 1], self.hashes[2 * idx + 2]);
        }
    }

    /// The fold over one leaf's slots: position-implicit (every slot in
    /// the span contributes, absent as 0), so two replicas' leaves hash
    /// equal iff their stamp vectors for the span are equal. Allocation-
    /// free — this runs on every adoption's tree refresh.
    fn leaf_hash(&self, leaf: usize, store: &Store) -> u64 {
        let start = leaf * self.leaf_span;
        if start >= self.n {
            return EMPTY_HASH;
        }
        let len = self.leaf_span.min(self.n - start);
        let mut h = LEAF_SEED;
        for slot in start..start + len {
            let stamp = store.get(NodeId::new(slot)).map_or(0, |e| e.stamp);
            h = mix64(h ^ stamp);
        }
        h
    }
}

/// Position-sensitive parent hash (swapped children hash differently).
fn combine(left: u64, right: u64) -> u64 {
    mix64(left ^ mix64(right ^ LEAF_SEED))
}

/// What one delivered message did to the replica: entries adopted,
/// malformed input dropped, and the replies to send back. Returned by
/// [`reconcile`]; [`AeNode`](crate::AeNode) folds the counts into its
/// stats and ships the replies through its mailbox.
#[derive(Debug, Default)]
pub struct Handled {
    /// Entries merged into the store (they beat what was held).
    pub adopted: usize,
    /// Malformed pieces dropped: digest arity mismatches, out-of-range or
    /// unsorted digest pairs, out-of-range delta origins, zero stamps,
    /// probe indices outside the tree. Counted, never fatal — this is the
    /// untrusted-socket contract.
    pub invalid: usize,
    /// Messages to send back to the peer, in deterministic order.
    pub replies: Vec<AeMsg>,
}

/// The reconciliation engine: apply one received [`AeMsg`] to a replica
/// (store + optional digest tree) and produce the replies.
///
/// This is the whole protocol minus the I/O: `AeNode::on_message` calls it
/// with its own store and ships `replies` through the mailbox, and the
/// property suites call it directly to pump two bare replicas against each
/// other under arbitrary delivery orders. `tree` is `Some` in Merkle mode
/// (`fallback_slots` bounds where the descent hands over to dense ranges)
/// and `None` in dense mode — a dense replica answers Merkle openers with
/// a classic [`AeMsg::SynReq`], so mixed-mode clusters still converge.
///
/// All input is treated as hostile: arity, ordering, ranges and indices
/// are validated before use, and malformed pieces are dropped and counted
/// in [`Handled::invalid`].
pub fn reconcile(
    store: &mut Store,
    mut tree: Option<&mut DigestTree>,
    fallback_slots: usize,
    msg: &AeMsg,
) -> Handled {
    let n = store.n();
    let mut out = Handled::default();
    match msg {
        AeMsg::SynReq { n: their_n, digest } => {
            if *their_n as usize != n || !sparse_digest_well_formed(n, digest) {
                out.invalid += 1;
                return out;
            }
            out.replies.push(AeMsg::SynAck {
                n: *their_n,
                delta: store.delta_for_sparse(digest),
                digest: store.sparse_digest(),
            });
        }
        AeMsg::SynAck {
            n: their_n,
            delta,
            digest,
        } => {
            if *their_n as usize != n || !sparse_digest_well_formed(n, digest) {
                out.invalid += 1;
                return out;
            }
            adopt(store, &mut tree, delta, &mut out);
            let back = store.delta_for_sparse(digest);
            if !back.is_empty() {
                out.replies.push(AeMsg::Delta { delta: back });
            }
        }
        AeMsg::Delta { delta } => {
            adopt(store, &mut tree, delta, &mut out);
        }
        AeMsg::MerkleSyn { n: their_n, root } => {
            if *their_n as usize != n {
                out.invalid += 1;
                return out;
            }
            match tree {
                // Dense replica: answer with a classic opener so the
                // Merkle peer repairs it the way it repairs anyone.
                None => out.replies.push(AeMsg::SynReq {
                    n: n as u32,
                    digest: store.sparse_digest(),
                }),
                Some(tree) => {
                    if *root != tree.root() {
                        descend(tree, store, 0, fallback_slots, &mut out.replies);
                        flush_probes(n, &mut out.replies);
                    }
                }
            }
        }
        AeMsg::MerkleProbe { n: their_n, probes } => {
            // Honest probe fronts are strictly ascending (the descent
            // emits children in index order); a repeated or unsorted
            // front is hostile — without this check, one message packing
            // the same mismatching index PROBE_BATCH times would draw
            // PROBE_BATCH range replies (send amplification).
            let ascending = probes.windows(2).all(|w| w[0].0 < w[1].0);
            if *their_n as usize != n || !ascending {
                out.invalid += 1;
                return out;
            }
            let Some(tree) = tree else {
                out.replies.push(AeMsg::SynReq {
                    n: n as u32,
                    digest: store.sparse_digest(),
                });
                return out;
            };
            for &(idx, their_hash) in probes {
                let idx = idx as usize;
                if idx >= tree.len() {
                    out.invalid += 1;
                    continue;
                }
                if tree.hash(idx) != their_hash {
                    descend(tree, store, idx, fallback_slots, &mut out.replies);
                }
            }
            flush_probes(n, &mut out.replies);
        }
        AeMsg::RangeSyn {
            n: their_n,
            start,
            stamps,
        } => {
            if !range_well_formed(n, *their_n, *start, stamps.len(), fallback_slots) {
                out.invalid += 1;
                return out;
            }
            let start = *start as usize;
            out.replies.push(AeMsg::RangeAck {
                n: *their_n,
                start: start as u32,
                delta: store.delta_for_range(start, stamps),
                stamps: store.range_digest(start, stamps.len()),
            });
        }
        AeMsg::RangeAck {
            n: their_n,
            start,
            stamps,
            delta,
        } => {
            if !range_well_formed(n, *their_n, *start, stamps.len(), fallback_slots) {
                out.invalid += 1;
                return out;
            }
            adopt(store, &mut tree, delta, &mut out);
            let back = store.delta_for_range(*start as usize, stamps);
            if !back.is_empty() {
                out.replies.push(AeMsg::Delta { delta: back });
            }
        }
    }
    out
}

/// Merge a delta, keeping the digest tree current and dropping (counting)
/// hostile pairs: origins outside the store and the stamp-0 "absent" code
/// — which, off a socket, would otherwise index out of bounds or trip the
/// store's stamp invariant.
fn adopt(
    store: &mut Store,
    tree: &mut Option<&mut DigestTree>,
    delta: &[(NodeId, Entry)],
    out: &mut Handled,
) {
    for &(origin, entry) in delta {
        if origin.index() >= store.n() || entry.stamp == 0 {
            out.invalid += 1;
            continue;
        }
        if store.merge(origin, entry) {
            out.adopted += 1;
            if let Some(tree) = tree.as_deref_mut() {
                tree.refresh(origin, store);
            }
        }
    }
}

/// One step of the descent below a node whose hash mismatched: small
/// subtrees fall back to a dense range digest, larger ones probe their
/// children. Probe pairs are pushed as placeholder single-pair messages;
/// [`flush_probes`] re-batches them.
fn descend(
    tree: &DigestTree,
    store: &Store,
    idx: usize,
    fallback_slots: usize,
    replies: &mut Vec<AeMsg>,
) {
    let (start, len) = tree.slot_range(idx);
    if len == 0 {
        return; // padding beyond n — nothing to reconcile
    }
    if tree.is_leaf(idx) || len <= fallback_slots {
        replies.push(AeMsg::RangeSyn {
            n: tree.n as u32,
            start: start as u32,
            stamps: store.range_digest(start, len),
        });
    } else {
        let (l, r) = (2 * idx + 1, 2 * idx + 2);
        replies.push(AeMsg::MerkleProbe {
            n: tree.n as u32,
            probes: vec![(l as u32, tree.hash(l)), (r as u32, tree.hash(r))],
        });
    }
}

/// Coalesce the probe pairs [`descend`] produced into [`PROBE_BATCH`]-sized
/// [`AeMsg::MerkleProbe`] messages, preserving order; non-probe replies
/// pass through unchanged.
fn flush_probes(n: usize, replies: &mut Vec<AeMsg>) {
    let mut pairs: Vec<(u32, u64)> = Vec::new();
    let mut rest: Vec<AeMsg> = Vec::new();
    for reply in replies.drain(..) {
        match reply {
            AeMsg::MerkleProbe { probes, .. } => pairs.extend(probes),
            other => rest.push(other),
        }
    }
    for chunk in pairs.chunks(PROBE_BATCH) {
        rest.push(AeMsg::MerkleProbe {
            n: n as u32,
            probes: chunk.to_vec(),
        });
    }
    *replies = rest;
}

/// Validate a range message: matching arity, a range that lies inside the
/// store, and a length within the fallback span — honest senders never
/// produce empty ranges or ranges wider than their fallback (which must
/// therefore agree across a cluster, like the store arity); a hostile
/// store-wide range would otherwise draw a reply far beyond one datagram.
fn range_well_formed(
    n: usize,
    their_n: u32,
    start: u32,
    len: usize,
    fallback_slots: usize,
) -> bool {
    their_n as usize == n
        && len > 0
        && len <= fallback_slots
        && (start as usize)
            .checked_add(len)
            .is_some_and(|end| end <= n)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(stamp: u64, value: f64) -> Entry {
        Entry { stamp, value }
    }

    fn store_with(n: usize, entries: &[(usize, u64)]) -> Store {
        let mut s = Store::new(n);
        for &(origin, stamp) in entries {
            s.merge(NodeId::new(origin), e(stamp, stamp as f64));
        }
        s
    }

    #[test]
    fn tree_shape_covers_the_store_exactly() {
        let store = Store::new(100);
        let tree = DigestTree::new(&store, 8);
        // ⌈100/8⌉ = 13 leaves, padded to 16.
        assert_eq!(tree.leaves, 16);
        assert_eq!(tree.len(), 31);
        assert!(!tree.is_empty());
        assert_eq!(tree.slot_range(0), (0, 100));
        // Leaf layer: spans of 8, clamped at the end, padding empty.
        assert_eq!(tree.slot_range(15), (0, 8));
        assert_eq!(tree.slot_range(15 + 12), (96, 4));
        assert_eq!(tree.slot_range(15 + 13), (100, 0));
        assert_eq!(tree.slot_range(30), (100, 0));
        // Internal node: the right child of the root covers slots 64..100.
        assert_eq!(tree.slot_range(2), (64, 36));
        // Every leaf is a leaf, internals are not.
        assert!(tree.is_leaf(15));
        assert!(!tree.is_leaf(14));
    }

    #[test]
    fn tiny_stores_collapse_to_a_single_leaf() {
        let store = store_with(3, &[(1, 5)]);
        let tree = DigestTree::new(&store, 8);
        assert_eq!(tree.leaves, 1);
        assert_eq!(tree.len(), 1);
        assert!(tree.is_leaf(0));
        assert_eq!(tree.slot_range(0), (0, 3));
    }

    #[test]
    fn equal_stores_hash_equal_and_refresh_matches_rebuild() {
        let mut a = store_with(100, &[(3, 7), (40, 2), (99, 9)]);
        let b = store_with(100, &[(3, 7), (40, 2), (99, 9)]);
        let mut ta = DigestTree::new(&a, 8);
        let tb = DigestTree::new(&b, 8);
        assert_eq!(ta, tb);
        assert_eq!(ta.root(), tb.root());

        // Incremental refresh after a merge equals a full rebuild.
        a.merge(NodeId::new(40), e(11, 1.0));
        ta.refresh(NodeId::new(40), &a);
        assert_eq!(ta, DigestTree::new(&a, 8));
        assert_ne!(ta.root(), tb.root(), "one changed stamp changes the root");
    }

    #[test]
    fn sibling_order_matters() {
        // The same entry in mirrored positions must not produce the same
        // root: combine() is position-sensitive.
        let left = store_with(16, &[(0, 5)]);
        let right = store_with(16, &[(8, 5)]);
        assert_ne!(
            DigestTree::new(&left, 8).root(),
            DigestTree::new(&right, 8).root()
        );
    }

    /// Pump messages between two replicas until quiescent, in FIFO order.
    fn pump(a: &mut (Store, DigestTree), b: &mut (Store, DigestTree), fallback: usize) -> usize {
        let mut queue: Vec<(bool, AeMsg)> = vec![(
            false,
            AeMsg::MerkleSyn {
                n: a.0.n() as u32,
                root: a.1.root(),
            },
        )];
        let mut legs = 0;
        while let Some((to_a, msg)) = queue.pop() {
            legs += 1;
            let target = if to_a { &mut *a } else { &mut *b };
            let handled = reconcile(&mut target.0, Some(&mut target.1), fallback, &msg);
            assert_eq!(handled.invalid, 0, "honest traffic is never dropped");
            queue.extend(handled.replies.into_iter().map(|m| (!to_a, m)));
        }
        legs
    }

    #[test]
    fn descent_reconciles_and_identical_replicas_cost_one_leg() {
        let mut a = {
            let s = store_with(200, &[(0, 3), (77, 9), (140, 2), (199, 5)]);
            let t = DigestTree::new(&s, 8);
            (s, t)
        };
        let mut b = {
            let s = store_with(200, &[(0, 9), (30, 1), (140, 2)]);
            let t = DigestTree::new(&s, 8);
            (s, t)
        };
        pump(&mut a, &mut b, 8);
        assert_eq!(a.0, b.0, "descent converges the replicas");
        assert_eq!(a.1.root(), b.1.root(), "trees kept current through adopt");
        assert_eq!(a.0.known(), 5);

        // Converged replicas: the next exchange is the opener and nothing
        // else — the O(log n) steady state's best case.
        assert_eq!(pump(&mut a, &mut b, 8), 1);
    }

    #[test]
    fn dense_peer_answers_merkle_openers_with_a_classic_exchange() {
        let mut merkle_store = store_with(64, &[(1, 5), (40, 2)]);
        let mut merkle_tree = DigestTree::new(&merkle_store, 8);
        let mut dense_store = store_with(64, &[(1, 9), (63, 4)]);

        // Merkle node opens; the dense node answers with SynReq.
        let opener = AeMsg::MerkleSyn {
            n: 64,
            root: merkle_tree.root(),
        };
        let handled = reconcile(&mut dense_store, None, 8, &opener);
        let [syn] = &handled.replies[..] else {
            panic!("dense replica answers with one message");
        };
        assert!(matches!(syn, AeMsg::SynReq { .. }));

        // From here the classic three legs converge the pair (and keep the
        // Merkle side's tree fresh).
        let mut queue: Vec<(bool, AeMsg)> = vec![(true, syn.clone())];
        while let Some((to_merkle, msg)) = queue.pop() {
            let handled = if to_merkle {
                reconcile(&mut merkle_store, Some(&mut merkle_tree), 8, &msg)
            } else {
                reconcile(&mut dense_store, None, 8, &msg)
            };
            queue.extend(handled.replies.into_iter().map(|m| (!to_merkle, m)));
        }
        assert_eq!(merkle_store, dense_store);
        assert_eq!(merkle_tree, DigestTree::new(&merkle_store, 8));
    }

    #[test]
    fn probe_fronts_split_at_the_batch_cap() {
        // Two maximally different replicas at an n whose leaf layer is
        // wider than PROBE_BATCH: the descent must split its probe front.
        let n = PROBE_BATCH * 2 * 4; // 4096 slots, span 1 → 4096 leaves
        let full: Vec<(usize, u64)> = (0..n).map(|i| (i, 1 + i as u64)).collect();
        let mut a = {
            let s = store_with(n, &full);
            let t = DigestTree::new(&s, 1);
            (s, t)
        };
        let mut b = {
            let s = Store::new(n);
            let t = DigestTree::new(&s, 1);
            (s, t)
        };
        // Drive the full descent; every probe message obeys the cap.
        let mut queue: Vec<(bool, AeMsg)> = vec![(
            false,
            AeMsg::MerkleSyn {
                n: n as u32,
                root: a.1.root(),
            },
        )];
        while let Some((to_a, msg)) = queue.pop() {
            if let AeMsg::MerkleProbe { probes, .. } = &msg {
                assert!(probes.len() <= PROBE_BATCH, "probe front exceeded cap");
            }
            let t = if to_a { &mut a } else { &mut b };
            let handled = reconcile(&mut t.0, Some(&mut t.1), 1, &msg);
            queue.extend(handled.replies.into_iter().map(|m| (!to_a, m)));
        }
        assert_eq!(a.0, b.0);
        assert_eq!(b.0.known(), n);
    }

    #[test]
    fn hostile_merkle_messages_are_dropped_and_counted() {
        let mut store = store_with(64, &[(1, 5)]);
        let mut tree = DigestTree::new(&store, 8);
        let before = store.clone();
        for msg in [
            // Arity mismatches on every Merkle leg.
            AeMsg::MerkleSyn { n: 63, root: 1 },
            AeMsg::MerkleProbe {
                n: 65,
                probes: vec![(0, 1)],
            },
            AeMsg::RangeSyn {
                n: 63,
                start: 0,
                stamps: vec![1],
            },
            // Range outside the store / overflowing / empty.
            AeMsg::RangeSyn {
                n: 64,
                start: 60,
                stamps: vec![1, 1, 1, 1, 1],
            },
            AeMsg::RangeSyn {
                n: 64,
                start: u32::MAX,
                stamps: vec![1],
            },
            AeMsg::RangeSyn {
                n: 64,
                start: 0,
                stamps: vec![],
            },
            // Range wider than the fallback span: honest descents never
            // produce one, and answering it would build a reply far
            // beyond a datagram (reply amplification).
            AeMsg::RangeSyn {
                n: 64,
                start: 0,
                stamps: vec![1; 9],
            },
            AeMsg::RangeAck {
                n: 64,
                start: 64,
                stamps: vec![1],
                delta: vec![],
            },
            // Unsorted probe fronts are hostile (the descent emits
            // ascending indices)…
            AeMsg::MerkleProbe {
                n: 64,
                probes: vec![(2, 7), (1, 9)],
            },
            // …and so are duplicated ones: without the ordering check,
            // one message repeating a mismatching index would draw one
            // range reply per copy (send amplification).
            AeMsg::MerkleProbe {
                n: 64,
                probes: vec![(0, 12345), (0, 12345), (0, 12345)],
            },
        ] {
            let handled = reconcile(&mut store, Some(&mut tree), 8, &msg);
            assert_eq!(handled.invalid, 1, "{msg:?} must be dropped");
            assert!(handled.replies.is_empty(), "{msg:?} must draw no reply");
        }
        // Probe indices outside the tree are dropped pair-by-pair; the
        // valid pair still answers.
        let handled = reconcile(
            &mut store,
            Some(&mut tree),
            8,
            &AeMsg::MerkleProbe {
                n: 64,
                probes: vec![(0, 12345), (u32::MAX, 7)],
            },
        );
        assert_eq!(handled.invalid, 1);
        assert!(!handled.replies.is_empty(), "the in-range mismatch probes");
        // Hostile deltas: out-of-range origins and zero stamps.
        let handled = reconcile(
            &mut store,
            Some(&mut tree),
            8,
            &AeMsg::Delta {
                delta: vec![
                    (NodeId::new(1 << 20), e(5, 1.0)),
                    (NodeId::new(2), e(0, 1.0)),
                    (NodeId::new(3), e(4, 4.0)),
                ],
            },
        );
        assert_eq!(handled.invalid, 2);
        assert_eq!(handled.adopted, 1, "the honest pair still merges");
        assert_eq!(store.get(NodeId::new(3)), Some(&e(4, 4.0)));
        assert_eq!(store.get(NodeId::new(1)), before.get(NodeId::new(1)));
        assert_eq!(tree, DigestTree::new(&store, 8), "tree stayed current");
    }
}
