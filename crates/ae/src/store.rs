//! The replicated state: one stamped entry per origin node, merged by
//! per-key max-timestamp.
//!
//! [`Store`] is the CRDT at the bottom of the anti-entropy layer — a
//! grow-only map from origin node to the freshest [`Entry`] heard from that
//! origin. Merging keeps the entry with the larger `(stamp, value bits)`
//! pair, which makes merge **idempotent**, **commutative** and
//! **associative**: any two replicas that have exchanged the same set of
//! entries in *any* order and multiplicity hold identical stores (the
//! property the proptest suite pins). Versions never need coordination
//! because each origin stamps only its own key, with its local virtual
//! clock — strictly monotone across updates *and* across incarnations, so a
//! rejoiner's fresh entries always supersede its pre-crash ones.

use gossip_net::NodeId;
use serde::{Deserialize, Serialize};

/// Timestamps are carried in this many bits on the modelled wire.
pub const STAMP_BITS: u32 = 32;

/// One origin's value, stamped with the origin's virtual clock at update
/// time. Stamps are always ≥ 1 (`0` is the digest code for "absent").
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Entry {
    /// The origin's virtual time (µs) when it produced this value.
    pub stamp: u64,
    /// The value itself.
    pub value: f64,
}

impl Entry {
    /// Total order used by the merge: newer stamp wins; equal stamps fall
    /// back to the value's bit pattern (an arbitrary but *deterministic*
    /// tiebreak — two honest updates from one origin can never share a
    /// stamp, but the merge must stay commutative for arbitrary input).
    pub fn beats(&self, other: &Entry) -> bool {
        (self.stamp, self.value.to_bits()) > (other.stamp, other.value.to_bits())
    }
}

/// A version summary: for every origin, the stamp of the entry a replica
/// holds (`0` = none). Two replicas compare digests to find exactly the
/// entries one is missing.
pub type Digest = Vec<u64>;

/// Per-origin stamped values with max-timestamp merge. See the module docs.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Store {
    slots: Vec<Option<Entry>>,
}

impl Store {
    /// An empty store over `n` origins.
    pub fn new(n: usize) -> Self {
        Store {
            slots: vec![None; n],
        }
    }

    /// Number of origins (network size), known and unknown.
    pub fn n(&self) -> usize {
        self.slots.len()
    }

    /// Number of origins this replica holds an entry for.
    pub fn known(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// The entry held for `origin`, if any.
    pub fn get(&self, origin: NodeId) -> Option<&Entry> {
        self.slots[origin.index()].as_ref()
    }

    /// Merge one entry; returns `true` iff it replaced what was held
    /// (absent, or beaten per [`Entry::beats`]).
    pub fn merge(&mut self, origin: NodeId, entry: Entry) -> bool {
        debug_assert!(entry.stamp >= 1, "stamp 0 is the digest code for absent");
        let slot = &mut self.slots[origin.index()];
        match slot {
            Some(held) if !entry.beats(held) => false,
            _ => {
                *slot = Some(entry);
                true
            }
        }
    }

    /// Merge a batch of `(origin, entry)` pairs; returns how many were
    /// adopted.
    pub fn merge_delta(&mut self, delta: &[(NodeId, Entry)]) -> usize {
        delta
            .iter()
            .filter(|&&(origin, entry)| self.merge(origin, entry))
            .count()
    }

    /// Merge a whole replica into this one (the CRDT join): pointwise
    /// per-origin max, one slot scan, no digest/delta detour. Used when
    /// both stores are in hand — e.g. building the fully-synced reference
    /// a recovery measurement compares against.
    pub fn merge_from(&mut self, other: &Store) {
        debug_assert_eq!(self.slots.len(), other.slots.len(), "arity mismatch");
        for (mine, theirs) in self.slots.iter_mut().zip(&other.slots) {
            if let Some(entry) = theirs {
                match mine {
                    Some(held) if !entry.beats(held) => {}
                    _ => *mine = Some(*entry),
                }
            }
        }
    }

    /// This replica's version summary.
    pub fn digest(&self) -> Digest {
        self.slots
            .iter()
            .map(|s| s.as_ref().map_or(0, |e| e.stamp))
            .collect()
    }

    /// The entries this replica holds that are strictly newer than `their`
    /// digest claims — exactly what the peer is missing. Ascending origin
    /// order (deterministic).
    pub fn delta_for(&self, their: &Digest) -> Vec<(NodeId, Entry)> {
        debug_assert_eq!(their.len(), self.slots.len(), "digest arity mismatch");
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| {
                let entry = slot.as_ref()?;
                let theirs = their.get(i).copied().unwrap_or(0);
                (entry.stamp > theirs).then_some((NodeId::new(i), *entry))
            })
            .collect()
    }

    /// Mean over the held entries no older than `expiry_us` at instant
    /// `now_us` (`expiry_us == 0` disables expiry). `None` when nothing
    /// qualifies. Expiry is what keeps a *continuous* aggregate honest
    /// under churn: a crashed origin stops refreshing its entry, so its
    /// stale value ages out of everyone's estimate instead of biasing it
    /// forever.
    pub fn mean_fresh(&self, now_us: u64, expiry_us: u64) -> Option<f64> {
        let mut sum = 0.0;
        let mut count = 0usize;
        for entry in self.slots.iter().flatten() {
            if expiry_us == 0 || now_us.saturating_sub(entry.stamp) <= expiry_us {
                sum += entry.value;
                count += 1;
            }
        }
        (count > 0).then(|| sum / count as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(stamp: u64, value: f64) -> Entry {
        Entry { stamp, value }
    }

    #[test]
    fn merge_keeps_the_newest_stamp() {
        let mut s = Store::new(4);
        assert!(s.merge(NodeId::new(1), e(5, 1.0)));
        assert!(!s.merge(NodeId::new(1), e(4, 9.0)), "older stamp loses");
        assert!(!s.merge(NodeId::new(1), e(5, 1.0)), "idempotent");
        assert!(s.merge(NodeId::new(1), e(6, 2.0)));
        assert_eq!(s.get(NodeId::new(1)), Some(&e(6, 2.0)));
        assert_eq!(s.known(), 1);
        assert_eq!(s.n(), 4);
    }

    #[test]
    fn digest_and_delta_round_trip() {
        let mut a = Store::new(3);
        let mut b = Store::new(3);
        a.merge(NodeId::new(0), e(10, 1.0));
        a.merge(NodeId::new(2), e(3, 2.0));
        b.merge(NodeId::new(2), e(7, 5.0));

        // What b is missing relative to a: origin 0 entirely, origin 2 no
        // (b's stamp 7 > a's 3).
        let delta_ab = a.delta_for(&b.digest());
        assert_eq!(delta_ab, vec![(NodeId::new(0), e(10, 1.0))]);
        // And the reverse repair.
        let delta_ba = b.delta_for(&a.digest());
        assert_eq!(delta_ba, vec![(NodeId::new(2), e(7, 5.0))]);

        assert_eq!(b.merge_delta(&delta_ab), 1);
        assert_eq!(a.merge_delta(&delta_ba), 1);
        assert_eq!(a, b, "push-pull exchange converges the replicas");
        assert!(a.delta_for(&b.digest()).is_empty());
    }

    #[test]
    fn merge_from_is_the_pointwise_join() {
        let mut a = Store::new(4);
        let mut b = Store::new(4);
        a.merge(NodeId::new(0), e(5, 1.0));
        a.merge(NodeId::new(1), e(2, 2.0));
        b.merge(NodeId::new(1), e(7, 3.0));
        b.merge(NodeId::new(3), e(4, 4.0));
        // Join via merge_from must equal the entry-by-entry union.
        let mut joined = a.clone();
        joined.merge_from(&b);
        let mut reference = a.clone();
        for i in 0..4 {
            if let Some(&entry) = b.get(NodeId::new(i)) {
                reference.merge(NodeId::new(i), entry);
            }
        }
        assert_eq!(joined, reference);
        assert_eq!(joined.get(NodeId::new(1)), Some(&e(7, 3.0)));
        // Idempotent and absorbs the smaller side.
        let again = {
            let mut j = joined.clone();
            j.merge_from(&b);
            j.merge_from(&a);
            j
        };
        assert_eq!(again, joined);
    }

    #[test]
    fn mean_fresh_expires_stale_entries() {
        let mut s = Store::new(3);
        s.merge(NodeId::new(0), e(1_000, 10.0));
        s.merge(NodeId::new(1), e(9_000, 20.0));
        assert_eq!(s.mean_fresh(10_000, 0), Some(15.0), "no expiry");
        assert_eq!(
            s.mean_fresh(10_000, 5_000),
            Some(20.0),
            "old entry aged out"
        );
        assert_eq!(s.mean_fresh(100_000, 5_000), None, "everything expired");
        assert_eq!(Store::new(2).mean_fresh(0, 0), None, "empty store");
    }

    #[test]
    fn equal_stamp_tiebreak_is_deterministic_and_symmetric() {
        let x = e(5, 1.0);
        let y = e(5, 2.0);
        assert!(y.beats(&x) ^ x.beats(&y), "exactly one direction wins");
        let mut a = Store::new(1);
        let mut b = Store::new(1);
        a.merge(NodeId::new(0), x);
        a.merge(NodeId::new(0), y);
        b.merge(NodeId::new(0), y);
        b.merge(NodeId::new(0), x);
        assert_eq!(a, b, "merge order cannot matter");
    }
}
