//! The replicated state: one stamped entry per origin node, merged by
//! per-key max-timestamp.
//!
//! [`Store`] is the CRDT at the bottom of the anti-entropy layer — a
//! grow-only map from origin node to the freshest [`Entry`] heard from that
//! origin. Merging keeps the entry with the larger `(stamp, value bits)`
//! pair, which makes merge **idempotent**, **commutative** and
//! **associative**: any two replicas that have exchanged the same set of
//! entries in *any* order and multiplicity hold identical stores (the
//! property the proptest suite pins). Versions never need coordination
//! because each origin stamps only its own key, with its local virtual
//! clock — strictly monotone across updates *and* across incarnations, so a
//! rejoiner's fresh entries always supersede its pre-crash ones.

use gossip_net::NodeId;
use serde::{Deserialize, Serialize};

/// Timestamps are carried in this many bits on the modelled wire.
pub const STAMP_BITS: u32 = 32;

/// One origin's value, stamped with the origin's virtual clock at update
/// time. Stamps are always ≥ 1 (`0` is the digest code for "absent").
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Entry {
    /// The origin's virtual time (µs) when it produced this value.
    pub stamp: u64,
    /// The value itself.
    pub value: f64,
}

impl Entry {
    /// Total order used by the merge: newer stamp wins; equal stamps fall
    /// back to the value's bit pattern (an arbitrary but *deterministic*
    /// tiebreak — two honest updates from one origin can never share a
    /// stamp, but the merge must stay commutative for arbitrary input).
    pub fn beats(&self, other: &Entry) -> bool {
        (self.stamp, self.value.to_bits()) > (other.stamp, other.value.to_bits())
    }
}

/// A version summary: for every origin, the stamp of the entry a replica
/// holds (`0` = none). Two replicas compare digests to find exactly the
/// entries one is missing.
pub type Digest = Vec<u64>;

/// The sparse form of a [`Digest`]: one `(origin, stamp)` pair per origin
/// the replica actually holds, ascending by origin, stamps ≥ 1. This is
/// what the *messages* carry (and what the wire encodes) — absent origins
/// cost nothing, so a rejoiner's digest is a handful of bytes instead of
/// `n` stamps. The dense form stays the in-store working representation.
pub type SparseDigest = Vec<(NodeId, u64)>;

/// Whether `pairs` is a well-formed sparse digest for an `n`-origin store:
/// origins strictly ascending (sorted, duplicate-free) and in range,
/// stamps ≥ 1 (`0` is the code for absent — an honest sender omits the
/// pair instead). The protocol validates every digest that arrives off a
/// socket with this before trusting it — a short digest would otherwise
/// make the responder ship its whole store, a long or out-of-range one
/// would index out of bounds.
pub fn sparse_digest_well_formed(n: usize, pairs: &[(NodeId, u64)]) -> bool {
    let mut previous: Option<usize> = None;
    for &(origin, stamp) in pairs {
        if origin.index() >= n || stamp == 0 || previous.is_some_and(|p| p >= origin.index()) {
            return false;
        }
        previous = Some(origin.index());
    }
    true
}

/// Per-origin stamped values with max-timestamp merge. See the module docs.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Store {
    slots: Vec<Option<Entry>>,
}

impl Store {
    /// An empty store over `n` origins.
    pub fn new(n: usize) -> Self {
        Store {
            slots: vec![None; n],
        }
    }

    /// Number of origins (network size), known and unknown.
    pub fn n(&self) -> usize {
        self.slots.len()
    }

    /// Number of origins this replica holds an entry for.
    pub fn known(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// The entry held for `origin`, if any.
    pub fn get(&self, origin: NodeId) -> Option<&Entry> {
        self.slots[origin.index()].as_ref()
    }

    /// Merge one entry; returns `true` iff it replaced what was held
    /// (absent, or beaten per [`Entry::beats`]).
    pub fn merge(&mut self, origin: NodeId, entry: Entry) -> bool {
        debug_assert!(entry.stamp >= 1, "stamp 0 is the digest code for absent");
        let slot = &mut self.slots[origin.index()];
        match slot {
            Some(held) if !entry.beats(held) => false,
            _ => {
                *slot = Some(entry);
                true
            }
        }
    }

    /// Merge a batch of `(origin, entry)` pairs; returns how many were
    /// adopted.
    pub fn merge_delta(&mut self, delta: &[(NodeId, Entry)]) -> usize {
        delta
            .iter()
            .filter(|&&(origin, entry)| self.merge(origin, entry))
            .count()
    }

    /// Merge a whole replica into this one (the CRDT join): pointwise
    /// per-origin max, one slot scan, no digest/delta detour. Used when
    /// both stores are in hand — e.g. building the fully-synced reference
    /// a recovery measurement compares against.
    pub fn merge_from(&mut self, other: &Store) {
        debug_assert_eq!(self.slots.len(), other.slots.len(), "arity mismatch");
        for (mine, theirs) in self.slots.iter_mut().zip(&other.slots) {
            if let Some(entry) = theirs {
                match mine {
                    Some(held) if !entry.beats(held) => {}
                    _ => *mine = Some(*entry),
                }
            }
        }
    }

    /// This replica's version summary.
    pub fn digest(&self) -> Digest {
        self.slots
            .iter()
            .map(|s| s.as_ref().map_or(0, |e| e.stamp))
            .collect()
    }

    /// This replica's version summary in sparse form: `(origin, stamp)`
    /// for every held entry, ascending by origin. Always well-formed per
    /// [`sparse_digest_well_formed`].
    pub fn sparse_digest(&self) -> SparseDigest {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| slot.as_ref().map(|e| (NodeId::new(i), e.stamp)))
            .collect()
    }

    /// The entries this replica holds that are strictly newer than the
    /// sparse digest `their` claims. `their` **must** be well-formed
    /// (ascending, in-range — see [`sparse_digest_well_formed`]; the
    /// protocol validates before calling): the merge walk relies on the
    /// order. Ascending origin order, like [`Store::delta_for`].
    pub fn delta_for_sparse(&self, their: &[(NodeId, u64)]) -> Vec<(NodeId, Entry)> {
        debug_assert!(sparse_digest_well_formed(self.n(), their));
        let mut j = 0usize;
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| {
                let entry = slot.as_ref()?;
                while j < their.len() && their[j].0.index() < i {
                    j += 1;
                }
                let theirs = match their.get(j) {
                    Some(&(origin, stamp)) if origin.index() == i => stamp,
                    _ => 0,
                };
                (entry.stamp > theirs).then_some((NodeId::new(i), *entry))
            })
            .collect()
    }

    /// The dense digest of the slot range `[start, start + len)` — the
    /// leaf-range fallback of the Merkle descent, where dense wins: within
    /// one small range every slot is named by position, no origin ids.
    /// The range must lie inside the store.
    pub fn range_digest(&self, start: usize, len: usize) -> Digest {
        assert!(
            start.checked_add(len).is_some_and(|end| end <= self.n()),
            "range [{start}, {start}+{len}) outside the {}-origin store",
            self.n()
        );
        self.slots[start..start + len]
            .iter()
            .map(|s| s.as_ref().map_or(0, |e| e.stamp))
            .collect()
    }

    /// The entries in `[start, start + their.len())` strictly newer than
    /// the range digest `their` claims. Origins in the result are
    /// absolute, so the ordinary delta merge applies unchanged. The range
    /// must lie inside the store (the protocol validates before calling).
    pub fn delta_for_range(&self, start: usize, their: &[u64]) -> Vec<(NodeId, Entry)> {
        assert!(
            start
                .checked_add(their.len())
                .is_some_and(|end| end <= self.n()),
            "range [{start}, {start}+{}) outside the {}-origin store",
            their.len(),
            self.n()
        );
        self.slots[start..start + their.len()]
            .iter()
            .enumerate()
            .filter_map(|(k, slot)| {
                let entry = slot.as_ref()?;
                (entry.stamp > their[k]).then_some((NodeId::new(start + k), *entry))
            })
            .collect()
    }

    /// The entries this replica holds that are strictly newer than `their`
    /// digest claims — exactly what the peer is missing. Ascending origin
    /// order (deterministic).
    pub fn delta_for(&self, their: &Digest) -> Vec<(NodeId, Entry)> {
        debug_assert_eq!(their.len(), self.slots.len(), "digest arity mismatch");
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| {
                let entry = slot.as_ref()?;
                let theirs = their.get(i).copied().unwrap_or(0);
                (entry.stamp > theirs).then_some((NodeId::new(i), *entry))
            })
            .collect()
    }

    /// Mean over the held entries no older than `expiry_us` at instant
    /// `now_us` (`expiry_us == 0` disables expiry). `None` when nothing
    /// qualifies. Expiry is what keeps a *continuous* aggregate honest
    /// under churn: a crashed origin stops refreshing its entry, so its
    /// stale value ages out of everyone's estimate instead of biasing it
    /// forever.
    pub fn mean_fresh(&self, now_us: u64, expiry_us: u64) -> Option<f64> {
        let mut sum = 0.0;
        let mut count = 0usize;
        for entry in self.slots.iter().flatten() {
            if expiry_us == 0 || now_us.saturating_sub(entry.stamp) <= expiry_us {
                sum += entry.value;
                count += 1;
            }
        }
        (count > 0).then(|| sum / count as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(stamp: u64, value: f64) -> Entry {
        Entry { stamp, value }
    }

    #[test]
    fn merge_keeps_the_newest_stamp() {
        let mut s = Store::new(4);
        assert!(s.merge(NodeId::new(1), e(5, 1.0)));
        assert!(!s.merge(NodeId::new(1), e(4, 9.0)), "older stamp loses");
        assert!(!s.merge(NodeId::new(1), e(5, 1.0)), "idempotent");
        assert!(s.merge(NodeId::new(1), e(6, 2.0)));
        assert_eq!(s.get(NodeId::new(1)), Some(&e(6, 2.0)));
        assert_eq!(s.known(), 1);
        assert_eq!(s.n(), 4);
    }

    #[test]
    fn digest_and_delta_round_trip() {
        let mut a = Store::new(3);
        let mut b = Store::new(3);
        a.merge(NodeId::new(0), e(10, 1.0));
        a.merge(NodeId::new(2), e(3, 2.0));
        b.merge(NodeId::new(2), e(7, 5.0));

        // What b is missing relative to a: origin 0 entirely, origin 2 no
        // (b's stamp 7 > a's 3).
        let delta_ab = a.delta_for(&b.digest());
        assert_eq!(delta_ab, vec![(NodeId::new(0), e(10, 1.0))]);
        // And the reverse repair.
        let delta_ba = b.delta_for(&a.digest());
        assert_eq!(delta_ba, vec![(NodeId::new(2), e(7, 5.0))]);

        assert_eq!(b.merge_delta(&delta_ab), 1);
        assert_eq!(a.merge_delta(&delta_ba), 1);
        assert_eq!(a, b, "push-pull exchange converges the replicas");
        assert!(a.delta_for(&b.digest()).is_empty());
    }

    #[test]
    fn merge_from_is_the_pointwise_join() {
        let mut a = Store::new(4);
        let mut b = Store::new(4);
        a.merge(NodeId::new(0), e(5, 1.0));
        a.merge(NodeId::new(1), e(2, 2.0));
        b.merge(NodeId::new(1), e(7, 3.0));
        b.merge(NodeId::new(3), e(4, 4.0));
        // Join via merge_from must equal the entry-by-entry union.
        let mut joined = a.clone();
        joined.merge_from(&b);
        let mut reference = a.clone();
        for i in 0..4 {
            if let Some(&entry) = b.get(NodeId::new(i)) {
                reference.merge(NodeId::new(i), entry);
            }
        }
        assert_eq!(joined, reference);
        assert_eq!(joined.get(NodeId::new(1)), Some(&e(7, 3.0)));
        // Idempotent and absorbs the smaller side.
        let again = {
            let mut j = joined.clone();
            j.merge_from(&b);
            j.merge_from(&a);
            j
        };
        assert_eq!(again, joined);
    }

    #[test]
    fn sparse_and_dense_digests_agree() {
        let mut s = Store::new(5);
        s.merge(NodeId::new(1), e(4, 1.0));
        s.merge(NodeId::new(3), e(9, 2.0));
        assert_eq!(s.digest(), vec![0, 4, 0, 9, 0]);
        assert_eq!(
            s.sparse_digest(),
            vec![(NodeId::new(1), 4), (NodeId::new(3), 9)]
        );
        assert!(sparse_digest_well_formed(5, &s.sparse_digest()));
        // The sparse delta equals the dense delta against the same peer.
        let mut peer = Store::new(5);
        peer.merge(NodeId::new(1), e(7, 3.0));
        peer.merge(NodeId::new(4), e(2, 4.0));
        assert_eq!(
            peer.delta_for_sparse(&s.sparse_digest()),
            peer.delta_for(&s.digest())
        );
        assert_eq!(
            s.delta_for_sparse(&peer.sparse_digest()),
            s.delta_for(&peer.digest())
        );
        // Empty sparse digest = "send me everything you have".
        assert_eq!(s.delta_for_sparse(&[]), s.delta_for(&vec![0; 5]));
    }

    #[test]
    fn sparse_digest_well_formedness_catches_hostile_shapes() {
        let ok = vec![(NodeId::new(0), 1), (NodeId::new(3), 9)];
        assert!(sparse_digest_well_formed(4, &ok));
        assert!(sparse_digest_well_formed(4, &[]));
        // Out of range.
        assert!(!sparse_digest_well_formed(3, &ok));
        // Duplicate origin.
        assert!(!sparse_digest_well_formed(
            4,
            &[(NodeId::new(2), 1), (NodeId::new(2), 2)]
        ));
        // Unsorted.
        assert!(!sparse_digest_well_formed(
            4,
            &[(NodeId::new(3), 1), (NodeId::new(1), 2)]
        ));
        // Stamp 0 is the code for absent — honest senders omit the pair.
        assert!(!sparse_digest_well_formed(4, &[(NodeId::new(1), 0)]));
    }

    #[test]
    fn range_digest_and_delta_cover_exactly_the_range() {
        let mut s = Store::new(6);
        s.merge(NodeId::new(1), e(5, 1.0));
        s.merge(NodeId::new(2), e(3, 2.0));
        s.merge(NodeId::new(4), e(8, 3.0));
        assert_eq!(s.range_digest(1, 3), vec![5, 3, 0]);
        assert_eq!(s.range_digest(0, 0), Vec::<u64>::new());
        // Peer's stamps for the range: newer at 1, older at 2, absent at 3.
        let delta = s.delta_for_range(1, &[9, 1, 4]);
        assert_eq!(delta, vec![(NodeId::new(2), e(3, 2.0))]);
        // Entries outside the range never leak in.
        assert!(s.delta_for_range(0, &[0]).is_empty());
        assert_eq!(s.delta_for_range(4, &[0, 0]).len(), 1);
    }

    #[test]
    fn mean_fresh_expires_stale_entries() {
        let mut s = Store::new(3);
        s.merge(NodeId::new(0), e(1_000, 10.0));
        s.merge(NodeId::new(1), e(9_000, 20.0));
        assert_eq!(s.mean_fresh(10_000, 0), Some(15.0), "no expiry");
        assert_eq!(
            s.mean_fresh(10_000, 5_000),
            Some(20.0),
            "old entry aged out"
        );
        assert_eq!(s.mean_fresh(100_000, 5_000), None, "everything expired");
        assert_eq!(Store::new(2).mean_fresh(0, 0), None, "empty store");
    }

    #[test]
    fn equal_stamp_tiebreak_is_deterministic_and_symmetric() {
        let x = e(5, 1.0);
        let y = e(5, 2.0);
        assert!(y.beats(&x) ^ x.beats(&y), "exactly one direction wins");
        let mut a = Store::new(1);
        let mut b = Store::new(1);
        a.merge(NodeId::new(0), x);
        a.merge(NodeId::new(0), y);
        b.merge(NodeId::new(0), y);
        b.merge(NodeId::new(0), x);
        assert_eq!(a, b, "merge order cannot matter");
    }
}
