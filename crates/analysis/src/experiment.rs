//! Multi-trial experiment runner.
//!
//! Every experiment in the harness has the same shape: sweep the network
//! size `n` over a range, run `trials` independent simulations per size
//! (different seeds), measure one or more scalar quantities per run, and
//! summarise. [`Sweep`] drives that loop, parallelising the independent
//! trials with Rayon, and [`SweepResult`] holds the per-size summaries ready
//! for fitting ([`crate::fit`]) and rendering ([`crate::table`]).

use crate::stats::Summary;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One measured sample: named scalar observations from a single trial.
pub type Observation = Vec<(String, f64)>;

/// A sweep over network sizes with repeated trials per size.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Sweep {
    /// Network sizes to sweep.
    pub sizes: Vec<usize>,
    /// Trials (independent seeds) per size.
    pub trials: u64,
    /// Base seed; trial `t` at size index `i` uses seed
    /// `base_seed + 1000·i + t`.
    pub base_seed: u64,
}

impl Sweep {
    /// A sweep over powers of two `2^lo ..= 2^hi`.
    pub fn powers_of_two(lo: u32, hi: u32, trials: u64) -> Self {
        assert!(lo <= hi, "invalid exponent range");
        Sweep {
            sizes: (lo..=hi).map(|e| 1usize << e).collect(),
            trials: trials.max(1),
            base_seed: 0xD0_5EED,
        }
    }

    /// A sweep over an explicit list of sizes.
    pub fn over(sizes: Vec<usize>, trials: u64) -> Self {
        assert!(!sizes.is_empty(), "sweep needs at least one size");
        Sweep {
            sizes,
            trials: trials.max(1),
            base_seed: 0xD0_5EED,
        }
    }

    /// Use a different base seed.
    pub fn with_base_seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    /// Run the sweep. `run_trial(n, seed)` performs one simulation and
    /// returns named measurements; trials run in parallel.
    pub fn run<F>(&self, run_trial: F) -> SweepResult
    where
        F: Fn(usize, u64) -> Observation + Sync,
    {
        let mut points = Vec::with_capacity(self.sizes.len());
        for (i, &n) in self.sizes.iter().enumerate() {
            let seeds: Vec<u64> = (0..self.trials)
                .map(|t| self.base_seed + 1000 * i as u64 + t)
                .collect();
            let observations: Vec<Observation> =
                seeds.par_iter().map(|&seed| run_trial(n, seed)).collect();
            let mut by_metric: BTreeMap<String, Vec<f64>> = BTreeMap::new();
            for obs in observations {
                for (name, value) in obs {
                    by_metric.entry(name).or_default().push(value);
                }
            }
            let metrics = by_metric
                .into_iter()
                .map(|(name, samples)| (name, Summary::of(&samples)))
                .collect();
            points.push(SweepPoint { n, metrics });
        }
        SweepResult { points }
    }
}

/// Per-size summaries of every measured metric.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Network size.
    pub n: usize,
    /// Summary per metric name.
    pub metrics: BTreeMap<String, Summary>,
}

/// The result of running a [`Sweep`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SweepResult {
    /// One point per swept size, in sweep order.
    pub points: Vec<SweepPoint>,
}

impl SweepResult {
    /// The `(n, mean)` series of a metric, ready for model fitting.
    pub fn series(&self, metric: &str) -> Vec<(f64, f64)> {
        self.points
            .iter()
            .filter_map(|p| p.metrics.get(metric).map(|s| (p.n as f64, s.mean)))
            .collect()
    }

    /// The summary of a metric at a given size, if measured.
    pub fn at(&self, n: usize, metric: &str) -> Option<&Summary> {
        self.points
            .iter()
            .find(|p| p.n == n)
            .and_then(|p| p.metrics.get(metric))
    }

    /// Names of all measured metrics (sorted).
    pub fn metric_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .points
            .iter()
            .flat_map(|p| p.metrics.keys().cloned())
            .collect();
        names.sort();
        names.dedup();
        names
    }

    /// Serialise to pretty JSON (for EXPERIMENTS.md appendices and archival).
    ///
    /// The JSON is written by hand: the offline build's `serde` stand-in has
    /// no real serialisation backend, and the shape of a sweep result is
    /// fixed, so a direct writer is both dependency-free and stable.
    pub fn to_json(&self) -> String {
        fn num(x: f64) -> String {
            if x.is_finite() {
                format!("{x}")
            } else {
                "null".to_string()
            }
        }
        let mut out = String::from("{\n  \"points\": [\n");
        for (pi, p) in self.points.iter().enumerate() {
            out.push_str(&format!(
                "    {{\n      \"n\": {},\n      \"metrics\": {{\n",
                p.n
            ));
            for (mi, (name, s)) in p.metrics.iter().enumerate() {
                out.push_str(&format!(
                    "        {:?}: {{ \"count\": {}, \"mean\": {}, \"std_dev\": {}, \"min\": {}, \"max\": {}, \"median\": {}, \"p10\": {}, \"p90\": {} }}{}\n",
                    name,
                    s.count,
                    num(s.mean),
                    num(s.std_dev),
                    num(s.min),
                    num(s.max),
                    num(s.median),
                    num(s.p10),
                    num(s.p90),
                    if mi + 1 < p.metrics.len() { "," } else { "" },
                ));
            }
            out.push_str("      }\n    }");
            out.push_str(if pi + 1 < self.points.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]\n}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_trial(n: usize, seed: u64) -> Observation {
        // messages ~ 3 n log2 n with small seed-dependent jitter; rounds ~ log2 n
        let n_f = n as f64;
        let jitter = 1.0 + ((seed % 7) as f64 - 3.0) * 0.01;
        vec![
            ("messages".to_string(), 3.0 * n_f * n_f.log2() * jitter),
            ("rounds".to_string(), n_f.log2()),
        ]
    }

    #[test]
    fn sweep_runs_all_sizes_and_metrics() {
        let sweep = Sweep::powers_of_two(6, 9, 5);
        let result = sweep.run(fake_trial);
        assert_eq!(result.points.len(), 4);
        assert_eq!(result.metric_names(), vec!["messages", "rounds"]);
        for p in &result.points {
            assert_eq!(p.metrics["messages"].count, 5);
        }
    }

    #[test]
    fn series_is_ordered_by_sweep_and_usable_for_fitting() {
        let sweep = Sweep::powers_of_two(6, 10, 3);
        let result = sweep.run(fake_trial);
        let series = result.series("messages");
        assert_eq!(series.len(), 5);
        assert!(series.windows(2).all(|w| w[0].0 < w[1].0));
        let best = crate::fit::best_fit(&series, &crate::fit::ComplexityModel::MESSAGE_MODELS);
        assert_eq!(best.model, crate::fit::ComplexityModel::NLogN);
    }

    #[test]
    fn at_finds_specific_points() {
        let sweep = Sweep::over(vec![100, 200], 2);
        let result = sweep.run(fake_trial);
        assert!(result.at(100, "rounds").is_some());
        assert!(result.at(100, "bogus").is_none());
        assert!(result.at(999, "rounds").is_none());
    }

    #[test]
    fn deterministic_given_base_seed() {
        let sweep = Sweep::powers_of_two(6, 8, 4).with_base_seed(7);
        let a = sweep.run(fake_trial);
        let b = sweep.run(fake_trial);
        assert_eq!(a, b);
    }

    #[test]
    fn json_is_well_formed_and_complete() {
        let sweep = Sweep::over(vec![64], 2);
        let result = sweep.run(fake_trial);
        let json = result.to_json();
        // Structural checks in lieu of a parser: balanced delimiters, one
        // object per point, every metric name present.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"n\": 64"));
        for name in result.metric_names() {
            assert!(json.contains(&format!("{name:?}")), "missing {name}");
        }
        assert!(json.contains("\"mean\""));
        assert!(!json.contains("NaN"), "non-finite values must map to null");
    }

    #[test]
    #[should_panic(expected = "at least one size")]
    fn empty_sweep_rejected() {
        let _ = Sweep::over(vec![], 3);
    }
}
