//! Plain-text and Markdown table rendering for experiment output.

use serde::{Deserialize, Serialize};

/// A simple column-aligned table.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Table {
    /// Create a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Title of the table.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Append a row (must match the header arity).
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row arity must match header arity"
        );
        self.rows.push(cells);
    }

    /// Append a row of displayable cells.
    pub fn push_display_row<T: std::fmt::Display>(&mut self, cells: &[T]) {
        self.push_row(cells.iter().map(|c| c.to_string()).collect());
    }

    /// Append a footnote rendered below the table.
    pub fn push_note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    fn column_widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        widths
    }

    /// Render as an aligned plain-text table.
    pub fn render(&self) -> String {
        let widths = self.column_widths();
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&format!("== {} ==\n", self.title));
        }
        let render_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                let pad = widths[i].saturating_sub(cell.chars().count());
                line.push_str(cell);
                line.push_str(&" ".repeat(pad));
                if i + 1 < cells.len() {
                    line.push_str("  ");
                }
            }
            line.trim_end().to_string()
        };
        out.push_str(&render_row(&self.headers));
        out.push('\n');
        out.push_str(
            &"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1))),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row));
            out.push('\n');
        }
        for note in &self.notes {
            out.push_str(&format!("note: {note}\n"));
        }
        out
    }

    /// Render as a GitHub-flavoured Markdown table.
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&format!("### {}\n\n", self.title));
        }
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!("|{}\n", " --- |".repeat(self.headers.len())));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        for note in &self.notes {
            out.push_str(&format!("\n*{note}*\n"));
        }
        out
    }
}

/// Mean of the finite samples, formatted with [`fmt_float`]; `"—"` when no
/// finite sample remains. The cell renderer for metrics that use NaN as a
/// no-data sentinel (no rejoins to measure, a column not computable for
/// one protocol): dropping the sentinels must surface as "not measured",
/// never collapse to a `0` a reader would take for a measured zero.
pub fn fmt_mean_or_dash(samples: impl IntoIterator<Item = f64>) -> String {
    let summary = crate::stats::Summary::of_finite(samples);
    if summary.count == 0 {
        "—".to_string()
    } else {
        fmt_float(summary.mean)
    }
}

/// Format a float compactly for table cells (3 significant decimals, or
/// scientific notation for very small/large magnitudes).
pub fn fmt_float(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.is_nan() {
        "nan".to_string()
    } else if x.abs() >= 1e6 || x.abs() < 1e-3 {
        format!("{x:.2e}")
    } else if x.fract() == 0.0 && x.abs() < 1e6 {
        format!("{x:.0}")
    } else {
        format!("{x:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("Demo", &["n", "messages", "model"]);
        t.push_row(vec!["256".into(), "1024".into(), "n log n".into()]);
        t.push_display_row(&["65536", "131072", "n"]);
        t.push_note("twenty trials per row");
        t
    }

    #[test]
    fn render_contains_all_cells_and_alignment() {
        let text = sample().render();
        assert!(text.contains("== Demo =="));
        assert!(text.contains("n log n"));
        assert!(text.contains("65536"));
        assert!(text.contains("note: twenty trials per row"));
        // header and separator lines exist
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[1].starts_with('n'));
        assert!(lines[2].starts_with('-'));
    }

    #[test]
    fn render_markdown_is_well_formed() {
        let md = sample().render_markdown();
        assert!(md.contains("### Demo"));
        assert!(md.contains("| n | messages | model |"));
        assert!(md.contains("| --- | --- | --- |"));
        assert!(md.lines().filter(|l| l.starts_with('|')).count() >= 4);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_rejected() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn fmt_float_covers_ranges() {
        assert_eq!(fmt_float(0.0), "0");
        assert_eq!(fmt_float(3.0), "3");
        assert_eq!(fmt_float(1.23456), "1.235");
        assert_eq!(fmt_float(1.5e7), "1.50e7");
        assert_eq!(fmt_float(0.00001), "1.00e-5");
        assert_eq!(fmt_float(f64::NAN), "nan");
    }

    #[test]
    fn mean_or_dash_isolates_nan_sentinels() {
        // A mixed cell: the sentinel must not drag the mean to NaN.
        assert_eq!(fmt_mean_or_dash([2.0, f64::NAN, 4.0]), "3");
        // An all-sentinel cell renders "—", never a fake measured zero.
        assert_eq!(fmt_mean_or_dash([f64::NAN, f64::NAN]), "—");
        assert_eq!(fmt_mean_or_dash(std::iter::empty()), "—");
        // Infinities are sentinels too (unmeasurable, not huge).
        assert_eq!(fmt_mean_or_dash([f64::INFINITY, 7.0]), "7");
    }

    #[test]
    fn num_rows_and_title() {
        let t = sample();
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.title(), "Demo");
    }
}
