//! # gossip-analysis
//!
//! Statistics, complexity-model fitting and experiment plumbing used to turn
//! raw simulation runs into the tables and figures of the paper
//! reproduction:
//!
//! * [`stats`] — summaries (mean, deviation, percentiles, confidence
//!   intervals) over repeated trials;
//! * [`fit`] — least-squares fitting of measured series against candidate
//!   growth models (`log n`, `n log log n`, `n log n`, ...), used to verify
//!   the paper's asymptotic claims empirically;
//! * [`experiment`] — the [`experiment::Sweep`] runner: sweep `n`, repeat
//!   trials with independent seeds in parallel (Rayon), summarise;
//! * [`table`] — plain-text / Markdown table rendering for the `experiments`
//!   binary and `EXPERIMENTS.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiment;
pub mod fit;
pub mod stats;
pub mod table;

pub use experiment::{Observation, Sweep, SweepPoint, SweepResult};
pub use fit::{
    best_fit, fit_all, fit_model, normalized_ratios, ratio_spread, ComplexityModel, ModelFit,
};
pub use stats::{summarize_u64, Summary};
pub use table::{fmt_float, fmt_mean_or_dash, Table};
