//! Summary statistics over repeated trials.

use serde::{Deserialize, Serialize};

/// Summary of a sample of measurements (one per trial).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (0 for fewer than two samples).
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median (by nearest rank).
    pub median: f64,
    /// 10th percentile.
    pub p10: f64,
    /// 90th percentile.
    pub p90: f64,
}

impl Summary {
    /// Summarise a sample. Returns a zeroed summary for an empty sample.
    pub fn of(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Summary {
                count: 0,
                mean: 0.0,
                std_dev: 0.0,
                min: 0.0,
                max: 0.0,
                median: 0.0,
                p10: 0.0,
                p90: 0.0,
            };
        }
        let count = samples.len();
        let mean = samples.iter().sum::<f64>() / count as f64;
        let variance = if count > 1 {
            samples.iter().map(|&x| (x - mean).powi(2)).sum::<f64>() / (count as f64 - 1.0)
        } else {
            0.0
        };
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| {
            a.partial_cmp(b)
                .expect("statistics require non-NaN samples")
        });
        let percentile = |q: f64| {
            let idx = ((count as f64 - 1.0) * q).round() as usize;
            sorted[idx]
        };
        Summary {
            count,
            mean,
            std_dev: variance.sqrt(),
            min: sorted[0],
            max: sorted[count - 1],
            median: percentile(0.5),
            p10: percentile(0.1),
            p90: percentile(0.9),
        }
    }

    /// Summarise only the finite samples, dropping every NaN/∞ sentinel.
    ///
    /// Experiment metrics use NaN as a deliberate "not measured" marker
    /// (push-sum's stale fraction, a rejoin column with no rejoins, the
    /// synchronous backend's virtual time). [`Summary::of`] must never see
    /// those — its mean would be poisoned and its percentile sort panics —
    /// so every aggregation over cells that may carry the sentinel goes
    /// through here instead. `count` reflects only the retained samples;
    /// a `count` of 0 means *nothing was measured*, which table renderers
    /// must surface as "—" (see `fmt_mean_or_dash`), never as a zero.
    pub fn of_finite<I: IntoIterator<Item = f64>>(samples: I) -> Self {
        let finite: Vec<f64> = samples.into_iter().filter(|v| v.is_finite()).collect();
        Summary::of(&finite)
    }

    /// Half-width of the (normal-approximation) 95% confidence interval of
    /// the mean.
    pub fn ci95_half_width(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            1.96 * self.std_dev / (self.count as f64).sqrt()
        }
    }
}

/// Convenience: summarise an iterator of `u64` measurements.
pub fn summarize_u64<I: IntoIterator<Item = u64>>(samples: I) -> Summary {
    let as_f64: Vec<f64> = samples.into_iter().map(|x| x as f64).collect();
    Summary::of(&as_f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.count, 5);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.median, 3.0);
        assert!((s.std_dev - (2.5f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summary_of_empty_and_singleton() {
        let empty = Summary::of(&[]);
        assert_eq!(empty.count, 0);
        assert_eq!(empty.mean, 0.0);
        let single = Summary::of(&[7.0]);
        assert_eq!(single.count, 1);
        assert_eq!(single.mean, 7.0);
        assert_eq!(single.std_dev, 0.0);
        assert_eq!(single.ci95_half_width(), 0.0);
    }

    #[test]
    fn of_finite_drops_sentinels_without_poisoning() {
        // NaN cells are "not measured" sentinels: the finite samples must
        // summarise as if the sentinels were never there.
        let s = Summary::of_finite([1.0, f64::NAN, 3.0, f64::INFINITY, 5.0]);
        assert_eq!(s.count, 3);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        // All-sentinel input is "nothing measured", not zero.
        let empty = Summary::of_finite([f64::NAN, f64::NEG_INFINITY]);
        assert_eq!(empty.count, 0);
        // And Summary::of on the same input would panic in the percentile
        // sort — the reason sentinel-bearing paths must route through here.
        let caught = std::panic::catch_unwind(|| Summary::of(&[1.0, f64::NAN]));
        assert!(caught.is_err(), "Summary::of must reject NaN loudly");
    }

    #[test]
    fn summarize_u64_converts() {
        let s = summarize_u64([2u64, 4, 6]);
        assert_eq!(s.mean, 4.0);
        assert_eq!(s.count, 3);
    }

    #[test]
    fn percentiles_are_ordered() {
        let s = Summary::of(&[9.0, 1.0, 5.0, 3.0, 7.0, 2.0, 8.0]);
        assert!(s.p10 <= s.median && s.median <= s.p90);
        assert!(s.min <= s.p10 && s.p90 <= s.max);
    }

    proptest! {
        #[test]
        fn mean_is_within_min_max(samples in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
            let s = Summary::of(&samples);
            prop_assert!(s.mean >= s.min - 1e-9);
            prop_assert!(s.mean <= s.max + 1e-9);
            prop_assert!(s.std_dev >= 0.0);
            prop_assert!(s.ci95_half_width() >= 0.0);
        }

        #[test]
        fn constant_sample_has_zero_spread(x in -1e3f64..1e3, len in 1usize..50) {
            let s = Summary::of(&vec![x; len]);
            prop_assert!((s.mean - x).abs() < 1e-9);
            prop_assert!(s.std_dev.abs() < 1e-9);
            prop_assert_eq!(s.min, s.max);
        }
    }
}
