//! Complexity-model fitting.
//!
//! The paper's evaluation is a set of asymptotic claims (Table 1,
//! Theorems 2–15). To check them empirically, the experiment harness sweeps
//! the network size `n` and fits the measured quantity (messages, rounds,
//! tree counts, ...) against candidate growth models
//! `y ≈ a · f(n)` by least squares, reporting the coefficient, the residual
//! `R²` and which candidate fits best. A claim such as "DRR-gossip uses
//! `O(n log log n)` messages" is confirmed when that model fits with high
//! `R²` and the measured/model ratio stays flat across the sweep.

use serde::{Deserialize, Serialize};

/// Candidate asymptotic growth models (as functions of the network size `n`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum ComplexityModel {
    Constant,
    LogLogN,
    LogN,
    Log2N,
    SqrtN,
    N,
    NLogLogN,
    NLogN,
    NLog2N,
    NOverLogN,
}

impl ComplexityModel {
    /// All candidate models.
    pub const ALL: [ComplexityModel; 10] = [
        ComplexityModel::Constant,
        ComplexityModel::LogLogN,
        ComplexityModel::LogN,
        ComplexityModel::Log2N,
        ComplexityModel::SqrtN,
        ComplexityModel::N,
        ComplexityModel::NLogLogN,
        ComplexityModel::NLogN,
        ComplexityModel::NLog2N,
        ComplexityModel::NOverLogN,
    ];

    /// The models typically compared for *message* complexity claims.
    pub const MESSAGE_MODELS: [ComplexityModel; 4] = [
        ComplexityModel::N,
        ComplexityModel::NLogLogN,
        ComplexityModel::NLogN,
        ComplexityModel::NLog2N,
    ];

    /// The models typically compared for *time* (round) complexity claims.
    pub const TIME_MODELS: [ComplexityModel; 4] = [
        ComplexityModel::Constant,
        ComplexityModel::LogLogN,
        ComplexityModel::LogN,
        ComplexityModel::Log2N,
    ];

    /// Evaluate `f(n)`.
    pub fn eval(&self, n: f64) -> f64 {
        let n = n.max(2.0);
        let log_n = n.log2();
        let log_log_n = log_n.max(2.0).log2();
        match self {
            ComplexityModel::Constant => 1.0,
            ComplexityModel::LogLogN => log_log_n,
            ComplexityModel::LogN => log_n,
            ComplexityModel::Log2N => log_n * log_n,
            ComplexityModel::SqrtN => n.sqrt(),
            ComplexityModel::N => n,
            ComplexityModel::NLogLogN => n * log_log_n,
            ComplexityModel::NLogN => n * log_n,
            ComplexityModel::NLog2N => n * log_n * log_n,
            ComplexityModel::NOverLogN => n / log_n,
        }
    }

    /// Display name ("n log log n", ...).
    pub fn name(&self) -> &'static str {
        match self {
            ComplexityModel::Constant => "1",
            ComplexityModel::LogLogN => "log log n",
            ComplexityModel::LogN => "log n",
            ComplexityModel::Log2N => "log^2 n",
            ComplexityModel::SqrtN => "sqrt(n)",
            ComplexityModel::N => "n",
            ComplexityModel::NLogLogN => "n log log n",
            ComplexityModel::NLogN => "n log n",
            ComplexityModel::NLog2N => "n log^2 n",
            ComplexityModel::NOverLogN => "n / log n",
        }
    }
}

impl std::fmt::Display for ComplexityModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The result of fitting one model to a data series.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ModelFit {
    /// The model fitted.
    pub model: ComplexityModel,
    /// Least-squares coefficient `a` in `y ≈ a·f(n)`.
    pub coefficient: f64,
    /// Coefficient of determination against the (scaled) model.
    pub r_squared: f64,
}

/// Fit `y ≈ a·f(n)` by least squares **in log space** (i.e. fit
/// `log y ≈ log a + log f(n)`), so every point of the sweep carries equal
/// weight regardless of magnitude — the appropriate criterion for scaling
/// laws, where the small-`n` points are exactly the ones that distinguish
/// `n log n` from `n log log n`.
///
/// Points with non-positive `y` are ignored (they carry no scaling
/// information); if all points are non-positive the coefficient is 0.
pub fn fit_model(points: &[(f64, f64)], model: ComplexityModel) -> ModelFit {
    assert!(!points.is_empty(), "cannot fit an empty series");
    let logs: Vec<(f64, f64)> = points
        .iter()
        .filter(|&&(_, y)| y > 0.0)
        .map(|&(n, y)| (model.eval(n).ln(), y.ln()))
        .collect();
    if logs.is_empty() {
        return ModelFit {
            model,
            coefficient: 0.0,
            r_squared: 0.0,
        };
    }
    // log a = mean(log y − log f)
    let log_a = logs.iter().map(|&(lf, ly)| ly - lf).sum::<f64>() / logs.len() as f64;
    let coefficient = log_a.exp();
    // R² of the residuals in log space.
    let mean_ly = logs.iter().map(|&(_, ly)| ly).sum::<f64>() / logs.len() as f64;
    let ss_tot: f64 = logs.iter().map(|&(_, ly)| (ly - mean_ly).powi(2)).sum();
    let ss_res: f64 = logs
        .iter()
        .map(|&(lf, ly)| (ly - (log_a + lf)).powi(2))
        .sum();
    let r_squared = if ss_tot > 0.0 {
        1.0 - ss_res / ss_tot
    } else if ss_res < 1e-12 {
        1.0
    } else {
        0.0
    };
    ModelFit {
        model,
        coefficient,
        r_squared,
    }
}

/// Fit every candidate and return them sorted by decreasing `R²`.
pub fn fit_all(points: &[(f64, f64)], candidates: &[ComplexityModel]) -> Vec<ModelFit> {
    let mut fits: Vec<ModelFit> = candidates.iter().map(|&m| fit_model(points, m)).collect();
    fits.sort_by(|a, b| b.r_squared.partial_cmp(&a.r_squared).expect("finite r²"));
    fits
}

/// The best-fitting model among the candidates.
pub fn best_fit(points: &[(f64, f64)], candidates: &[ComplexityModel]) -> ModelFit {
    fit_all(points, candidates)
        .into_iter()
        .next()
        .expect("at least one candidate model")
}

/// The measured/model ratios `y / f(n)` — flat ratios confirm the model.
pub fn normalized_ratios(points: &[(f64, f64)], model: ComplexityModel) -> Vec<f64> {
    points.iter().map(|&(n, y)| y / model.eval(n)).collect()
}

/// How flat a ratio series is: `max/min` (1.0 = perfectly flat). Useful as a
/// scale-free "does this growth model explain the data" indicator.
pub fn ratio_spread(ratios: &[f64]) -> f64 {
    let min = ratios.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = ratios.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if min <= 0.0 || !min.is_finite() || !max.is_finite() {
        f64::INFINITY
    } else {
        max / min
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(model: ComplexityModel, a: f64) -> Vec<(f64, f64)> {
        (8..=16)
            .map(|e| {
                let n = (1u64 << e) as f64;
                (n, a * model.eval(n))
            })
            .collect()
    }

    #[test]
    fn eval_monotone_in_n() {
        for model in ComplexityModel::ALL {
            if model == ComplexityModel::Constant {
                continue;
            }
            assert!(
                model.eval((1u64 << 20) as f64) > model.eval((1u64 << 10) as f64),
                "{model}"
            );
        }
    }

    #[test]
    fn exact_series_recovers_model_and_coefficient() {
        for model in [
            ComplexityModel::LogN,
            ComplexityModel::NLogLogN,
            ComplexityModel::NLogN,
            ComplexityModel::NOverLogN,
        ] {
            let points = series(model, 3.5);
            let fit = fit_model(&points, model);
            assert!((fit.coefficient - 3.5).abs() < 1e-9, "{model}");
            assert!(fit.r_squared > 0.999_999, "{model}");
        }
    }

    #[test]
    fn best_fit_distinguishes_n_log_n_from_n_log_log_n() {
        let points = series(ComplexityModel::NLogN, 2.0);
        let best = best_fit(&points, &ComplexityModel::MESSAGE_MODELS);
        assert_eq!(best.model, ComplexityModel::NLogN);

        let points = series(ComplexityModel::NLogLogN, 2.0);
        let best = best_fit(&points, &ComplexityModel::MESSAGE_MODELS);
        assert_eq!(best.model, ComplexityModel::NLogLogN);
    }

    #[test]
    fn best_fit_distinguishes_time_models() {
        let points = series(ComplexityModel::LogN, 5.0);
        let best = best_fit(&points, &ComplexityModel::TIME_MODELS);
        assert_eq!(best.model, ComplexityModel::LogN);

        let points = series(ComplexityModel::Log2N, 0.7);
        let best = best_fit(&points, &ComplexityModel::TIME_MODELS);
        assert_eq!(best.model, ComplexityModel::Log2N);
    }

    #[test]
    fn noisy_series_still_identified() {
        let mut points = series(ComplexityModel::NLogLogN, 4.0);
        for (i, p) in points.iter_mut().enumerate() {
            let noise = 1.0 + 0.05 * if i % 2 == 0 { 1.0 } else { -1.0 };
            p.1 *= noise;
        }
        let best = best_fit(&points, &ComplexityModel::MESSAGE_MODELS);
        assert_eq!(best.model, ComplexityModel::NLogLogN);
        assert!(best.r_squared > 0.98);
    }

    #[test]
    fn ratios_flat_for_matching_model() {
        let points = series(ComplexityModel::NLogN, 1.5);
        let ratios = normalized_ratios(&points, ComplexityModel::NLogN);
        assert!(ratio_spread(&ratios) < 1.0 + 1e-9);
        let wrong = normalized_ratios(&points, ComplexityModel::N);
        assert!(ratio_spread(&wrong) > 1.2);
    }

    #[test]
    fn fit_all_is_sorted_by_r_squared() {
        let points = series(ComplexityModel::NLogN, 1.0);
        let fits = fit_all(&points, &ComplexityModel::MESSAGE_MODELS);
        for w in fits.windows(2) {
            assert!(w[0].r_squared >= w[1].r_squared);
        }
    }

    #[test]
    #[should_panic(expected = "empty series")]
    fn empty_series_rejected() {
        let _ = fit_model(&[], ComplexityModel::N);
    }

    #[test]
    fn model_names_are_unique() {
        let names: std::collections::HashSet<&str> =
            ComplexityModel::ALL.iter().map(|m| m.name()).collect();
        assert_eq!(names.len(), ComplexityModel::ALL.len());
    }
}
